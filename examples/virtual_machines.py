"""CTA in a virtualised deployment (paper Section 7).

The hypervisor reserves the highest true-cell addresses as
ZONE_HYPERVISOR and hands each guest a slice of it for the guest's
ZONE_PTP. Guest page tables therefore sit in host true-cells above every
guest data page — PTE self-reference is impossible within and across VMs.

Usage::

    python examples/virtual_machines.py
"""

from repro.dram.cells import CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.kernel import Hypervisor
from repro.units import MIB, PAGE_SHIFT, PAGE_SIZE, format_size


def main() -> None:
    geometry = DramGeometry(total_bytes=64 * MIB, row_bytes=16 * 1024, num_banks=2)
    cell_map = CellTypeMap.interleaved(geometry, period_rows=64)
    host = DramModule(geometry, cell_map)

    hypervisor = Hypervisor(host, hypervisor_zone_bytes=8 * MIB)
    print(f"host memory: {format_size(geometry.total_bytes)}; ZONE_HYPERVISOR "
          f"begins at {hypervisor.zone_hypervisor_base:#x}")

    guests = [
        hypervisor.create_guest(data_bytes=8 * MIB, ptp_bytes=MIB) for _ in range(3)
    ]
    for vm in guests:
        process = vm.kernel.create_process()
        vma = vm.kernel.mmap(process, 8 * PAGE_SIZE)
        vm.kernel.write_virtual(process, vma.start, f"VM{vm.vm_id} data".encode())
        print(f"\nVM {vm.vm_id}:")
        print(f"  host data range {vm.host_data_range[0]:#x}..{vm.host_data_range[1]:#x}")
        print(f"  host PTP slice  {vm.host_ptp_range[0]:#x}..{vm.host_ptp_range[1]:#x} "
              f"(inside ZONE_HYPERVISOR)")
        pt_pfns = vm.kernel.page_table_pfns(process.pid)
        host_pt = [
            vm.window.host_address(pfn << PAGE_SHIFT) >> PAGE_SHIFT for pfn in pt_pfns
        ]
        print(f"  guest page tables at host pfns {min(host_pt)}..{max(host_pt)}")

    hypervisor.verify_isolation()
    print("\ncross-VM isolation verified: every guest's page tables live in "
          "ZONE_HYPERVISOR true-cells,")
    print("every guest's data lives below it, and no host range is shared.")


if __name__ == "__main__":
    main()
