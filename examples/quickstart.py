"""Quickstart: the paper's headline result in ~30 lines.

Runs the Project-Zero-style probabilistic PTE privilege-escalation attack
(Figure 3) against two simulated systems:

- a stock kernel, where the attack corrupts a PTE into self-reference and
  demonstrates an arbitrary physical read (root), and
- the same system with CTA memory allocation, where the attack is
  structurally blocked: no attacker-reachable row is adjacent to a page
  table.

Usage::

    python examples/quickstart.py
"""

from repro import build_protected_system, build_stock_system
from repro.attacks import ProbabilisticPteAttack
from repro.dram.rowhammer import FlipStatistics, RowHammerModel

# Exaggerated flip statistics so the scaled-down simulation concludes in
# seconds; the *structure* of the result does not depend on the rates.
DEMO_STATS = FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5)


def attack(kernel, label: str) -> None:
    hammer = RowHammerModel(kernel.module, DEMO_STATS, seed=1)
    attacker = kernel.create_process()
    result = ProbabilisticPteAttack(kernel=kernel, hammer=hammer).run(
        attacker, spray_mappings=96, max_rounds=3
    )
    print(f"{label:>14s}: {result.outcome.value}")
    print(f"{'':>14s}  {result.detail}")
    if result.succeeded:
        print(f"{'':>14s}  flips induced: {result.flips_induced}, "
              f"modeled hardware time: {result.modeled_time_s:.1f}s")


def main() -> None:
    print("RowHammer PTE privilege escalation, stock vs CTA kernel\n")
    attack(build_stock_system(), "stock kernel")
    print()
    attack(build_protected_system(), "CTA kernel")


if __name__ == "__main__":
    main()
