"""Survey of RowHammer countermeasures (Section 2.5) plus the paper's
security tables, printed as one report.

Usage::

    python examples/defense_survey.py
"""

from repro.analysis.tables import PAPER_TABLE2, headline_numbers, paper_table2
from repro.defenses import all_defenses


def print_defense_matrix() -> None:
    print("== countermeasure comparison ==")
    print(f"{'defense':14s} {'energy':>7s} {'hw?':>4s} {'legacy':>7s} "
          f"{'LoC':>6s} {'blocks PTE attacks':>20s}")
    for defense in all_defenses():
        cost = defense.cost()
        evaluation = defense.evaluate()
        blocks = (
            "fully"
            if evaluation.fully_blocks_pte_attacks
            else ("partially" if evaluation.blocks_probabilistic_pte else "no")
        )
        print(
            f"{defense.name:14s} {cost.energy_multiplier:7.2f} "
            f"{'yes' if cost.requires_hardware_change else 'no':>4s} "
            f"{'yes' if cost.deployable_on_legacy else 'no':>7s} "
            f"{cost.software_complexity_loc:6d} {blocks:>20s}"
        )
        for weakness in evaluation.residual_weaknesses:
            print(f"{'':14s}   - {weakness}")
    print()


def print_security_table() -> None:
    print("== CTA security analysis (Table 2) ==")
    for row in paper_table2():
        paper_expected, paper_days = PAPER_TABLE2[row.label]
        print(f"{row.label:30s} E[exploitable]={row.expected_exploitable:10.4g} "
              f"attack={row.attack_time_days:7.1f} days "
              f"(paper: {paper_expected:g} / {paper_days:g})")
    print()
    numbers = headline_numbers()
    print(f"one vulnerable system in {numbers['systems_per_vulnerable']:.3g}; "
          f"expected attack time {numbers['attack_time_days']:.0f} days; "
          f"{numbers['slowdown_vs_20s']:.2g}x slower than the fastest "
          f"published attack")


def main() -> None:
    print_defense_matrix()
    print_security_table()


if __name__ == "__main__":
    main()
