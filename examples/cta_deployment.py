"""Deploying CTA end to end, the way Section 6 describes.

1. Profile the DRAM module's true/anti-cell layout with the one-time
   system-level test (write 1s, disable refresh, read back — Section 2.2).
2. Plan ZONE_PTP: true-cell sub-zones above the low water mark, anti-cell
   gaps invalidated; report the capacity cost (Section 6.2).
3. Boot the kernel with the CTA allocator and verify Rules 1 and 2 hold
   under a real workload.
4. Run the paper's Algorithm 1 against it and show why it fails: every
   corrupted PTE pointer moves monotonically downward, and a full
   brute-force sweep at paper scale would take months.

Usage::

    python examples/cta_deployment.py
"""

from repro import build_protected_system
from repro.attacks import CtaBruteForceAttack
from repro.attacks.timing import AttackTimingModel
from repro.dram.profiler import CellTypeProfiler
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.units import GIB, MIB, PAGE_SIZE, SECONDS_PER_DAY, format_size


def main() -> None:
    print("== step 1: boot with CTA (runs the cell-type profiler) ==")
    kernel = build_protected_system(multilevel=True)
    policy = kernel.cta_policy
    accuracy = CellTypeProfiler(kernel.module).verify_against(kernel.module.cell_map)
    print(f"profiler classification accuracy vs ground truth: {100 * accuracy:.1f}%")
    print(f"low water mark at {policy.low_water_mark:#x} "
          f"({format_size(policy.low_water_mark)})")
    print(f"ZONE_PTP true-cell capacity: {format_size(policy.config.ptp_bytes)} "
          f"across {len(policy.true_cell_ranges)} sub-zone range(s)")
    print(f"anti-cell capacity invalidated: {format_size(policy.capacity_loss_bytes)} "
          f"({100 * policy.capacity_loss_fraction:.2f}% of memory)\n")

    print("== step 2: run a workload, verify Rules 1 and 2 ==")
    process = kernel.create_process()
    for _ in range(12):
        vma = kernel.mmap(process, 4 * PAGE_SIZE)
        kernel.write_virtual(process, vma.start, b"application data")
    kernel.verify_cta_rules()
    pt_pfns = kernel.page_table_pfns(process.pid)
    print(f"workload built {len(pt_pfns)} page-table pages, all at "
          f"pfn >= {policy.low_water_mark_pfn} (the mark): "
          f"{min(pt_pfns)}..{max(pt_pfns)}")
    print("CTA rules verified: no PTP below the mark, nothing else above it\n")

    print("== step 3: Algorithm 1 attacks the protected system ==")
    hammer = RowHammerModel(
        kernel.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.998), seed=3
    )
    attack = CtaBruteForceAttack(kernel=kernel, hammer=hammer)
    result = attack.run(kernel.create_process(), max_target_pages=3)
    monotonic = sum(1 for o in attack.observations if o.monotonic)
    print(f"outcome: {result.outcome.value}")
    print(f"flips induced inside ZONE_PTP: {result.flips_induced}")
    print(f"corrupted PTE pointers: {len(attack.observations)}, of which "
          f"{monotonic} moved downward (monotonicity)\n")

    print("== step 4: what the full attack would cost at paper scale ==")
    timing = AttackTimingModel()
    for mem_gib, ptp_mib in ((8, 32), (32, 64)):
        worst = timing.worst_case_s(mem_gib * GIB, ptp_mib * MIB)
        print(f"  {mem_gib:3d} GiB memory, {ptp_mib} MiB ZONE_PTP: "
              f"worst-case sweep {worst / SECONDS_PER_DAY:8.1f} days")
    print("\nversus 20 seconds for the fastest published attack on an"
          " unprotected system [37].")


if __name__ == "__main__":
    main()
