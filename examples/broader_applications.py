"""Section 8's broader uses of monotonicity, demonstrated live.

1. Permission vectors in true-cells: fault attacks can revoke grants but
   can never turn a denial into a grant — confidentiality survives.
2. Coldboot canaries: reserved charged cells distinguish a legitimate
   long power-off from a chilled fast cycle, and refuse to boot after
   the latter.
3. Directional hamming code: data in true-cells, popcount in anti-cells;
   one comparison detects any pure charge-leak corruption.

Usage::

    python examples/broader_applications.py
"""

from repro.dram.cells import CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.extensions import (
    BootDecision,
    ColdbootGuard,
    DirectionalCodec,
    Permission,
    PermissionVectorStore,
)
from repro.extensions.coldboot import reserve_canaries
from repro.units import MIB


def build_module() -> DramModule:
    geometry = DramGeometry(total_bytes=4 * MIB, row_bytes=16 * 1024, num_banks=2)
    return DramModule(geometry, CellTypeMap.interleaved(geometry, period_rows=8))


def demo_permissions() -> None:
    print("== permission vectors in true-cells ==")
    module = build_module()
    store = PermissionVectorStore(module)
    for name in ("alice", "bob", "carol"):
        store.grant(name, Permission.READ)
    hammer = RowHammerModel(
        module, FlipStatistics(p_vulnerable=5e-2, p_with_leak=1.0), seed=9
    )
    rows = {r.address // module.geometry.row_bytes for r in store.records()}
    for row in rows:
        for neighbor in module.geometry.neighbors(row):
            hammer.hammer(neighbor)
    print(f"after hammering: confidentiality preserved = "
          f"{store.confidentiality_preserved()}")
    print(f"escalations (denied -> allowed): {store.escalations()}")
    print(f"degradations (allowed -> denied): "
          f"{[(s, str(o), str(c)) for s, o, c in store.degradations()]}\n")


def demo_coldboot() -> None:
    print("== coldboot canaries ==")
    module = build_module()
    true_addrs, anti_addrs = reserve_canaries(module, per_type=32)
    guard = ColdbootGuard(module, true_addrs, anti_addrs)

    guard.arm()
    guard.simulate_power_off(decay_fraction=1.0)
    legit = guard.check()
    print(f"long power-off: {legit.decision.value} "
          f"(remanence {100 * legit.remanence_fraction:.0f}%)")

    guard.arm()
    guard.simulate_power_off(decay_fraction=0.05)  # chilled fast cycle
    attacked = guard.check()
    print(f"chilled fast cycle: {attacked.decision.value} "
          f"(remanence {100 * attacked.remanence_fraction:.0f}%)")
    assert attacked.decision is BootDecision.SHUTDOWN
    print()


def demo_hamming() -> None:
    print("== directional hamming-weight code ==")
    module = build_module()
    codec = DirectionalCodec(module)
    block = codec.encode(b"disk-encryption-key-material!!")
    clean, _ = codec.check(block)
    print(f"freshly stored block verifies: {clean}")
    # Inject a single true-cell leak flip (1 -> 0) into a set data bit.
    first_byte = module.read(block.data_address, 1)[0]
    lowest_set_bit = (first_byte & -first_byte).bit_length() - 1
    module.write_bit(block.data_address, lowest_set_bit, 0)
    clean, _ = codec.check(block)
    print(f"after one 1->0 data flip, verifies: {clean} (corruption detected)")
    assert not clean
    print(f"false-negative bound for 10 simultaneous flips: "
          f"{DirectionalCodec.false_negative_probability(10):.4f}")


def main() -> None:
    demo_permissions()
    demo_coldboot()
    demo_hamming()


if __name__ == "__main__":
    main()
