"""Anatomy of a PTE-based privilege escalation (Figure 3, step by step).

Walks the Project Zero attack through its phases on a stock simulated
kernel, narrating what each phase does to physical memory:

1. spray   — fill memory with the attacker's own page tables
2. hammer  — double-sided RowHammer on rows adjacent to attacker rows
3. detect  — scan the attacker's mappings for pages that suddenly read
             like page tables (PTE self-reference)
4. escalate — forge a PTE through the exposed window and prove an
             arbitrary physical read of a kernel secret

Usage::

    python examples/privilege_escalation.py [seed]
"""

import sys

from repro import build_stock_system
from repro.attacks.escalation import attempt_escalation, find_self_references
from repro.attacks.probabilistic import ProbabilisticPteAttack
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.units import PAGE_SHIFT


def main(seed: int = 1) -> None:
    kernel = build_stock_system()
    hammer = RowHammerModel(
        kernel.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5), seed=seed
    )
    attacker = kernel.create_process()
    attack = ProbabilisticPteAttack(kernel=kernel, hammer=hammer)

    print("== phase 1: spray ==")
    attack._spray_interleaved(attacker, 96, 4, 2)
    pt_pages = kernel.page_table_pfns(attacker.pid)
    print(f"created {len(attack.sprayed_vas)} file mappings; the kernel built "
          f"{len(pt_pages)} page-table pages for this process")
    print(f"page tables occupy pfns {min(pt_pages)}..{max(pt_pages)} — "
          f"interleaved with attacker data\n")

    print("== phase 2 + 3: hammer and detect ==")
    victim_rows = attack._candidate_victim_rows(attacker)
    print(f"{len(victim_rows)} candidate victim rows adjacent to attacker rows")
    references = []
    flips = 0
    for row in victim_rows * 3:  # up to three passes
        outcome = hammer.hammer(row)
        flips += outcome.flip_count
        if not outcome.flips:
            continue
        kernel.tlb.flush()
        references = find_self_references(kernel, attacker, attack.checked_vas)
        if references:
            break
    print(f"{flips} bit flips induced")
    if not references:
        print("no self-reference this seed; try another seed")
        return
    window = references[0]
    print(f"PTE self-reference at VA {window.virtual_address:#x}: its PTE now "
          f"points at page-table pfn {window.target_pfn}\n")

    print("== phase 4: escalate ==")
    report = attempt_escalation(kernel, attacker, window)
    if report.achieved:
        print(f"forged PTE {report.forged_pte_value:#x} written through the window")
        print(f"kernel secret read from user space: {report.proof_read!r}")
        print("privilege escalation complete: attacker reads arbitrary physical memory")
    else:
        print(f"escalation failed: {report.detail}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
