"""Typed metrics: counters, gauges, and histograms in a registry.

Zero-dependency observability substrate for the simulator. Every
instrumented layer (DRAM hammer model, refresh scheduler, buddy
allocator, MMU/TLB, attack harnesses) records into the process-wide
default registry (see :mod:`repro.obs`); the perf harness and the
``repro stats`` CLI read snapshots back out.

Design constraints:

- **Zero dependencies** — plain dicts, no client libraries.
- **Cheap no-op path** — a disabled registry turns every record call
  into a single attribute check and an early return, so instrumentation
  can stay unconditionally in hot simulator loops.
- **Typed** — a name is permanently bound to one metric kind; reusing a
  name with a different kind raises :class:`ObservabilityError`, which
  keeps the metric-name contract (README "Observability") honest.

Labels are free-form keyword arguments; each distinct label set is an
independent series, e.g. ``flips{cell=true,direction=1to0}``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Canonical, hashable form of one series' labels.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonicalise a label dict: sorted (key, str(value)) pairs."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, key: LabelKey) -> str:
    """Printable series name, ``name{k=v,...}`` (bare name when unlabeled)."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Metric:
    """Base class: a named, labeled family of series.

    ``registry`` is the owning :class:`Registry`; a standalone metric
    (``registry=None``) is always enabled.
    """

    kind = "metric"

    def __init__(self, name: str, description: str = "", registry: Optional["Registry"] = None):
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        self.name = name
        self.description = description
        self._registry = registry

    @property
    def enabled(self) -> bool:
        """Whether record calls take effect."""
        return self._registry is None or self._registry.enabled

    def clear(self) -> None:
        """Drop every series (back to the just-created state)."""
        raise NotImplementedError

    def series(self) -> Dict[LabelKey, float]:
        """Snapshot of every series' scalar value."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (events, flips, allocations)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "", registry: Optional["Registry"] = None):
        super().__init__(name, description, registry)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if not self.enabled:
            return
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease")
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 when never incremented)."""
        return self._values.get(label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._values)

    def clear(self) -> None:
        self._values.clear()


class Gauge(Metric):
    """Point-in-time level (free pages, TLB occupancy)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "", registry: Optional["Registry"] = None):
        super().__init__(name, description, registry)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the labeled series to ``value``."""
        if not self.enabled:
            return
        self._values[label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the labeled series by ``amount`` (may be negative)."""
        if not self.enabled:
            return
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the labeled series by ``-amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 when never set)."""
        return self._values.get(label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._values)

    def clear(self) -> None:
        self._values.clear()


#: Default histogram bucket upper bounds (log-ish spread; +inf implied).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class HistogramSeries:
    """One label set's accumulated distribution."""

    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, num_buckets: int):
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # One slot per finite bound plus the +inf overflow slot.
        self.bucket_counts = [0] * (num_buckets + 1)

    @property
    def mean(self) -> float:
        """Arithmetic mean of observed values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class Histogram(Metric):
    """Distribution of observed values over fixed buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
        registry: Optional["Registry"] = None,
    ):
        super().__init__(name, description, registry)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name} buckets must be a non-empty ascending sequence"
            )
        self.buckets = bounds
        self._series: Dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample into the labeled series."""
        if not self.enabled:
            return
        key = label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        series.min = min(series.min, value)
        series.max = max(series.max, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[index] += 1
                return
        series.bucket_counts[-1] += 1

    def stats(self, **labels: object) -> HistogramSeries:
        """The labeled series' accumulated statistics (empty when unused)."""
        return self._series.get(label_key(labels), HistogramSeries(len(self.buckets)))

    def series(self) -> Dict[LabelKey, float]:
        """Snapshot: each series reduced to its sample count."""
        return {key: float(s.count) for key, s in self._series.items()}

    def clear(self) -> None:
        self._series.clear()


class Registry:
    """A namespace of typed metrics plus a trace-event ring buffer.

    ``enabled`` gates every record call registered metrics make (reads
    always work). Metric objects are created on first use and persist
    until :meth:`reset_metrics`; values survive :meth:`disable` /
    :meth:`enable` cycles.
    """

    def __init__(self, enabled: bool = True, trace_capacity: int = 4096):
        from repro.obs.trace import TraceBuffer  # late import: trace imports nothing back

        self._metrics: Dict[str, Metric] = {}
        self._enabled = enabled
        self.trace = TraceBuffer(capacity=trace_capacity)

    # -- enable/disable ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether record calls currently take effect."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn recording off (record calls become cheap no-ops)."""
        self._enabled = False

    # -- metric accessors ----------------------------------------------------
    def counter(self, name: str, description: str = "") -> Counter:
        """Create-or-get the counter called ``name``."""
        return self._get(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Create-or-get the gauge called ``name``."""
        return self._get(Gauge, name, description)

    def histogram(
        self, name: str, description: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Create-or-get the histogram called ``name``."""
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, description, buckets=buckets, registry=self)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, Histogram):
            raise ObservabilityError(
                f"metric {name!r} is a {existing.kind}, not a histogram"
            )
        return existing

    def _get(self, cls, name: str, description: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, description, registry=self)
            self._metrics[name] = metric
            return metric
        if type(existing) is not cls:
            raise ObservabilityError(
                f"metric {name!r} is a {existing.kind}, not a {cls.kind}"
            )
        return existing

    def get(self, name: str) -> Optional[Metric]:
        """The metric called ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def metrics(self) -> Iterable[Metric]:
        """Registered metrics in name order."""
        return [self._metrics[name] for name in self.names()]

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        """Clear every metric's values and drain the trace buffer.

        Metric objects (and their kind bindings) survive so cached
        handles in instrumented modules stay valid.
        """
        for metric in self._metrics.values():
            metric.clear()
        self.trace.clear()

    def reset_metrics(self) -> None:
        """Forget every metric entirely (names become rebindable)."""
        self._metrics.clear()
        self.trace.clear()

    # -- export --------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``series-name -> value`` view of every metric.

        Histograms contribute ``<name>.count``, ``.sum``, ``.min``,
        ``.max`` per series so snapshot deltas stay meaningful.
        """
        out: Dict[str, float] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                for key in metric.series():
                    stats = metric.stats(**dict(key))
                    base = format_series(metric.name, key)
                    out[f"{base}.count"] = float(stats.count)
                    out[f"{base}.sum"] = stats.sum
                    out[f"{base}.min"] = stats.min
                    out[f"{base}.max"] = stats.max
            else:
                for key, value in metric.series().items():
                    out[format_series(metric.name, key)] = value
        return out

    def export_state(self) -> Dict[str, object]:
        """Structured, picklable dump of every metric and trace event.

        The inverse of :meth:`merge_state`: campaign workers export the
        metrics they recorded in their own process and the parent merges
        them back, so a parallel run's registry converges to the same
        totals a serial run records directly.
        """
        counters: Dict[str, Dict[str, object]] = {}
        gauges: Dict[str, Dict[str, object]] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = {
                    "description": metric.description,
                    "series": sorted(metric._values.items()),
                }
            elif isinstance(metric, Gauge):
                gauges[name] = {
                    "description": metric.description,
                    "series": sorted(metric._values.items()),
                }
            elif isinstance(metric, Histogram):
                histograms[name] = {
                    "description": metric.description,
                    "buckets": metric.buckets,
                    "series": [
                        (
                            key,
                            {
                                "count": s.count,
                                "sum": s.sum,
                                "min": s.min,
                                "max": s.max,
                                "bucket_counts": list(s.bucket_counts),
                            },
                        )
                        for key, s in sorted(metric._series.items())
                    ],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "trace": [(event.name, dict(event.fields)) for event in self.trace.events()],
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a worker's :meth:`export_state` dump into this registry.

        Counters add, gauges overwrite (last merge wins, matching serial
        last-write semantics when dumps are merged in segment order),
        histogram series merge field-wise, and trace events are re-emitted
        in dump order. Merging bypasses the ``enabled`` gate — a disabled
        parent registry still accepts worker state.
        """
        for name, data in state.get("counters", {}).items():  # type: ignore[union-attr]
            metric = self.counter(name, data.get("description", ""))
            for key, value in data["series"]:
                key = tuple(tuple(pair) for pair in key)
                metric._values[key] = metric._values.get(key, 0.0) + value
        for name, data in state.get("gauges", {}).items():  # type: ignore[union-attr]
            metric = self.gauge(name, data.get("description", ""))
            for key, value in data["series"]:
                metric._values[tuple(tuple(pair) for pair in key)] = value
        for name, data in state.get("histograms", {}).items():  # type: ignore[union-attr]
            metric = self.histogram(
                name, data.get("description", ""), buckets=data.get("buckets")
            )
            if tuple(data.get("buckets", metric.buckets)) != metric.buckets:
                raise ObservabilityError(
                    f"histogram {name!r} bucket mismatch during merge"
                )
            for key, dump in data["series"]:
                key = tuple(tuple(pair) for pair in key)
                series = metric._series.get(key)
                if series is None:
                    series = metric._series[key] = HistogramSeries(len(metric.buckets))
                series.count += dump["count"]
                series.sum += dump["sum"]
                series.min = min(series.min, dump["min"])
                series.max = max(series.max, dump["max"])
                for index, count in enumerate(dump["bucket_counts"]):
                    series.bucket_counts[index] += count
        for name, fields in state.get("trace", ()):  # type: ignore[union-attr]
            self.trace.emit(name, **fields)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Snapshot serialised as a JSON object (stable key order)."""
        import json

        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def format_table(self) -> str:
        """Snapshot as an aligned two-column text table."""
        snapshot = self.snapshot()
        if not snapshot:
            return "(no metrics recorded)"
        width = max(len(name) for name in snapshot)
        lines = []
        for name in sorted(snapshot):
            value = snapshot[name]
            rendered = f"{int(value)}" if float(value).is_integer() else f"{value:.6g}"
            lines.append(f"{name:<{width}s}  {rendered:>14s}")
        return "\n".join(lines)
