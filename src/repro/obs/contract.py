"""The frozen observability contract: every metric and trace-event name.

The README's "Observability" section documents metric names as a stable
contract — ``PerfResult.metrics`` and the integration tests assert on
them, so renaming one is a breaking change. This module is the single
machine-readable source of that contract: the static lint rule ``RL005``
checks every ``obs.inc`` / ``obs.set_gauge`` / ``obs.observe`` /
``obs.trace`` call site against these tables, and the README table is
expected to stay in sync with them.

Adding a metric is fine (add it here and to the README in the same
change); renaming or re-kinding one is the breaking change the lint
exists to catch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet


#: Metric name -> kind. Kind must match the helper used at the call
#: site: ``inc`` -> ``counter``, ``set_gauge`` -> ``gauge``,
#: ``observe`` -> ``histogram``.
METRICS: Dict[str, str] = {
    # RowHammer
    "rowhammer.hammers": "counter",
    "rowhammer.activations": "counter",
    "rowhammer.flips": "counter",
    "rowhammer.flips_per_hammer": "histogram",
    # Refresh
    "refresh.sweeps": "counter",
    "refresh.rows_refreshed": "counter",
    "refresh.rows_restored_late": "counter",
    # Buddy allocator
    "buddy.allocs": "counter",
    "buddy.frees": "counter",
    "buddy.splits": "counter",
    "buddy.merges": "counter",
    "buddy.failed_allocs": "counter",
    "buddy.free_pages": "gauge",
    # Kernel facade
    "kernel.page_allocs": "counter",
    "kernel.page_frees": "counter",
    "kernel.pte_allocs": "counter",
    "kernel.demand_faults": "counter",
    "kernel.huge_mappings": "counter",
    "kernel.ptp_reclaims": "counter",
    "kernel.ptp_fallback_denied": "counter",
    "kernel.indicator_rejections": "counter",
    "kernel.screening_rejections": "counter",
    # TLB / MMU
    "tlb.hits": "counter",
    "tlb.misses": "counter",
    "tlb.flushes": "counter",
    "tlb.evictions": "counter",
    "mmu.walks": "counter",
    "mmu.faults": "counter",
    # Frontier-walker instrumentation (fast path only — documented as
    # outside the batched/scalar equivalence contract).
    "mmu.walk.frontier_batches": "counter",
    "mmu.walk.levels": "counter",
    # DRAM sparse store
    "dram.resident_rows": "gauge",
    # Attacks
    "attack.attempts": "counter",
    "attack.outcomes": "counter",
    "attack.spray_mappings": "counter",
    "attack.escalation_probes": "counter",
    "attack.escalations_achieved": "counter",
    "attack.pointer_observations": "counter",
    # Payload DSL
    "payload.compiles": "counter",
    "payload.executions": "counter",
    # Sanitizers
    "sanitize.checks": "counter",
    "sanitize.violations": "counter",
    "sanitize.acknowledged_downgrades": "counter",
    # Fault-injection plane
    "faults.injected": "counter",
    # Graceful degradation (ZONE_PTP exhaustion policies)
    "kernel.capacity_exhaustions": "counter",
    "kernel.security_downgrades": "counter",
    "kernel.fallback_screen_rejections": "counter",
    # Campaign runner
    "campaign.segments": "counter",
    "campaign.retries": "counter",
    # Segment memoization (content-addressed result cache)
    "memo.hits": "counter",
    "memo.misses": "counter",
    "memo.stores": "counter",
    "memo.bytes": "gauge",
    "memo.verify.recomputed": "counter",
    # Campaign service (admission control + worker supervision)
    "service.admitted": "counter",
    "service.rejected": "counter",
    "service.shed": "counter",
    "service.worker_restarts": "counter",
    "service.snapshot_quarantined": "counter",
    "service.deadline_missed": "counter",
    # Static verifier
    "verify.payload_checks": "counter",
    "verify.config_checks": "counter",
    # Soundness canary: a dynamic observation escaped the static bounds.
    # Tests assert this stays zero; any non-zero value is a verifier bug.
    "verify.unsound": "counter",
}

#: Names allowed as the first argument of ``obs.trace``.
TRACE_EVENTS: FrozenSet[str] = frozenset(
    {
        "rowhammer.hammer",
        "refresh.sweep",
        "kernel.pte_alloc",
        "attack.spray",
        "attack.escalation",
        "payload.execute",
        "sanitize.violation",
        "faults.inject",
        "kernel.downgrade",
        "service.request",
    }
)

#: Helper-name -> metric kind it may record (used by lint rule RL005).
HELPER_KINDS: Dict[str, str] = {
    "inc": "counter",
    "set_gauge": "gauge",
    "observe": "histogram",
}
