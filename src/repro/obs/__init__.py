"""repro.obs — zero-dependency observability (metrics + trace events).

A process-wide default :class:`~repro.obs.metrics.Registry` collects
typed metrics (counters, gauges, histograms) and structured trace
events from every instrumented layer. Instrumentation goes through the
module-level helpers below, which resolve the default registry *at call
time* — replacing or resetting the registry (as the test suite does
between tests) immediately redirects all recording.

Usage::

    from repro import obs

    obs.inc("rowhammer.flips", direction="1to0", cell="true")
    obs.trace("rowhammer.hammer", aggressor=7, flips=3)

    snapshot = obs.get_registry().snapshot()
    obs.disable()        # record calls become cheap no-ops

The metric names emitted by the simulator form a stable contract,
documented in the README's "Observability" section.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSeries,
    Metric,
    Registry,
    format_series,
    label_key,
)
from repro.obs.trace import TraceBuffer, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "Metric",
    "Registry",
    "TraceBuffer",
    "TraceEvent",
    "format_series",
    "label_key",
    "get_registry",
    "set_registry",
    "reset",
    "enable",
    "disable",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "inc",
    "set_gauge",
    "observe",
    "trace",
]

_default_registry = Registry()


def get_registry() -> Registry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the default; returns it (for chaining)."""
    global _default_registry
    _default_registry = registry
    return registry


def reset() -> None:
    """Clear the default registry's values and traces (keeps bindings)."""
    _default_registry.reset()


def enable() -> None:
    """Turn default-registry recording on."""
    _default_registry.enable()


def disable() -> None:
    """Turn default-registry recording off (no-op path)."""
    _default_registry.disable()


def enabled() -> bool:
    """Whether default-registry recording is on."""
    return _default_registry.enabled


# -- metric shorthands (resolve the default registry at call time) ----------
def counter(name: str, description: str = "") -> Counter:
    """Create-or-get a counter in the default registry."""
    return _default_registry.counter(name, description)


def gauge(name: str, description: str = "") -> Gauge:
    """Create-or-get a gauge in the default registry."""
    return _default_registry.gauge(name, description)


def histogram(
    name: str, description: str = "", buckets: Optional[Sequence[float]] = None
) -> Histogram:
    """Create-or-get a histogram in the default registry."""
    return _default_registry.histogram(name, description, buckets=buckets)


def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a default-registry counter (no-op when disabled)."""
    registry = _default_registry
    if registry.enabled:
        registry.counter(name).inc(amount, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a default-registry gauge (no-op when disabled)."""
    registry = _default_registry
    if registry.enabled:
        registry.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Record a sample into a default-registry histogram (no-op when disabled)."""
    registry = _default_registry
    if registry.enabled:
        registry.histogram(name).observe(value, **labels)


def trace(name: str, **fields: object) -> None:
    """Emit a trace event into the default registry (no-op when disabled)."""
    registry = _default_registry
    if registry.enabled:
        registry.trace.emit(name, **fields)
