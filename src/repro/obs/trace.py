"""Structured trace events in a bounded ring buffer.

A trace event is a named record with free-form scalar fields — e.g.
``rowhammer.hammer{aggressor=37, victims=2, flips=1}``. Events go into a
fixed-capacity ring: when full, the oldest events are evicted and the
``dropped`` counter records how many were lost, so a long campaign can
run with tracing on without unbounded memory growth.

Events carry a monotonically increasing per-buffer sequence number
instead of a wall-clock timestamp, keeping traces deterministic for a
given simulation seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: buffer-order sequence number, name, fields."""

    seq: int
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """``seq name{k=v,...}`` one-line rendering."""
        if not self.fields:
            return f"{self.seq:>8d}  {self.name}"
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"{self.seq:>8d}  {self.name}{{{inner}}}"


class TraceBuffer:
    """Fixed-capacity FIFO of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ObservabilityError("trace capacity must be positive")
        self._capacity = capacity
        self._events: Deque[TraceEvent] = deque()
        self._next_seq = 0
        #: Events evicted because the ring was full.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum events retained."""
        return self._capacity

    def emit(self, name: str, **fields: Any) -> TraceEvent:
        """Append one event, evicting the oldest when full."""
        event = TraceEvent(seq=self._next_seq, name=name, fields=fields)
        self._next_seq += 1
        self._events.append(event)
        if len(self._events) > self._capacity:
            self._events.popleft()
            self.dropped += 1
        return event

    def events(self, name: Optional[str] = None, last: Optional[int] = None) -> List[TraceEvent]:
        """Retained events oldest-first, optionally filtered by ``name``
        and/or truncated to the ``last`` N."""
        selected = [e for e in self._events if name is None or e.name == name]
        if last is not None:
            selected = selected[-last:]
        return selected

    def clear(self) -> None:
        """Drop every retained event and reset eviction accounting.

        The sequence counter keeps running so post-clear events remain
        ordered relative to earlier reads.
        """
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(list(self._events))
