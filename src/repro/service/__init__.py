"""repro.service — the long-lived, fault-tolerant campaign service.

Turns one-shot campaign runs (:mod:`repro.faults.campaign`,
:mod:`repro.perf.parallel`) into a supervised asyncio front-end that
accepts concurrent tenant requests, admission-controls them at a
bounded front door, schedules their segments onto persistent supervised
workers pre-attached to a snapshot library, and survives worker
crashes, hangs, and snapshot corruption — all without ever changing a
report byte: the stateless seed contract ``derive_seed(campaign_seed,
index, attempt)`` makes a re-run of a lost segment indistinguishable
from the run that was lost.

Layout:

- :mod:`~repro.service.protocol` — requests + newline-JSON wire format
  and the synchronous client (``repro submit``);
- :mod:`~repro.service.admission` — bounded queue, per-tenant caps,
  deadlines, priority shedding; every rejection a typed
  :class:`~repro.errors.AdmissionError` with a ``reason`` tag;
- :mod:`~repro.service.snapshot_library` — LRU-bounded
  :class:`~repro.perf.snapshot.SimulatorSnapshot` cache with a
  circuit breaker that quarantines suspect snapshots (cold-boot
  fallback keeps results identical);
- :mod:`~repro.service.supervisor` — the persistent worker pool:
  crash/hang classification, restart with accounted backoff,
  exactly-once re-enqueue of lost segments;
- :mod:`~repro.service.server` — :class:`CampaignService` glue, the
  socket server (``repro serve``), and the deterministic overload demo.

Fault hooks: the supervisor offers ``service.segment`` before every
dispatch and the library offers ``service.snapshot_attach`` before
every attach, so the ``worker-crash`` / ``worker-hang`` /
``snapshot-corrupt`` injector kinds drive every failure path in this
package deterministically from a seed.
"""

from __future__ import annotations

from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionTicket,
    VirtualClock,
)
from repro.service.protocol import CampaignRequest, send_op, submit_over_socket
from repro.service.server import CampaignService, run_overload_demo, serve
from repro.service.snapshot_library import SnapshotLibrary, snapshot_key
from repro.service.supervisor import SegmentJob, WorkerPool, spawn_supervised

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionTicket",
    "CampaignRequest",
    "CampaignService",
    "SegmentJob",
    "SnapshotLibrary",
    "VirtualClock",
    "WorkerPool",
    "run_overload_demo",
    "send_op",
    "serve",
    "snapshot_key",
    "spawn_supervised",
    "submit_over_socket",
]
