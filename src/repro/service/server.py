"""The campaign service: admission -> supervised pool -> merged reports.

:class:`CampaignService` is the asyncio front-end gluing the package
together: requests pass :class:`~repro.service.admission.AdmissionController`
at the door, their segments are queued onto one shared
:class:`~repro.service.supervisor.WorkerPool`, and completed outcomes
merge back — obs deltas in segment-index order, records into the same
completed/failed shapes — producing a
:class:`~repro.faults.campaign.CampaignReport` **byte-identical** to
what :func:`repro.perf.parallel.run_campaign_parallel` (or the serial
:class:`~repro.faults.campaign.CampaignRunner`) yields for the same
(name, target, num_segments, seed, kwargs, config) tuple, no matter how
many workers crashed, hung, or snapshots got quarantined along the way.

:func:`serve` exposes the service over the newline-delimited JSON
protocol in :mod:`repro.service.protocol`; :func:`run_overload_demo`
drives a deterministic many-tenant overload scenario (admission
rejections, priority shedding, deadline misses, injected worker
crashes) entirely on a virtual clock, for tests and ``repro stats``.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.errors import AdmissionError, ReproError, ServiceError
from repro.faults.campaign import CampaignReport
from repro.perf.parallel import resolve_qualified
from repro.rng import DEFAULT_SEED, derive_seed
from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    VirtualClock,
)
from repro.service.protocol import (
    CampaignRequest,
    decode_line,
    encode_line,
    error_payload,
)
from repro.service.snapshot_library import (
    SnapshotLibrary,
    snapshot_factory_for,
    snapshot_key,
)
from repro.service.supervisor import SegmentJob, WorkerPool, spawn_supervised

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.perf.memo.runtime import SegmentMemo

__all__ = ["CampaignService", "serve", "run_overload_demo"]

#: Retryable taxonomy shipped to segment tasks — same default as the
#: parallel engine, so reports stay comparable.
_RETRYABLE_REFS = ["repro.errors:TransientFaultError"]


class CampaignService:
    """One long-lived campaign service instance (see module docstring)."""

    def __init__(
        self,
        *,
        workers: int = 2,
        policy: Optional[AdmissionPolicy] = None,
        mode: str = "inline",
        max_requeues: int = 2,
        backoff_base_s: float = 0.5,
        segment_timeout_s: Optional[float] = None,
        snapshot_capacity: int = 4,
        quarantine_threshold: int = 2,
        time_source: Callable[[], float] = time.monotonic,
        memo: Optional["SegmentMemo"] = None,
    ):
        self.library = SnapshotLibrary(
            capacity=snapshot_capacity, quarantine_threshold=quarantine_threshold
        )
        self.admission = AdmissionController(policy, time_source=time_source)
        # The memo sits next to the SnapshotLibrary as cross-tenant
        # shared state: identical (config, payload, seed, fault
        # schedule) segments from different tenants replay one cached
        # outcome. The pool consults it strictly after the shed window
        # closes, so admission-shed jobs can never populate or poison it.
        self.memo = memo
        self.pool = WorkerPool(
            workers,
            mode=mode,
            max_requeues=max_requeues,
            backoff_base_s=backoff_base_s,
            segment_timeout_s=segment_timeout_s,
            time_source=time_source,
            library=self.library,
            memo=memo,
        )
        self.backoff_base_s = backoff_base_s
        self._drained = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        self.pool.start()

    async def drain(self) -> None:
        """Stop admitting, finish every queued segment, stop workers.

        The drain guarantee: every request admitted before the drain
        began still completes with a full report — no segment is lost
        on shutdown.
        """
        self.admission.begin_drain()
        await self.pool.drain()
        self.library.close()
        self._drained.set()

    async def closed(self) -> None:
        """Wait until a drain has completed."""
        await self._drained.wait()

    # -- submission --------------------------------------------------------
    async def submit(
        self,
        request: CampaignRequest,
        progress_cb: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> CampaignReport:
        """Admit, run, and merge one campaign request.

        Raises a typed :class:`AdmissionError` on rejection / shedding /
        missed deadlines; on success returns a report byte-comparable to
        a serial reference run.
        """
        ticket = self.admission.admit(request)
        obs.trace(
            "service.request",
            campaign=request.name,
            tenant=request.tenant,
            segments=request.num_segments,
            priority=request.priority,
        )
        try:
            job = self._build_job(request, ticket, progress_cb)
            ticket.shed_fn = job.try_shed
            self.pool.submit_job(job)
            await job.done.wait()
            if job.error is not None:
                raise job.error
            return self._merge(request, job)
        finally:
            self.admission.release(ticket)

    def _build_job(
        self,
        request: CampaignRequest,
        ticket: Any,
        progress_cb: Optional[Callable[[Dict[str, Any]], None]],
    ) -> SegmentJob:
        """Expand a request into queued segment payloads (fail fast)."""
        resolve_qualified(request.target)
        run_kwargs = dict(request.kwargs)
        key: Optional[str] = None
        if request.warm_start:
            factory = snapshot_factory_for(request.target)
            if factory is None:
                raise ServiceError(
                    f"target {request.target!r} has no snapshot factory; "
                    "submit without warm_start"
                )
            key = snapshot_key(request.target, run_kwargs)
            name = self.library.acquire(key, lambda: factory(run_kwargs))
            if name is not None:
                run_kwargs["snapshot"] = name
        payloads = [
            {
                "target": request.target,
                "retryable": list(_RETRYABLE_REFS),
                "index": index,
                "name": request.name,
                "seed": request.seed,
                "max_retries": request.max_retries,
                "kwargs": dict(run_kwargs),
            }
            for index in range(request.num_segments)
        ]
        return SegmentJob(
            request,
            payloads,
            ticket=ticket,
            snapshot_key=key,
            progress_cb=progress_cb,
        )

    def _merge(self, request: CampaignRequest, job: SegmentJob) -> CampaignReport:
        """Fold outcomes into the registry and report, serial-identically."""
        registry = obs.get_registry()
        completed: Dict[int, Dict[str, Any]] = {}
        failed: Dict[int, Dict[str, Any]] = {}
        for index in sorted(job.outcomes):
            outcome = job.outcomes[index]
            registry.merge_state(outcome["obs_state"])
            if outcome["ok"]:
                completed[index] = outcome["record"]
                obs.inc("campaign.segments", campaign=request.name, status="completed")
            else:
                failed[index] = outcome["record"]
                obs.inc("campaign.segments", campaign=request.name, status="failed")
        interrupted = (len(completed) + len(failed)) < request.num_segments
        return CampaignReport(
            name=request.name,
            seed=request.seed,
            num_segments=request.num_segments,
            config=dict(request.config),
            backoff_base_s=self.backoff_base_s,
            completed=completed,
            failed=failed,
            interrupted=interrupted,
        )

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Machine-readable service health for the ``stats`` op."""
        counters = {
            name: value
            for name, value in sorted(obs.get_registry().snapshot().items())
            if name.startswith("service.")
        }
        return {
            "counters": counters,
            "pool": {
                "size": self.pool.size,
                "mode": self.pool.mode,
                "queued": self.pool.queued,
                "restarts": self.pool.restarts,
                "backoff_accounted_s": self.pool.backoff_accounted_s,
            },
            "admission": {
                "active": self.admission.active_count,
                "draining": self.admission.draining,
            },
            "snapshots": {
                "keys": list(self.library.keys),
                "quarantined": sorted(self.library.quarantined),
            },
            "memo": (
                None
                if self.memo is None
                else {
                    "hits": self.memo.hits,
                    "misses": self.memo.misses,
                    "stores": self.memo.stores,
                    "bypasses": self.memo.bypasses,
                    "verified": self.memo.verified,
                    "disk_dir": self.memo.disk_directory,
                }
            ),
        }


async def _handle_connection(
    service: CampaignService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection of the line protocol."""
    try:
        line = await reader.readline()
        if not line.strip():
            return
        try:
            message = decode_line(line)
            op = str(message.get("op", ""))
            if op == "ping":
                writer.write(encode_line({"event": "done", "ok": True, "pong": True}))
            elif op == "stats":
                writer.write(
                    encode_line({"event": "done", "ok": True, "stats": service.stats()})
                )
            elif op == "drain":
                await service.drain()
                writer.write(
                    encode_line({"event": "done", "ok": True, "drained": True})
                )
            elif op == "submit":
                request = CampaignRequest.from_wire(message.get("request", {}))

                def push(event: Dict[str, Any]) -> None:
                    writer.write(encode_line(event))

                report = await service.submit(request, progress_cb=push)
                writer.write(
                    encode_line(
                        {"event": "done", "ok": True, "report": report.to_dict()}
                    )
                )
            else:
                raise ServiceError(f"unknown op {op!r}")
        except ReproError as exc:
            # Typed errors go back over the wire; the server stays up.
            writer.write(encode_line(error_payload(exc)))
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_cb: Optional[Callable[[int], None]] = None,
) -> None:
    """Run the line-protocol server until a client sends ``drain``.

    ``port=0`` binds an ephemeral port; ``ready_cb`` receives the bound
    port once listening (the CLI prints it so clients can connect).
    """
    service.start()

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(service, reader, writer)

    server = await asyncio.start_server(handler, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]
    if ready_cb is not None:
        ready_cb(bound_port)
    async with server:
        await service.closed()


def run_overload_demo(
    tenants: int = 50,
    segments: int = 1,
    seed: int = DEFAULT_SEED,
    workers: int = 2,
    fault_specs: Tuple[str, ...] = ("worker-crash:p=1,max=2",),
    policy: Optional[AdmissionPolicy] = None,
) -> Dict[str, Any]:
    """Deterministic many-tenant overload scenario (EXPERIMENTS.md).

    ``tenants`` requests (cheap :func:`repro.perf.parallel.montecarlo_trial`
    segments) arrive from a handful of tenant identities with mixed
    priorities and deadlines while the pool is still parked, so the
    admission picture — queue-full rejections, tenant-cap rejections,
    priority shedding — is decided before any segment runs. The virtual
    clock then jumps past the short deadlines, the pool starts (injected
    ``worker-crash`` faults kill workers mid-drain; the supervisor
    restarts them and re-enqueues), and every surviving request
    completes. Two invocations with the same arguments return the same
    summary dict — asserted by tests.
    """
    policy = policy or AdmissionPolicy(
        max_active=max(1, tenants // 4), tenant_cap=3
    )

    async def _run() -> Dict[str, Any]:
        clock = VirtualClock()
        service = CampaignService(
            workers=workers, policy=policy, time_source=clock
        )
        if fault_specs:
            faults.install(fault_specs, seed=seed)

        async def one(index: int) -> Tuple[str, str]:
            request = CampaignRequest(
                name=f"overload-{index:02d}",
                target="repro.perf.parallel:montecarlo_trial",
                num_segments=segments,
                seed=derive_seed(seed, index),
                tenant=f"team-{index % 8}",
                priority=index % 3,
                deadline_s=(5.0 if index % 5 == 0 else None),
                kwargs={"total_bytes": 64 * 1024 * 1024, "ptp_bytes": 1024 * 1024},
                config={"demo": "overload"},
            )
            try:
                report = await service.submit(request)
                return ("completed", f"{len(report.completed)}/{segments}")
            except AdmissionError as exc:
                return ("rejected:" + exc.reason, "")

        waiters = [
            spawn_supervised(one(index), name=f"overload-submit-{index}")
            for index in range(tenants)
        ]
        # Let every submission reach admission (pool still parked), then
        # expire the short deadlines before any dispatch happens.
        await asyncio.sleep(0)
        clock.advance(10.0)
        service.start()
        results = await asyncio.gather(*waiters)
        await service.drain()
        if fault_specs:
            faults.uninstall()

        outcomes: Dict[str, int] = {}
        for status, _ in results:
            outcomes[status] = outcomes.get(status, 0) + 1
        return {
            "tenants": tenants,
            "outcomes": dict(sorted(outcomes.items())),
            "worker_restarts": service.pool.restarts,
            "backoff_accounted_s": service.pool.backoff_accounted_s,
            "service_counters": {
                name: value
                for name, value in sorted(obs.get_registry().snapshot().items())
                if name.startswith("service.")
            },
        }

    return asyncio.run(_run())
