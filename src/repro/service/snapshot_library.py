"""A supervised library of pre-captured simulator snapshots.

The service keeps one :class:`~repro.perf.snapshot.SimulatorSnapshot`
per (target, geometry) combination so segments warm-start instead of
replaying boot + spray per trial (the PR 5 warm==cold equality proof is
what makes this safe: an attached world produces byte-identical results
to a cold boot, so warm-starting never changes a report).

Two protections wrap the cache:

- **LRU eviction** — at most ``capacity`` live shared-memory worlds;
  acquiring an absent key beyond capacity releases the least recently
  used snapshot first, so a long-lived server's shared-memory footprint
  is bounded no matter how many geometries tenants submit.
- **Circuit breaker** — every attach failure (injected via the
  ``snapshot-corrupt`` fault kind or real) and every worker death
  attributable to a snapshot is a *strike* against its key; at
  ``quarantine_threshold`` strikes the key is quarantined: its world is
  released, ``service.snapshot_quarantined`` increments once, and every
  later acquire returns ``None`` — the cold-boot fallback — instead of
  handing out a suspect world again.

Acquire offers ``service.snapshot_attach`` to the fault plane before
touching the cache, so corruption schedules replay deterministically
from a seed like every other injected fault.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro import faults, obs
from repro.errors import ConfigurationError, SnapshotCorruptError

__all__ = ["SnapshotLibrary", "snapshot_key", "snapshot_factory_for"]

#: Target references whose segments accept ``snapshot=`` kwargs, mapped
#: to a builder ``(kwargs) -> SimulatorSnapshot``. Extend in one place
#: when a new warm-startable target lands.
_GEOMETRY_KWARGS = ("total_bytes", "row_bytes", "spray_mappings")


def _probabilistic_factory(kwargs: Dict[str, Any]):
    from repro.perf.parallel import capture_trial_snapshot

    return capture_trial_snapshot(
        **{k: kwargs[k] for k in _GEOMETRY_KWARGS if k in kwargs}
    )


SNAPSHOT_FACTORIES: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "repro.perf.parallel:probabilistic_trial": _probabilistic_factory,
}


def snapshot_factory_for(target: str) -> Optional[Callable[[Dict[str, Any]], Any]]:
    """The snapshot builder for ``target``, or None if not warm-startable."""
    return SNAPSHOT_FACTORIES.get(target)


def snapshot_key(target: str, kwargs: Dict[str, Any]) -> str:
    """Stable cache key: target plus the geometry kwargs that shape it."""
    parts = [target]
    for name in _GEOMETRY_KWARGS:
        if name in kwargs:
            parts.append(f"{name}={kwargs[name]}")
    return "|".join(parts)


class SnapshotLibrary:
    """LRU-bounded, circuit-broken snapshot cache (see module docstring)."""

    def __init__(self, capacity: int = 4, quarantine_threshold: int = 2):
        if capacity < 1:
            raise ConfigurationError(f"capacity {capacity} must be >= 1")
        if quarantine_threshold < 1:
            raise ConfigurationError(
                f"quarantine_threshold {quarantine_threshold} must be >= 1"
            )
        self.capacity = capacity
        self.quarantine_threshold = quarantine_threshold
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._strikes: Dict[str, int] = {}
        self._quarantined: set = set()

    # -- introspection -----------------------------------------------------
    @property
    def keys(self) -> tuple:
        """Live snapshot keys, LRU first."""
        return tuple(self._entries)

    @property
    def quarantined(self) -> frozenset:
        """Keys the circuit breaker has taken out of service."""
        return frozenset(self._quarantined)

    def strikes(self, key: str) -> int:
        """Breaker strikes recorded against ``key``."""
        return self._strikes.get(key, 0)

    # -- acquire / strike --------------------------------------------------
    def acquire(
        self, key: str, factory: Callable[[], Any]
    ) -> Optional[str]:
        """The shared-memory name for ``key``'s world, or None to cold-boot.

        Offers the attach to the fault plane first; an injected (or
        real) :class:`SnapshotCorruptError` is absorbed as a strike and
        answered with the cold-boot fallback — the caller never sees the
        corruption, only a slower, equally-correct path.
        """
        if key in self._quarantined:
            return None
        try:
            faults.notify("service.snapshot_attach", key=key)
        except SnapshotCorruptError:
            self.strike(key)
            return None
        if key not in self._entries:
            self._entries[key] = factory()
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                evicted.release()
        else:
            self._entries.move_to_end(key)
        return self._entries[key].name

    def strike(self, key: str) -> bool:
        """Record one failure against ``key``; True if it quarantined."""
        if key in self._quarantined:
            return False
        self._strikes[key] = self.strikes(key) + 1
        if self._strikes[key] < self.quarantine_threshold:
            return False
        self._quarantined.add(key)
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.release()
        obs.inc("service.snapshot_quarantined", key=key)
        return True

    def close(self) -> None:
        """Release every live world (server shutdown)."""
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            entry.release()
