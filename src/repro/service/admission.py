"""Admission control: the campaign service's bounded front door.

Every overload outcome here is a *decision*, not an accident: a request
is either admitted (and holds an :class:`AdmissionTicket` until its job
finishes), rejected with a typed :class:`~repro.errors.AdmissionError`
carrying a machine-readable ``reason`` tag, or admitted at the expense
of a lower-priority queued request that gets shed. The server never
queues unboundedly and never answers overload with a hang or a crash.

Rejection reasons (stable contract, asserted by tests):

==================  ====================================================
``draining``        the service is shutting down; finish what's queued
``deadline``        the relative deadline expired before admission
``deadline-missed`` admitted, but the deadline passed before dispatch
``tenant-cap``      the tenant already holds its concurrency cap
``queue-full``      service at capacity and nothing cheaper to shed
``shed``            was admitted, then evicted for a higher-priority
                    arrival while still queued
==================  ====================================================

Time is injected (``time_source``) so deadline behaviour is driven by a
:class:`VirtualClock` in tests instead of wall-clock sleeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.errors import AdmissionError, ConfigurationError
from repro.service.protocol import CampaignRequest

__all__ = ["AdmissionPolicy", "AdmissionTicket", "AdmissionController", "VirtualClock"]


class VirtualClock:
    """A deterministic, manually-advanced time source for tests/demos."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance time by {seconds}")
        self._now += seconds
        return self._now


@dataclass(frozen=True)
class AdmissionPolicy:
    """Capacity knobs for the front door."""

    #: Max requests admitted-and-unfinished at once (queue + running).
    max_active: int = 64
    #: Max admitted-and-unfinished requests per tenant.
    tenant_cap: int = 4

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ConfigurationError(f"max_active {self.max_active} must be >= 1")
        if self.tenant_cap < 1:
            raise ConfigurationError(f"tenant_cap {self.tenant_cap} must be >= 1")


class AdmissionTicket:
    """One admitted request's slot; held until released or shed.

    ``deadline_at`` is absolute (time-source domain); ``None`` means no
    deadline. ``shed_fn`` is attached by the server after the job is
    built — it must abandon the queued job and return True, or return
    False when the job already started and can no longer be shed.
    """

    def __init__(
        self,
        request: CampaignRequest,
        admitted_at: float,
        sequence: int,
    ):
        self.request = request
        self.admitted_at = admitted_at
        self.sequence = sequence
        self.deadline_at: Optional[float] = (
            None
            if request.deadline_s is None
            else admitted_at + request.deadline_s
        )
        self.shed_fn: Optional[Callable[[], bool]] = None
        self.released = False

    def deadline_passed(self, now: float) -> bool:
        """Whether the request's deadline has expired at ``now``."""
        return self.deadline_at is not None and now > self.deadline_at

    def try_shed(self) -> bool:
        """Attempt to evict this ticket's queued job; True on success."""
        if self.shed_fn is None:
            return False
        return self.shed_fn()


class AdmissionController:
    """Bounded-queue admission with per-tenant caps and priority shed."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        time_source: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or AdmissionPolicy()
        self._clock = time_source
        self._active: List[AdmissionTicket] = []
        self._per_tenant: Dict[str, int] = {}
        self._sequence = 0
        self.draining = False

    # -- introspection -----------------------------------------------------
    @property
    def active_count(self) -> int:
        """Admitted-and-unfinished requests right now."""
        return len(self._active)

    def tenant_active(self, tenant: str) -> int:
        """Admitted-and-unfinished requests held by ``tenant``."""
        return self._per_tenant.get(tenant, 0)

    def now(self) -> float:
        """Current time in the injected time source's domain."""
        return self._clock()

    # -- lifecycle ---------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted requests run to completion."""
        self.draining = True

    def admit(self, request: CampaignRequest) -> AdmissionTicket:
        """Admit ``request`` or raise a typed, tagged rejection.

        A full queue is survivable when a strictly lower-priority ticket
        is still sheddable: it is evicted (counted as ``service.shed``,
        its waiter failed with reason ``shed``) and the newcomer takes
        the slot. Rejections are counted as ``service.rejected`` with
        the reason label; the caller never sees a bare exception type
        without a reason tag.
        """
        now = self._clock()
        try:
            if self.draining:
                raise AdmissionError(
                    "service is draining; not admitting new campaigns",
                    reason="draining",
                )
            if request.deadline_s is not None and request.deadline_s <= 0:
                raise AdmissionError(
                    f"deadline_s {request.deadline_s} already expired",
                    reason="deadline",
                )
            if self.tenant_active(request.tenant) >= self.policy.tenant_cap:
                raise AdmissionError(
                    f"tenant {request.tenant!r} holds its concurrency cap "
                    f"({self.policy.tenant_cap})",
                    reason="tenant-cap",
                )
            if len(self._active) >= self.policy.max_active:
                if not self._shed_for(request):
                    raise AdmissionError(
                        f"service at capacity ({self.policy.max_active} active) "
                        "and no lower-priority request to shed",
                        reason="queue-full",
                    )
        except AdmissionError as exc:
            obs.inc(
                "service.rejected", tenant=request.tenant, reason=exc.reason
            )
            raise
        self._sequence += 1
        ticket = AdmissionTicket(request, admitted_at=now, sequence=self._sequence)
        self._active.append(ticket)
        self._per_tenant[request.tenant] = self.tenant_active(request.tenant) + 1
        obs.inc("service.admitted", tenant=request.tenant)
        return ticket

    def release(self, ticket: AdmissionTicket) -> None:
        """Return ``ticket``'s slot (idempotent)."""
        if ticket.released:
            return
        ticket.released = True
        if ticket in self._active:
            self._active.remove(ticket)
        tenant = ticket.request.tenant
        remaining = self.tenant_active(tenant) - 1
        if remaining > 0:
            self._per_tenant[tenant] = remaining
        else:
            self._per_tenant.pop(tenant, None)

    # -- internal ----------------------------------------------------------
    def _shed_for(self, request: CampaignRequest) -> bool:
        """Evict the cheapest sheddable ticket below ``request``'s priority."""
        candidates = [
            ticket
            for ticket in self._active
            if ticket.request.priority < request.priority
        ]
        # Cheapest first: lowest priority, newest admission breaks ties
        # (the most recently queued low-priority work has lost the least).
        candidates.sort(key=lambda t: (t.request.priority, -t.sequence))
        for ticket in candidates:
            if ticket.try_shed():
                obs.inc(
                    "service.shed",
                    tenant=ticket.request.tenant,
                    for_tenant=request.tenant,
                )
                self.release(ticket)
                return True
        return False
