"""Wire protocol for the campaign service: newline-delimited JSON.

One request object per line from the client; zero or more ``progress``
event lines followed by exactly one ``done`` event line back from the
server. The framing is deliberately primitive — ``repro submit`` is a
line-oriented client any test harness (or ``nc``) can reimplement — and
every payload is a plain JSON object so requests can cross a process
boundary, be logged, and be replayed verbatim.

Client-side errors are re-typed: a ``done`` event carrying
``ok: false`` is raised as the same exception class the server raised
(:class:`~repro.errors.AdmissionError` with its ``reason`` tag
preserved, or :class:`~repro.errors.ServiceError` otherwise), so CLI
and tests branch on admission decisions identically whether the service
runs in-process or behind a socket.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, ConfigurationError, ServiceError

__all__ = [
    "CampaignRequest",
    "decode_line",
    "encode_line",
    "error_payload",
    "raise_from_done",
    "submit_over_socket",
    "send_op",
]

#: Fields a submit request may carry; anything else is rejected so typos
#: fail loudly instead of silently running a default campaign.
_REQUEST_FIELDS = frozenset(
    {
        "name",
        "target",
        "num_segments",
        "seed",
        "tenant",
        "priority",
        "deadline_s",
        "max_retries",
        "warm_start",
        "kwargs",
        "config",
    }
)


@dataclass(frozen=True)
class CampaignRequest:
    """One tenant's campaign submission (attack x defense x geometry).

    ``target`` is a ``"module:qualname"`` reference to a segment
    callable ``(index, seed, **kwargs) -> dict`` — the same contract as
    :func:`repro.perf.parallel.run_campaign_parallel`, so a service
    report is byte-comparable to a serial reference run of the same
    (name, target, num_segments, seed, kwargs, config) tuple.
    ``tenant``/``priority``/``deadline_s`` exist only for admission and
    scheduling; none of them leak into the report.
    """

    name: str
    target: str
    num_segments: int
    seed: int
    tenant: str = "default"
    priority: int = 0
    deadline_s: Optional[float] = None
    max_retries: int = 3
    warm_start: bool = False
    kwargs: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign request needs a non-empty name")
        if ":" not in self.target:
            raise ConfigurationError(
                f"target {self.target!r} must be a 'module:qualname' reference"
            )
        if self.num_segments < 1:
            raise ConfigurationError(
                f"num_segments {self.num_segments} must be >= 1"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries {self.max_retries} must be >= 0"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            # A non-positive relative deadline can never be met; reject
            # at parse time with the same typed error admission uses.
            raise AdmissionError(
                f"deadline_s {self.deadline_s} already expired at submission",
                reason="deadline",
            )

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready dict (inverse of :meth:`from_wire`)."""
        return {
            "name": self.name,
            "target": self.target,
            "num_segments": self.num_segments,
            "seed": self.seed,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "max_retries": self.max_retries,
            "warm_start": self.warm_start,
            "kwargs": dict(self.kwargs),
            "config": dict(self.config),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "CampaignRequest":
        """Validate and build a request from a decoded JSON object."""
        if not isinstance(data, dict):
            raise ServiceError(f"request must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - _REQUEST_FIELDS
        if unknown:
            raise ServiceError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        missing = {"name", "target", "num_segments", "seed"} - set(data)
        if missing:
            raise ServiceError(
                f"request missing required field(s): {', '.join(sorted(missing))}"
            )
        kwargs = data.get("kwargs", {})
        config = data.get("config", {})
        if not isinstance(kwargs, dict) or not isinstance(config, dict):
            raise ServiceError("request kwargs/config must be JSON objects")
        return cls(
            name=str(data["name"]),
            target=str(data["target"]),
            num_segments=int(data["num_segments"]),
            seed=int(data["seed"]),
            tenant=str(data.get("tenant", "default")),
            priority=int(data.get("priority", 0)),
            deadline_s=(
                None if data.get("deadline_s") is None else float(data["deadline_s"])
            ),
            max_retries=int(data.get("max_retries", 3)),
            warm_start=bool(data.get("warm_start", False)),
            kwargs=dict(kwargs),
            config=dict(config),
        )


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Decode one protocol line; malformed input is a typed error."""
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed protocol line: {exc}") from None
    if not isinstance(data, dict):
        raise ServiceError("protocol line must decode to a JSON object")
    return data


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """The ``done`` event for a failed request (typed, never a traceback)."""
    payload: Dict[str, Any] = {
        "event": "done",
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    reason = getattr(exc, "reason", "")
    if reason:
        payload["reason"] = reason
    return payload


def raise_from_done(done: Dict[str, Any]) -> Dict[str, Any]:
    """Return the report from a ``done`` event, or re-raise its error."""
    if done.get("ok"):
        report = done.get("report")
        if not isinstance(report, dict):
            raise ServiceError("done event carried no report")
        return report
    error = str(done.get("error", "ServiceError"))
    message = str(done.get("message", "request failed"))
    if error == "AdmissionError":
        raise AdmissionError(message, reason=str(done.get("reason", "")))
    raise ServiceError(f"{error}: {message}")


def _exchange(
    host: str,
    port: int,
    payload: Dict[str, Any],
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    timeout_s: float = 60.0,
) -> Dict[str, Any]:
    """Send one request line, stream events until ``done``; return it."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(encode_line(payload))
        buffer = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                raise ServiceError(
                    "connection closed before a done event arrived"
                )
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                event = decode_line(line)
                if event.get("event") == "done":
                    return event
                if on_event is not None:
                    on_event(event)


def submit_over_socket(
    host: str,
    port: int,
    request: CampaignRequest,
    on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    timeout_s: float = 60.0,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Synchronous client: submit and block until the report (or error).

    Returns ``(report_dict, progress_events)``; admission rejections and
    service failures re-raise as their original typed exceptions.
    """
    progress: List[Dict[str, Any]] = []

    def collect(event: Dict[str, Any]) -> None:
        progress.append(event)
        if on_progress is not None:
            on_progress(event)

    done = _exchange(
        host,
        port,
        {"op": "submit", "request": request.to_wire()},
        on_event=collect,
        timeout_s=timeout_s,
    )
    return raise_from_done(done), progress


def send_op(
    host: str, port: int, op: str, timeout_s: float = 60.0, **fields: Any
) -> Dict[str, Any]:
    """Fire a non-submit op (``ping``, ``stats``, ``drain``); return done."""
    return _exchange(host, port, {"op": op, **fields}, timeout_s=timeout_s)
