"""Supervised worker pool: persistent workers, crash/hang recovery.

The pool owns one shared :class:`asyncio.Queue` of ``(job, payload)``
pairs; ``size`` persistent worker coroutines drain it, so segments from
concurrent campaigns interleave on the same workers instead of each
request spinning up private machinery. Every worker runs under a
supervisor loop: a :class:`~repro.errors.WorkerCrashError` (injected
via the ``worker-crash``/``worker-hang`` fault kinds, or a real process
death in ``process`` mode) kills the worker coroutine, the supervisor
restarts it with exponential backoff — *accounted, never slept*, the
repo-wide backoff convention — and the lost segment is re-enqueued
exactly once per death, bounded by ``max_requeues``.

Why recovery preserves byte-identity: injected crashes fire at dispatch
time, before the segment executes, so a lost segment contributed no obs
delta and no partial record; the re-run starts from attempt 0 with the
same ``derive_seed(campaign_seed, index, attempt)`` stream and merges
into the identical outcome an uninterrupted run records.

Execution modes:

- ``inline`` (default) — segments run synchronously in the event loop
  via :func:`repro.perf.parallel.run_segment_task`. Fully deterministic;
  crashes and hangs exist only as injected faults. This is what tests
  and the CI smoke job drive.
- ``process`` — segments run in a :class:`ProcessPoolExecutor`;
  :class:`BrokenProcessPool` is classified as a crash (pool rebuilt),
  and a per-segment timeout missing its deadline is classified as a
  hang (:class:`~repro.errors.WorkerHangError`).

``asyncio.create_task`` is banned in this package by lint rule
``RL011`` except through :func:`spawn_supervised`, which attaches a
done-callback so a task dying with an unconsumed exception is recorded
instead of silently discarded.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Coroutine, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.perf.parallel import crashed_segment_outcome, run_segment_task
from repro.service.admission import AdmissionTicket
from repro.service.protocol import CampaignRequest
from repro.service.snapshot_library import SnapshotLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.perf.memo.runtime import SegmentMemo

__all__ = ["SegmentJob", "WorkerPool", "spawn_supervised"]

#: Exceptions that escaped supervised tasks (inspected by tests/shutdown).
_unconsumed_failures: List[BaseException] = []


def spawn_supervised(
    coro: Coroutine[Any, Any, Any], *, name: str
) -> "asyncio.Task[Any]":
    """The one sanctioned way to start a task in ``repro.service``.

    Wraps :func:`asyncio.create_task` with a done-callback that records
    any exception the task died with, so nothing in the service can
    fail silently into a garbage-collected task object (lint ``RL011``
    forbids the bare call everywhere else in this package).
    """
    task = asyncio.create_task(coro, name=name)  # repro-lint: ignore[RL011]

    def _record(finished: "asyncio.Task[Any]") -> None:
        if finished.cancelled():
            return
        exc = finished.exception()
        if exc is not None:
            _unconsumed_failures.append(exc)

    task.add_done_callback(_record)
    return task


def supervised_failures() -> Tuple[BaseException, ...]:
    """Exceptions recorded by :func:`spawn_supervised` done-callbacks."""
    return tuple(_unconsumed_failures)


class SegmentJob:
    """One admitted campaign broken into queued segment payloads."""

    def __init__(
        self,
        request: CampaignRequest,
        payloads: List[Dict[str, Any]],
        ticket: Optional[AdmissionTicket] = None,
        snapshot_key: Optional[str] = None,
        progress_cb: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.request = request
        self.payloads = payloads
        self.ticket = ticket
        self.snapshot_key = snapshot_key
        self.progress_cb = progress_cb
        self.outcomes: Dict[int, Dict[str, Any]] = {}
        self.requeues: Dict[int, int] = {}
        self.started = 0
        self.error: Optional[Exception] = None
        self.done = asyncio.Event()

    @property
    def finished(self) -> bool:
        """True once the job has a final answer (report or typed error)."""
        return self.done.is_set()

    def record(self, outcome: Dict[str, Any]) -> None:
        """Accept one segment outcome; completes the job on the last one."""
        if self.finished:
            return
        self.outcomes[outcome["index"]] = outcome
        if self.progress_cb is not None:
            self.progress_cb(
                {
                    "event": "progress",
                    "name": self.request.name,
                    "completed": len(self.outcomes),
                    "total": len(self.payloads),
                }
            )
        if len(self.outcomes) >= len(self.payloads):
            self.done.set()

    def fail(self, error: Exception) -> None:
        """Terminate the job with a typed error; queued payloads skip."""
        if self.finished:
            return
        self.error = error
        self.done.set()

    def try_shed(self) -> bool:
        """Evict the job if no segment has started; the shed contract."""
        if self.started > 0 or self.outcomes:
            return False
        self.fail(
            AdmissionError(
                f"campaign {self.request.name!r} shed for a higher-priority "
                "arrival while queued",
                reason="shed",
            )
        )
        return True


class WorkerPool:
    """Supervised persistent workers over a shared segment queue."""

    def __init__(
        self,
        size: int = 2,
        *,
        mode: str = "inline",
        max_requeues: int = 2,
        max_restarts_per_worker: int = 8,
        backoff_base_s: float = 0.5,
        segment_timeout_s: Optional[float] = None,
        time_source: Callable[[], float] = time.monotonic,
        library: Optional[SnapshotLibrary] = None,
        memo: Optional["SegmentMemo"] = None,
    ):
        if size < 1:
            raise ConfigurationError(f"pool size {size} must be >= 1")
        if mode not in ("inline", "process"):
            raise ConfigurationError(f"unknown pool mode {mode!r}")
        if max_requeues < 0:
            raise ConfigurationError(f"max_requeues {max_requeues} must be >= 0")
        self.size = size
        self.mode = mode
        self.max_requeues = max_requeues
        self.max_restarts_per_worker = max_restarts_per_worker
        self.backoff_base_s = backoff_base_s
        self.segment_timeout_s = segment_timeout_s
        self._clock = time_source
        self.library = library
        #: Shared cross-tenant segment-result cache. Consulted only
        #: after a job's shed window has closed (``job.started`` is
        #: bumped first) and after the fault plane saw the dispatch, so
        #: shed jobs never touch the cache and the injected crash
        #: schedule is byte-identical with and without memoization.
        self.memo = memo
        self._queue: "asyncio.Queue[Tuple[SegmentJob, Dict[str, Any]]]" = (
            asyncio.Queue()
        )
        self._supervisors: List["asyncio.Task[Any]"] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        #: Worker restarts performed by the supervisors (all causes).
        self.restarts = 0
        #: Exponential backoff accounted (never slept) across restarts.
        self.backoff_accounted_s = 0.0
        #: Last dispatch heartbeat per worker id (time-source domain).
        self.heartbeats: Dict[int, float] = {}

    # -- lifecycle ---------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether supervisor tasks are running."""
        return bool(self._supervisors)

    @property
    def queued(self) -> int:
        """Segments waiting for a worker right now."""
        return self._queue.qsize()

    def start(self) -> None:
        """Launch the supervised workers (idempotent)."""
        if self._supervisors or self._closed:
            return
        for worker_id in range(self.size):
            self._supervisors.append(
                spawn_supervised(
                    self._supervise(worker_id), name=f"service-worker-{worker_id}"
                )
            )

    def submit_job(self, job: SegmentJob) -> None:
        """Enqueue every segment of ``job`` onto the shared queue."""
        if self._closed:
            raise ServiceError("worker pool is closed")
        for payload in job.payloads:
            self._queue.put_nowait((job, payload))

    async def drain(self) -> None:
        """Wait for the queue to empty, then stop workers cleanly."""
        await self._queue.join()
        await self.close()

    async def close(self) -> None:
        """Cancel workers and release the executor (idempotent)."""
        self._closed = True
        for task in self._supervisors:
            task.cancel()
        for task in self._supervisors:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._supervisors = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- supervision -------------------------------------------------------
    async def _supervise(self, worker_id: int) -> None:
        """Restart ``_worker_loop`` with accounted exponential backoff."""
        deaths = 0
        while not self._closed:
            try:
                await self._worker_loop(worker_id)
                return
            except WorkerCrashError as exc:
                deaths += 1
                self.restarts += 1
                obs.inc(
                    "service.worker_restarts",
                    worker=str(worker_id),
                    cause=type(exc).__name__,
                )
                if deaths > self.max_restarts_per_worker:
                    # A worker dying this often is a systemic fault; stop
                    # burning restarts and leave the remaining workers to
                    # drain the queue.
                    return
                self.backoff_accounted_s += self.backoff_base_s * 2 ** (deaths - 1)
                await asyncio.sleep(0)

    async def _worker_loop(self, worker_id: int) -> None:
        """One persistent worker: dequeue, dispatch, record — forever."""
        while True:
            job, payload = await self._queue.get()
            try:
                self.heartbeats[worker_id] = self._clock()
                await self._dispatch(worker_id, job, payload)
            finally:
                self._queue.task_done()

    async def _dispatch(
        self, worker_id: int, job: SegmentJob, payload: Dict[str, Any]
    ) -> None:
        """Run one segment; classify crashes/hangs; never leak raw errors."""
        if job.finished:
            return
        ticket = job.ticket
        if ticket is not None and ticket.deadline_passed(self._clock()):
            obs.inc("service.deadline_missed", tenant=job.request.tenant)
            job.fail(
                AdmissionError(
                    f"campaign {job.request.name!r} missed its deadline "
                    "before dispatch",
                    reason="deadline-missed",
                )
            )
            return
        if (
            self.library is not None
            and job.snapshot_key is not None
            and job.snapshot_key in self.library.quarantined
        ):
            # Circuit breaker opened mid-job: fall back to cold boot for
            # every remaining segment (warm==cold keeps the report equal).
            payload["kwargs"].pop("snapshot", None)
        job.started += 1
        try:
            faults.notify(
                "service.segment",
                index=payload["index"],
                campaign=job.request.name,
                worker=worker_id,
            )
            outcome = None
            memo_key = None
            if self.memo is not None:
                memo_key = self.memo.payload_key(payload)
                if memo_key is None:
                    self.memo.note_bypass(job.request.name)
                else:
                    outcome = self.memo.lookup(
                        memo_key,
                        campaign=job.request.name,
                        recompute=partial(run_segment_task, payload),
                    )
            if outcome is None:
                outcome = await self._execute(payload)
                if memo_key is not None and self.memo is not None:
                    outcome = self.memo.store(
                        memo_key, outcome, campaign=job.request.name
                    )
        except WorkerCrashError as exc:  # WorkerHangError included
            self._requeue_lost(job, payload, exc)
            raise
        except Exception as exc:  # noqa: BLE001 — server must survive targets
            outcome = {
                "index": payload["index"],
                "ok": False,
                "record": {
                    "attempts": 1,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                },
                "obs_state": obs.Registry().export_state(),
            }
        job.record(outcome)

    async def _execute(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Run the segment in the configured mode."""
        if self.mode == "inline":
            return run_segment_task(payload)
        loop = asyncio.get_running_loop()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.size)
        future = loop.run_in_executor(self._executor, run_segment_task, payload)
        try:
            if self.segment_timeout_s is None:
                return await future
            return await asyncio.wait_for(future, timeout=self.segment_timeout_s)
        except asyncio.TimeoutError:
            # The worker process stopped making progress: classify as a
            # hang and rebuild the executor so the stuck process dies.
            self._replace_executor()
            raise WorkerHangError(
                f"segment {payload['index']} exceeded its "
                f"{self.segment_timeout_s}s timeout"
            ) from None
        except BrokenProcessPool:
            self._replace_executor()
            raise WorkerCrashError(
                f"worker process died running segment {payload['index']}"
            ) from None

    def _replace_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=self.size)

    def _requeue_lost(
        self, job: SegmentJob, payload: Dict[str, Any], exc: WorkerCrashError
    ) -> None:
        """Re-enqueue a segment lost to a worker death, exactly once.

        Each death buys exactly one re-enqueue of the lost segment;
        ``max_requeues`` deaths on the same index record a terminal
        failed segment instead of retrying forever. A death while a
        snapshot-backed job was in flight is a circuit-breaker strike
        against that snapshot.
        """
        if self.library is not None and job.snapshot_key is not None:
            self.library.strike(job.snapshot_key)
        if job.finished:
            return
        index = payload["index"]
        job.requeues[index] = job.requeues.get(index, 0) + 1
        if job.requeues[index] > self.max_requeues:
            job.record(
                crashed_segment_outcome(
                    index,
                    f"worker died running segment {index} "
                    f"({self.max_requeues} re-enqueues exhausted): {exc}",
                )
            )
        else:
            self._queue.put_nowait((job, payload))
