"""Drammer-style deterministic RowHammer attack via memory templating [37].

The deterministic recipe:

1. **Template** — the attacker hammers rows holding its own pages and
   records exactly which bits flip and in which direction (a *template*).
2. **Select** — it picks a template whose flip, applied to a PTE slot,
   would redirect the PTE's frame pointer to a page the attacker controls
   or to another page table (self-reference).
3. **Massage** — it releases the templated page and coaxes the allocator
   into storing a victim page table there (predictable buddy reuse).
4. **Replay** — it hammers the same row again; the now-resident PTE flips
   exactly as templated.

Under CTA the chain is cut at step 3: page tables can only be placed in
``ZONE_PTP``, which the attacker can neither map nor template (Property 1
of the low water mark), so no template can ever coincide with a page
table. The attack reports ``BLOCKED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro import obs, sanitize
from repro.attacks.base import AttackOutcome, AttackResult
from repro.attacks.escalation import attempt_escalation, find_self_references
from repro.attacks.spray import SPRAY_BASE, PT_COVERAGE
from repro.attacks.timing import AttackTimingModel
from repro.dram.rowhammer import RowHammerModel
from repro.errors import OutOfMemoryError
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PageTableEntry
from repro.kernel.process import Process
from repro.payload import (
    PayloadContext,
    PayloadProgram,
    compile_program,
    hammer_sweep,
    iter_steps,
    single_burst,
)
from repro.units import PAGE_SHIFT, PAGE_SIZE, PTE_SIZE


@dataclass(frozen=True)
class FlipTemplate:
    """One observed repeatable flip inside an attacker-owned page."""

    row: int
    #: The aggressor row whose hammering produced this flip; replaying the
    #: template means hammering this row again.
    aggressor_row: int
    pfn: int
    byte_in_page: int
    bit: int
    from_value: int
    to_value: int

    @property
    def pte_slot(self) -> int:
        """Which 8-byte PTE slot of the page the flip falls in."""
        return self.byte_in_page // PTE_SIZE

    @property
    def bit_in_pte(self) -> int:
        """Bit position within the 64-bit PTE word."""
        return (self.byte_in_page % PTE_SIZE) * 8 + self.bit


@dataclass
class TemplatingAttack:
    """Deterministic attack instance."""

    kernel: Kernel
    hammer: RowHammerModel
    timing: AttackTimingModel = AttackTimingModel()
    #: Hammer programs this instance compiled and executed, in order.
    executed_payloads: List[PayloadProgram] = field(default_factory=list)

    def run(
        self,
        attacker: Process,
        template_buffer_bytes: int = 4 * 1024 * 1024,
        max_massage_attempts: int = 64,
    ) -> AttackResult:
        """Template, massage, replay. Returns the outcome and accounting."""
        obs.inc("attack.attempts", kind="templating")
        result = AttackResult(outcome=AttackOutcome.FAILED)
        templates = self._template_phase(attacker, template_buffer_bytes, result)
        if not templates:
            result.outcome = AttackOutcome.BLOCKED
            result.detail = (
                "templating produced no usable flips in attacker-reachable rows"
            )
            return self._finish(result)

        usable = [t for t in templates if self._useful_for_pte(t)]
        if not usable:
            result.detail = "no template hits a PTE frame field usefully"
            return self._finish(result)

        # One massage per templated frame: a frame's landing-pad VAs stay
        # mapped after a failed attempt, so a second template in the same
        # page would collide with them — and re-massaging a frame whose
        # VMA was already released cannot succeed anyway.
        massaged_pfns: Set[int] = set()
        for template in usable[:max_massage_attempts]:
            if template.pfn in massaged_pfns:
                continue
            massaged_pfns.add(template.pfn)
            victim_va = self._massage_phase(attacker, template)
            if victim_va is None:
                continue
            replay_program = single_burst(
                "templating-replay", template.aggressor_row
            )
            self.executed_payloads.append(replay_program)
            replay_context = PayloadContext(hammer=self.hammer)
            for burst in iter_steps(
                compile_program(replay_program), replay_context
            ):
                replay = burst.perform()
                result.hammer_rounds += 1
                result.flips_induced += replay.flip_count
                result.modeled_time_s += self.timing.hammer_row_s
            self.kernel.tlb.flush()
            references = find_self_references(self.kernel, attacker, [victim_va])
            if references:
                report = attempt_escalation(self.kernel, attacker, references[0])
                if report.achieved:
                    result.outcome = AttackOutcome.SUCCESS
                    result.corrupted_vas = [victim_va]
                    result.escalated_pid = attacker.pid
                    result.detail = report.detail
                    return self._finish(result)
        if self.kernel.cta_enabled:
            result.outcome = AttackOutcome.BLOCKED
            result.detail = (
                "CTA pins page tables to ZONE_PTP: no page table can land on "
                "an attacker-templated (below-low-water-mark) frame"
            )
        else:
            result.detail = "massage never landed a page table on a templated frame"
        return self._finish(result)

    def _finish(self, result: AttackResult) -> AttackResult:
        """Record the terminal outcome before handing the result back."""
        obs.inc("attack.outcomes", kind="templating", outcome=result.outcome.value)
        sanitize.notify(
            "attack.campaign",
            kernel=self.kernel,
            hammer=self.hammer,
            kind="templating",
            outcome=result.outcome.value,
        )
        return result

    # -- phase 1: templating -------------------------------------------------
    def _template_phase(
        self, attacker: Process, buffer_bytes: int, result: AttackResult
    ) -> List[FlipTemplate]:
        """Hammer attacker-owned rows, recording repeatable flips."""
        kernel = self.kernel
        base = SPRAY_BASE + 8192 * PT_COVERAGE
        # One VMA per page so a single templated frame can later be released
        # without giving up the rest of the buffer (Drammer's landing pads).
        owned_pfns: Set[int] = set()
        if kernel.module.fault_plane_armed:
            # Reference path: per-page mmap/write/touch so per-access
            # fault schedules replay exactly.
            try:
                for page in range(buffer_bytes // PAGE_SIZE):
                    va = base + page * PAGE_SIZE
                    kernel.mmap(attacker, PAGE_SIZE, address=va)
                    kernel.write_virtual(attacker, va, b"\xff" * 8)
                    pa = kernel.touch(attacker, va)  # repro-lint: ignore[RL008] — armed-plane reference path
                    owned_pfns.add(pa >> PAGE_SHIFT)
            except OutOfMemoryError:
                pass
        else:
            owned_pfns = self._template_buffer_batched(attacker, base, buffer_bytes)

        geometry = kernel.module.geometry
        owned_rows = {geometry.row_of_address(pfn << PAGE_SHIFT) for pfn in owned_pfns}
        return self._hammer_owned_rows(owned_rows, owned_pfns, result)

    def _template_buffer_batched(
        self, attacker: Process, base: int, buffer_bytes: int
    ) -> Set[int]:
        """Map and fault the landing-pad buffer through the batched pipeline.

        Maps every single-page VMA first, demand-faults them all via
        :meth:`Kernel.touch_many` (identical buddy allocation order to the
        per-page loop), then stamps the marker word straight into each
        owned frame. Stops at the OOM prefix like the scalar loop.
        """
        kernel = self.kernel
        vas = [
            base + page * PAGE_SIZE for page in range(buffer_bytes // PAGE_SIZE)
        ]
        for va in vas:
            kernel.mmap(attacker, PAGE_SIZE, address=va)
        try:
            pas = kernel.touch_many(
                attacker, np.asarray(vas, dtype=np.int64), write=True
            )
        except OutOfMemoryError as exc:
            pas = list(getattr(exc, "touched", []))
        for pa in pas:
            kernel.module.write(pa, b"\xff" * 8)
        return {pa >> PAGE_SHIFT for pa in pas}

    def _hammer_owned_rows(
        self, owned_rows: Set[int], owned_pfns: Set[int], result: AttackResult
    ) -> List[FlipTemplate]:
        """Hammer each owned row, collecting usable templates."""
        kernel = self.kernel
        geometry = kernel.module.geometry
        templates: List[FlipTemplate] = []
        if not owned_rows:
            return templates
        # The attacker templates rows *it owns*: one burst per owned row,
        # collecting which bits flipped and in which direction.
        program = hammer_sweep("templating-template", sorted(owned_rows))
        self.executed_payloads.append(program)
        context = PayloadContext(hammer=self.hammer)
        for burst in iter_steps(compile_program(program), context):
            outcome = burst.perform()
            row = burst.row
            result.hammer_rounds += 1
            result.modeled_time_s += self.timing.hammer_row_s
            for flip in outcome.flips:
                pfn = flip.address >> PAGE_SHIFT
                if pfn not in owned_pfns:
                    continue  # flip landed outside attacker pages: unusable
                templates.append(
                    FlipTemplate(
                        row=geometry.row_of_address(flip.address),
                        aggressor_row=row,
                        pfn=pfn,
                        byte_in_page=flip.address & (PAGE_SIZE - 1),
                        bit=flip.bit,
                        from_value=flip.old,
                        to_value=flip.new,
                    )
                )
                result.flips_induced += 1
        return templates

    # -- phase 2: template selection -----------------------------------------
    def _useful_for_pte(self, template: FlipTemplate) -> bool:
        """Whether the template supports the deterministic self-point trick.

        Drammer's recipe: land a page table at the templated frame ``t``
        and the data frame at ``D = t | (1 << k)``; a ``1 -> 0`` flip of
        pfn bit ``k`` then rewrites the PTE's pointer from ``D`` to ``t``
        itself — the PTE points at its own page table. Requirements:

        - the flip is ``1 -> 0`` (the *dominant* true-cell direction, which
          is why this works so reliably on stock kernels), and
        - it falls in the PFN field (PTE bits 12..51), and
        - bit ``k`` of the templated frame number is 0, so ``D != t``.
        """
        bit = template.bit_in_pte
        if not 12 <= bit <= 51:
            return False
        if not (template.from_value == 1 and template.to_value == 0):
            return False
        k = bit - 12
        return (template.pfn >> k) & 1 == 0

    # -- phase 3: memory massaging ----------------------------------------------
    def _massage_phase(self, attacker: Process, template: FlipTemplate) -> Optional[int]:
        """Steer a page table onto the templated frame (Phys Feng Shui).

        Frees exactly two attacker frames — the templated frame ``t`` for
        the incoming page table, and ``D = t | (1 << k)`` for the data
        page — then faults a fresh 2 MiB region. The kernel's fault path
        allocates the page table first (lowest free frame: ``t``), the
        data page second (``D``). Replaying the template's ``1 -> 0`` flip
        of pfn bit ``k`` then turns the PTE's pointer from ``D`` into
        ``t``: the PTE points at its own page table.

        On a CTA kernel ``pte_alloc_one`` is pinned to ``ZONE_PTP`` and
        can never receive the templated (user-zone) frame, so this returns
        None for every template.
        """
        kernel = self.kernel
        k = template.bit_in_pte - 12
        data_pfn = template.pfn | (1 << k)
        target_vma = self._vma_mapping_pfn(attacker, template.pfn)
        donor_vma = self._vma_mapping_pfn(attacker, data_pfn)
        if target_vma is None or donor_vma is None or target_vma is donor_vma:
            return None

        # Pre-warm the fresh region's upper-level tables *before* releasing
        # the two frames, so the critical fault allocates exactly one page
        # table and one data page. Also drains stray low free frames.
        fresh_base = SPRAY_BASE + (16384 + 2 * template.pfn) * PT_COVERAGE
        warm_base = fresh_base + PT_COVERAGE
        try:
            for filler in range(4):
                kernel.mmap_touch_many(
                    attacker, PAGE_SIZE,
                    address=warm_base + filler * PAGE_SIZE, write=True,
                )
        except OutOfMemoryError:
            return None

        kernel.munmap(attacker, target_vma)
        kernel.munmap(attacker, donor_vma)
        # Choose the page of the fresh region whose PTE slot coincides with
        # the templated bit's slot, so the replayed flip lands in a live PTE.
        fresh_va = fresh_base + template.pte_slot * PAGE_SIZE
        try:
            fresh, _ = kernel.mmap_touch_many(
                attacker, PAGE_SIZE, address=fresh_va, write=True
            )
        except OutOfMemoryError:
            return None
        leaf = kernel.leaf_pte_address(attacker, fresh.start)
        if leaf is None:
            return None
        if (leaf >> PAGE_SHIFT) != template.pfn:
            return None  # the allocator did not reuse the templated frame
        raw = kernel.module.read_u64(leaf)
        if (raw & 1) == 0 or PageTableEntry.decode(raw).pfn != data_pfn:
            return None  # the data page missed its intended frame
        return fresh.start

    def _vma_mapping_pfn(self, attacker: Process, pfn: int) -> Optional["object"]:
        """The attacker VMA whose (single) mapped page occupies ``pfn``."""
        kernel = self.kernel
        for vma in attacker.vmas:
            for page in range(vma.num_pages):
                va = vma.start + page * PAGE_SIZE
                leaf = kernel.leaf_pte_address(attacker, va)
                if leaf is None:
                    continue
                raw = kernel.module.read_u64(leaf)
                if (raw & 1) and PageTableEntry.decode(raw).pfn == pfn:
                    return vma
        return None
