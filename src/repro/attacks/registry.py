"""Catalogue of published RowHammer attacks (paper Table 1).

Each record cites the technique, the victim data structure, the attack
class, and the platform — plus which of this package's implementations
models the same structure, so the Table 1 benchmark can both print the
catalogue and point at runnable code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class AttackRecord:
    """One row of Table 1."""

    reference: str
    victim_data: str
    attack_class: str
    platform: str
    #: Dotted path of the repro implementation modelling this structure
    #: (None when the attack is out of the paper's PTE scope).
    modeled_by: Optional[str] = None


#: Every runnable attack implementation in this package, by dotted path.
#: The ``repro lint`` RL004 rule checks that each ``*Attack`` class defined
#: under ``repro.attacks`` appears here (or in a ``modeled_by`` path below).
ATTACK_IMPLEMENTATIONS: Tuple[str, ...] = (
    "repro.attacks.algorithm1.CtaBruteForceAttack",
    "repro.attacks.probabilistic.ProbabilisticPteAttack",
    "repro.attacks.templating.TemplatingAttack",
)

KNOWN_ATTACKS: Tuple[AttackRecord, ...] = (
    AttackRecord(
        reference="Seaborn & Dullien [32]",
        victim_data="PTEs",
        attack_class="Privilege Escalation",
        platform="x86",
        modeled_by="repro.attacks.probabilistic.ProbabilisticPteAttack",
    ),
    AttackRecord(
        reference="Seaborn & Dullien [32]",
        victim_data="Opcodes",
        attack_class="Sandbox Escapes",
        platform="x86",
        modeled_by=None,
    ),
    AttackRecord(
        reference="Cheng et al. [10]",
        victim_data="PTEs",
        attack_class="Privilege Escalation",
        platform="x86",
        modeled_by="repro.attacks.templating.TemplatingAttack",
    ),
    AttackRecord(
        reference="Xiao et al. [38]",
        victim_data="PTEs",
        attack_class="Privilege Escalation",
        platform="VM",
        modeled_by="repro.attacks.probabilistic.ProbabilisticPteAttack",
    ),
    AttackRecord(
        reference="Gruss et al. (Rowhammer.js) [13]",
        victim_data="PTEs",
        attack_class="Privilege Escalation",
        platform="x86",
        modeled_by="repro.attacks.probabilistic.ProbabilisticPteAttack",
    ),
    AttackRecord(
        reference="Razavi et al. (Flip Feng Shui) [31]",
        victim_data="RSA Keys",
        attack_class="Compromised Authentication",
        platform="VM",
        modeled_by=None,
    ),
    AttackRecord(
        reference="van der Veen et al. (Drammer) [37]",
        victim_data="PTEs",
        attack_class="Privilege Escalation",
        platform="ARM",
        modeled_by="repro.attacks.templating.TemplatingAttack",
    ),
    AttackRecord(
        reference="Gruss et al. [12]",
        victim_data="Opcodes",
        attack_class="Denial-of-Service and Privilege Escalation",
        platform="x86",
        modeled_by=None,
    ),
    AttackRecord(
        reference="Bhattacharya & Mukhopadhyay [5]",
        victim_data="RSA Keys",
        attack_class="Fault Analysis",
        platform="x86",
        modeled_by=None,
    ),
    AttackRecord(
        reference="Jang et al. (SGX-Bomb) [17]",
        victim_data="Intel SGX",
        attack_class="Denial-of-Service",
        platform="x86",
        modeled_by=None,
    ),
)


def pte_attacks() -> Tuple[AttackRecord, ...]:
    """The subset targeting PTEs — the class CTA defends against."""
    return tuple(record for record in KNOWN_ATTACKS if record.victim_data == "PTEs")


def modeled_attacks() -> Tuple[AttackRecord, ...]:
    """Records with a runnable implementation in this package."""
    return tuple(record for record in KNOWN_ATTACKS if record.modeled_by)
