"""The paper's Algorithm 1: brute-force RowHammer attack against CTA.

Tailored to a system already running CTA (Section 5)::

    for each physical page below the low water mark:
        fill ZONE_PTP with PTEs pointing to that page          (1)
        for each row r in ZONE_PTP:
            hammer r                                            (2)
            check PTEs in r's victim rows for self-reference    (3)

Step (2) is possible even though the attacker cannot map ZONE_PTP: by
repeatedly accessing a virtual address whose translation's PTE lives in
row ``r`` (flushing the TLB each time), the MMU's walk activates row
``r`` — the PTE rows hammer themselves.

The attack succeeds only if a flip makes some PTE's PTP-indicator bits all
'1'. In true-cells nearly every flip is ``1 -> 0``, so the pointer moves
*down*, away from ZONE_PTP — the No Self-Reference Theorem in action. The
run therefore also records the monotonicity evidence used by the Figure 5
benchmark: every corrupted pointer value vs its original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import obs, sanitize
from repro.attacks.base import AttackOutcome, AttackResult
from repro.attacks.escalation import attempt_escalation, find_self_references
from repro.attacks.spray import spray_page_tables
from repro.attacks.timing import AttackTimingModel
from repro.dram.rowhammer import RowHammerModel
from repro.errors import AttackError
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PageTableEntry
from repro.kernel.process import Process
from repro.payload import (
    PayloadContext,
    PayloadProgram,
    compile_program,
    hammer_sweep,
    iter_steps,
)
from repro.units import PAGE_SHIFT, PTE_SIZE


@dataclass
class PointerObservation:
    """A PTE frame pointer before and after hammering (Figure 5 data)."""

    pte_physical_address: int
    original_pfn: int
    corrupted_pfn: int

    @property
    def monotonic(self) -> bool:
        """True when the corruption did not increase the pointer."""
        return self.corrupted_pfn <= self.original_pfn


@dataclass
class CtaBruteForceAttack:
    """Algorithm 1 runner.

    ``kernel`` must have CTA enabled (the algorithm is defined in terms of
    ZONE_PTP). The full sweep over every page below the mark is priced by
    the timing model; the live simulation runs ``max_target_pages``
    iterations of the outer loop.
    """

    kernel: Kernel
    hammer: RowHammerModel
    timing: AttackTimingModel = AttackTimingModel()
    observations: List[PointerObservation] = field(default_factory=list)
    #: Hammer programs this instance compiled and executed, in order.
    executed_payloads: List[PayloadProgram] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.kernel.cta_enabled:
            raise AttackError("Algorithm 1 targets a CTA kernel; none configured")

    def run(
        self,
        attacker: Process,
        max_target_pages: int = 4,
        spray_mappings: int = 48,
    ) -> AttackResult:
        """Run the (truncated) brute force; returns outcome and accounting."""
        obs.inc("attack.attempts", kind="algorithm1")
        kernel = self.kernel
        result = AttackResult(outcome=AttackOutcome.BUDGET_EXHAUSTED)
        ptp_rows = self._zone_ptp_rows()
        if not ptp_rows:
            result.outcome = AttackOutcome.BLOCKED
            result.detail = "ZONE_PTP is empty"
            return self._finish(result)

        # The ZONE_PTP sweep is one compiled payload, re-executed per
        # target page; the TLB flush per burst is attack bookkeeping
        # between its pending steps.
        program = hammer_sweep("algorithm1-ptp-sweep", ptp_rows)
        self.executed_payloads.append(program)
        compiled = compile_program(program)
        context = PayloadContext(hammer=self.hammer)

        for target_page in range(max_target_pages):
            # Step (1): fill ZONE_PTP with PTEs pointing at one physical page.
            spray = spray_page_tables(
                kernel, attacker, spray_mappings, target_pfn_value=target_page
            )
            result.modeled_time_s += self.timing.fill_s
            before = self._snapshot_ptes(attacker)

            # Steps (2)+(3): hammer each ZONE_PTP row, then check PTEs.
            for burst in iter_steps(compiled, context):
                outcome = burst.perform()
                result.hammer_rounds += 1
                result.flips_induced += outcome.flip_count
                result.modeled_time_s += self.timing.hammer_row_s
                kernel.tlb.flush()
            self._record_observations(before)

            references = find_self_references(kernel, attacker, spray.mapped_vas)
            result.ptes_checked += len(spray.mapped_vas)
            result.modeled_time_s += len(spray.mapped_vas) * self.timing.check_pte_s
            if references:
                report = attempt_escalation(kernel, attacker, references[0])
                if report.achieved:
                    result.outcome = AttackOutcome.SUCCESS
                    result.corrupted_vas = [r.virtual_address for r in references]
                    result.escalated_pid = attacker.pid
                    result.detail = report.detail
                    return self._finish(result)

            # Tear the spray down before the next target page.
            for vma in list(attacker.vmas):
                if vma.start in set(spray.mapped_vas):
                    kernel.munmap(attacker, vma)

        result.detail = (
            f"no exploitable PTE after {max_target_pages} target pages; "
            f"{self._monotonic_summary()}"
        )
        return self._finish(result)

    def _finish(self, result: AttackResult) -> AttackResult:
        """Record the terminal outcome and monotonicity evidence."""
        obs.inc("attack.outcomes", kind="algorithm1", outcome=result.outcome.value)
        monotonic = sum(1 for o in self.observations if o.monotonic)
        obs.inc("attack.pointer_observations", monotonic, monotonic="true")
        obs.inc(
            "attack.pointer_observations",
            len(self.observations) - monotonic,
            monotonic="false",
        )
        sanitize.notify(
            "attack.campaign",
            kernel=self.kernel,
            hammer=self.hammer,
            kind="algorithm1",
            outcome=result.outcome.value,
        )
        return result

    def full_sweep_modeled_time_s(self) -> float:
        """What the complete Algorithm 1 sweep would cost on real hardware."""
        policy = self.kernel.cta_policy
        if policy is None:
            raise AttackError("Algorithm 1 requires a CTA kernel")
        total = self.kernel.module.geometry.total_bytes
        ptp = policy.config.ptp_bytes
        return self.timing.worst_case_s(total, ptp)

    # -- internals ------------------------------------------------------------
    def _zone_ptp_rows(self) -> List[int]:
        """Global DRAM rows covered by the PTP sub-zones."""
        geometry = self.kernel.module.geometry
        rows: List[int] = []
        policy = self.kernel.cta_policy
        if policy is None:
            raise AttackError("Algorithm 1 requires a CTA kernel")
        for start, end in policy.true_cell_ranges:
            first = start // geometry.row_bytes
            last = (end + geometry.row_bytes - 1) // geometry.row_bytes
            rows.extend(range(first, last))
        return sorted(set(rows))

    def _read_table_words(self, base: int) -> List[int]:
        """All 512 raw PTE words of the table at ``base``.

        One zero-copy :meth:`DramModule.u64_view` gather per table on the
        fast path; the per-entry ``read_u64`` loop is kept for armed
        fault planes (per-read schedules must see every access) and for
        geometries where a table straddles a row.
        """
        module = self.kernel.module
        slots = 4096 // PTE_SIZE
        if not module.fault_plane_armed:
            view = module.u64_view(base, slots)
            if view is not None:
                return [int(raw) for raw in view]
        return [module.read_u64(base + slot * PTE_SIZE) for slot in range(slots)]

    def _snapshot_ptes(self, attacker: Process) -> List[Tuple[int, int]]:
        """(pte_physical_address, raw_value) of every live attacker PTE."""
        snapshot: List[Tuple[int, int]] = []
        for pt_pfn in self.kernel.page_table_pfns(attacker.pid):
            base = pt_pfn << PAGE_SHIFT
            for slot, raw in enumerate(self._read_table_words(base)):
                if raw & 1:  # present entries only
                    snapshot.append((base + slot * PTE_SIZE, raw))
        return snapshot

    def _record_observations(self, before: List[Tuple[int, int]]) -> None:
        armed = self.kernel.module.fault_plane_armed
        module = self.kernel.module
        current_words: Dict[int, List[int]] = {}
        for address, original_raw in before:
            if armed:
                # Reference path: one read per recorded PTE, in order, so
                # per-read fault schedules replay exactly.
                current_raw = module.read_u64(address)
            else:
                base = address & ~0xFFF
                words = current_words.get(base)
                if words is None:
                    words = current_words[base] = self._read_table_words(base)
                current_raw = words[(address - base) // PTE_SIZE]
            if current_raw == original_raw:
                continue
            self.observations.append(
                PointerObservation(
                    pte_physical_address=address,
                    original_pfn=PageTableEntry.decode(original_raw).pfn,
                    corrupted_pfn=PageTableEntry.decode(current_raw).pfn,
                )
            )

    def _monotonic_summary(self) -> str:
        total = len(self.observations)
        monotonic = sum(1 for o in self.observations if o.monotonic)
        return f"{monotonic}/{total} corrupted pointers moved monotonically down"
