"""RowHammer attack implementations against the simulated kernel.

Implements the attack families the paper evaluates:

- :mod:`~repro.attacks.probabilistic` — the Project-Zero-style PTE attack
  (Figure 3) against a stock kernel,
- :mod:`~repro.attacks.templating` — Drammer-style deterministic attack,
- :mod:`~repro.attacks.algorithm1` — the paper's Algorithm 1, tailored to
  attack a CTA-protected system,
- :mod:`~repro.attacks.escalation` — PTE self-reference detection and the
  privilege-escalation completion step,
- :mod:`~repro.attacks.timing` — the Section 5 attack-time accounting,
- :mod:`~repro.attacks.registry` — the Table 1 catalogue.
"""

from repro.attacks.base import AttackOutcome, AttackResult
from repro.attacks.escalation import EscalationReport, attempt_escalation, find_self_references
from repro.attacks.spray import SprayResult, spray_page_tables
from repro.attacks.timing import AttackTimingModel
from repro.attacks.probabilistic import ProbabilisticPteAttack
from repro.attacks.templating import TemplatingAttack
from repro.attacks.algorithm1 import CtaBruteForceAttack
from repro.attacks.registry import KNOWN_ATTACKS, AttackRecord

__all__ = [
    "AttackOutcome",
    "AttackRecord",
    "AttackResult",
    "AttackTimingModel",
    "CtaBruteForceAttack",
    "EscalationReport",
    "KNOWN_ATTACKS",
    "ProbabilisticPteAttack",
    "SprayResult",
    "TemplatingAttack",
    "attempt_escalation",
    "find_self_references",
    "spray_page_tables",
]
