"""Page-table spraying.

Step one of every probabilistic PTE attack (Figure 3 / [32]): mmap a small
file with read-write permission many times at 2 MiB-aligned virtual
addresses. Each mapping occupies its own last-level page table, so every
mapping the attacker touches forces the kernel to allocate one page-table
page while the data cost stays a single shared file frame. The physical
memory fills up with the attacker's own page tables — the targets the
hammer step tries to corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.errors import OutOfMemoryError, PageFaultError, ProcessError
from repro.kernel.kernel import Kernel
from repro.kernel.process import MappedFile, Process
from repro.payload import (
    PayloadContext,
    PayloadProgram,
    compile_program,
    iter_steps,
    touch_sweep,
)
from repro.units import MIB, PAGE_SIZE


#: Virtual span covered by one last-level page table (512 * 4 KiB).
PT_COVERAGE = 2 * MIB

#: Base virtual address for sprayed mappings, clear of the default mmap area.
SPRAY_BASE = 0x0000_4000_0000


@dataclass
class SprayResult:
    """What the spray created."""

    file: MappedFile
    mapped_vas: List[int] = field(default_factory=list)
    page_tables_created: int = 0
    stopped_by_oom: bool = False
    #: The touch program the spray executed (None when nothing was planned).
    payload: Optional[PayloadProgram] = None

    @property
    def num_mappings(self) -> int:
        """Mappings successfully created and touched."""
        return len(self.mapped_vas)


def spray_page_tables(
    kernel: Kernel,
    attacker: Process,
    num_mappings: int,
    file_bytes: int = PAGE_SIZE,
    target_pfn_value: int = 0,
) -> SprayResult:
    """Fill memory with the attacker's page tables.

    Creates one shared file and maps it ``num_mappings`` times, each at its
    own 2 MiB-aligned address, touching the first page of each mapping so
    the last-level PTE (and hence its page table) materialises. All sprayed
    PTEs point at the same physical file frame, which is what Algorithm 1's
    step (1) needs ("fill ZONE_PTP with PTEs that point to the same
    physical page").

    ``target_pfn_value`` is informational: Algorithm 1 re-sprays per target
    page; the caller records which page this spray aimed at.

    Stops early (setting ``stopped_by_oom``) when the kernel runs out of
    page-table capacity — on a CTA kernel this bounds the spray at the
    ZONE_PTP size.
    """
    pt_before = len(kernel.page_table_pfns(attacker.pid))
    result = SprayResult(file=kernel.create_file(file_bytes))
    # The touch sequence is a payload: one demand-fault read per planned
    # 2 MiB-aligned address. The mmap that backs each touch is attack
    # bookkeeping performed just before the pending access, with the same
    # per-mapping fault tolerance the hand loop had.
    planned = [SPRAY_BASE + index * PT_COVERAGE for index in range(num_mappings)]
    if planned:
        result.payload = touch_sweep("spray-touch", planned)
        context = PayloadContext(kernel=kernel, process=attacker)
        for pending in iter_steps(compile_program(result.payload), context):
            va = pending.address
            try:
                kernel.mmap(
                    kernel.processes[attacker.pid],
                    length=file_bytes,
                    writable=True,
                    backing=result.file,
                    address=va,
                )
                pending.perform()
            except OutOfMemoryError:
                result.stopped_by_oom = True
                break
            except (PageFaultError, ProcessError):
                # Earlier hammering corrupted the paging subtree (or a prior
                # run left a stale VMA) for this region; a real attacker's
                # access would just crash here — skip the mapping.
                continue
            result.mapped_vas.append(va)
            obs.inc("attack.spray_mappings")
    result.page_tables_created = len(kernel.page_table_pfns(attacker.pid)) - pt_before
    obs.trace(
        "attack.spray",
        mappings=result.num_mappings,
        page_tables=result.page_tables_created,
        oom=result.stopped_by_oom,
    )
    return result
