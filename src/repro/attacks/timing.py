"""Attack-time accounting from the paper's Section 5 measurements.

Measured on the i7-6700/8 GiB prototype:

- step (1), filling ZONE_PTP with PTEs pointing at one physical page:
  **184 ms** (excluding establishing the virtual->physical mapping);
- step (2), hammering one row: at least one refresh interval, **64 ms**;
- step (3), checking one PTE for self-reference via ``memcmp``: **600 ns**.

The paper's expected-time formulas:

- worst case = pages_below_mark x (fill + rows x (hammer + ptes_per_row x check))
- unrestricted average = worst / (ceil(expected_exploitable) + 1)
- restricted (>= two indicator zeros) average = worst / 2, taking exactly
  one exploitable location in the rare vulnerable system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.units import PAGE_SIZE, PTE_SIZE, REFRESH_INTERVAL_S


@dataclass(frozen=True)
class AttackTimingModel:
    """Per-step costs and geometry needed to price Algorithm 1."""

    fill_s: float = 0.184
    hammer_row_s: float = REFRESH_INTERVAL_S
    check_pte_s: float = 600e-9
    row_bytes: int = 128 * 1024

    def __post_init__(self) -> None:
        for name in ("fill_s", "hammer_row_s", "check_pte_s"):
            if getattr(self, name) <= 0:
                raise AnalysisError(f"{name} must be positive")

    @property
    def ptes_per_row(self) -> int:
        """Last-level PTEs that fit in one DRAM row (16,384 at 128 KiB)."""
        return self.row_bytes // PTE_SIZE

    def rows_in_ptp(self, ptp_bytes: int) -> int:
        """DRAM rows covered by a ZONE_PTP of ``ptp_bytes``."""
        if ptp_bytes <= 0 or ptp_bytes % self.row_bytes:
            raise AnalysisError("ptp_bytes must be a positive multiple of the row size")
        return ptp_bytes // self.row_bytes

    def time_per_target_page_s(self, ptp_bytes: int) -> float:
        """Cost of testing one candidate physical page (steps 1-3)."""
        rows = self.rows_in_ptp(ptp_bytes)
        per_row = self.hammer_row_s + self.ptes_per_row * self.check_pte_s
        return self.fill_s + rows * per_row

    def pages_below_mark(self, total_bytes: int, ptp_bytes: int) -> int:
        """Physical pages the brute force must enumerate (below the mark)."""
        if total_bytes <= ptp_bytes:
            raise AnalysisError("memory must exceed ZONE_PTP")
        return (total_bytes - ptp_bytes) // PAGE_SIZE

    def worst_case_s(self, total_bytes: int, ptp_bytes: int) -> float:
        """Full brute-force sweep over every page below the low water mark."""
        return self.pages_below_mark(total_bytes, ptp_bytes) * self.time_per_target_page_s(
            ptp_bytes
        )

    def expected_s_unrestricted(
        self, total_bytes: int, ptp_bytes: int, expected_exploitable: float
    ) -> float:
        """Average time with ``expected_exploitable`` random exploitable PTEs.

        The paper divides the worst case by ``ceil(E) + 1`` — the expected
        fraction of the sweep before hitting the first of ``ceil(E)``
        uniformly placed targets.
        """
        if expected_exploitable < 0:
            raise AnalysisError("expected_exploitable must be non-negative")
        divisor = math.ceil(expected_exploitable) + 1
        return self.worst_case_s(total_bytes, ptp_bytes) / divisor

    def expected_s_restricted(self, total_bytes: int, ptp_bytes: int) -> float:
        """Average time in the restricted design, given a vulnerable system.

        Expected exploitable locations are << 1, so the vulnerable system
        has exactly one; expected sweep time is half the worst case.
        """
        return self.worst_case_s(total_bytes, ptp_bytes) / 2
