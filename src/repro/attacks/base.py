"""Common attack result types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class AttackOutcome(enum.Enum):
    """Terminal state of an attack run."""

    SUCCESS = "success"
    FAILED = "failed"
    BUDGET_EXHAUSTED = "budget-exhausted"
    BLOCKED = "blocked"  # the defense made the attack structurally impossible


@dataclass
class AttackResult:
    """What an attack run produced.

    ``modeled_time_s`` is the Section 5 accounting of how long the same
    steps would take on real hardware (the simulator itself runs much
    faster); ``hammer_rounds`` and ``flips_induced`` describe the simulated
    physical activity.
    """

    outcome: AttackOutcome
    hammer_rounds: int = 0
    flips_induced: int = 0
    ptes_checked: int = 0
    modeled_time_s: float = 0.0
    detail: str = ""
    corrupted_vas: List[int] = field(default_factory=list)
    escalated_pid: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        """True only for full privilege escalation."""
        return self.outcome is AttackOutcome.SUCCESS
