"""Probabilistic PTE-based privilege escalation (Figure 3, [32]).

The Project-Zero-style attack against a stock kernel:

1. **Spray** — map one file read-write at thousands of 2 MiB-aligned
   addresses, interleaving the mappings with anonymous pages the attacker
   can hammer from. On a stock kernel the buddy allocator serves the
   page-table pages and the attacker's data pages from the same zones, so
   physical memory fills with attacker page tables *sandwiched between*
   attacker-hammerable rows.
2. **Hammer** — double-sided hammer every row adjacent to attacker-owned
   rows; the sprayed page-table rows are among the victims, so flips land
   in PTEs.
3. **Check** — read every sprayed mapping; a page that suddenly reads like
   a page table means a PTE now self-references.
4. **Escalate** — forge PTEs through the exposed window.

Against a CTA kernel the same attack is structurally *blocked*: page
tables live above the low water mark where the attacker cannot place any
of its own rows, so step 2 never disturbs a PTE — the behaviour the paper
reports for the RowHAmmer tool ("it cannot induce errors in the region
above the low water mark ... the attack will always fail").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro import obs, sanitize
from repro.attacks.base import AttackOutcome, AttackResult
from repro.attacks.escalation import attempt_escalation, find_self_references
from repro.attacks.spray import PT_COVERAGE, SPRAY_BASE
from repro.attacks.timing import AttackTimingModel
from repro.dram.rowhammer import RowHammerModel
from repro.errors import OutOfMemoryError
from repro.kernel.kernel import Kernel
from repro.kernel.page import PageUse
from repro.kernel.process import Process
from repro.payload import (
    PayloadContext,
    PayloadProgram,
    compile_program,
    hammer_sweep,
    iter_steps,
)
from repro.units import PAGE_SIZE


@dataclass
class ProbabilisticPteAttack:
    """One attacker instance bound to a kernel and a RowHammer model."""

    kernel: Kernel
    hammer: RowHammerModel
    timing: AttackTimingModel = AttackTimingModel()
    sprayed_vas: List[int] = field(default_factory=list)
    #: All attacker-mapped single pages (sprayed + interleaved anonymous);
    #: the self-reference scan covers every one of them.
    checked_vas: List[int] = field(default_factory=list)
    #: Hammer programs this instance compiled and executed, in order.
    executed_payloads: List[PayloadProgram] = field(default_factory=list)

    def run(
        self,
        attacker: Process,
        spray_mappings: int = 64,
        pages_per_mapping: int = 4,
        interleave_data_pages: int = 2,
        max_rounds: int = 8,
    ) -> AttackResult:
        """Execute the full attack; returns the outcome and accounting.

        ``pages_per_mapping`` controls how many present PTEs each sprayed
        page table holds; ``interleave_data_pages`` how many hammerable
        anonymous pages are allocated between consecutive mappings.
        """
        self.prepare(
            attacker, spray_mappings, pages_per_mapping, interleave_data_pages
        )
        return self.execute(attacker, max_rounds)

    def prepare(
        self,
        attacker: Process,
        spray_mappings: int = 64,
        pages_per_mapping: int = 4,
        interleave_data_pages: int = 2,
    ) -> None:
        """The deterministic setup half of :meth:`run`: record the attempt
        and spray.

        Consumes no hammer randomness, so a prepared world can be frozen
        once (:mod:`repro.perf.snapshot`) and :meth:`execute` replayed
        against it per trial seed.
        """
        obs.inc("attack.attempts", kind="probabilistic_pte")
        self._spray_interleaved(
            attacker, spray_mappings, pages_per_mapping, interleave_data_pages
        )

    def execute(self, attacker: Process, max_rounds: int = 8) -> AttackResult:
        """The seed-dependent half of :meth:`run`: hammer, check, escalate."""
        if not self.sprayed_vas:
            return self._finish(
                AttackResult(
                    outcome=AttackOutcome.FAILED, detail="spray created no mappings"
                )
            )

        victim_rows = self._candidate_victim_rows(attacker)
        if not any(self._is_page_table_row(row) for row in victim_rows):
            return self._finish(
                AttackResult(
                    outcome=AttackOutcome.BLOCKED,
                    detail=(
                        "no attacker-adjacent row contains page tables; the spray "
                        "cannot reach them (low water mark separation)"
                    ),
                )
            )

        # Hammer one row, then immediately check and (if lucky) escalate —
        # the Project Zero loop. Checking after every row keeps collateral
        # damage to the rest of the paging tree from masking a hit. The
        # sweep itself is a compiled payload; the per-burst check/escalate
        # bookkeeping interleaves between its pending steps.
        program = hammer_sweep("probabilistic-hammer", victim_rows)
        self.executed_payloads.append(program)
        compiled = compile_program(program)
        context = PayloadContext(hammer=self.hammer)
        result = AttackResult(outcome=AttackOutcome.BUDGET_EXHAUSTED)
        for _ in range(max_rounds):
            for burst in iter_steps(compiled, context):
                outcome = burst.perform()
                result.hammer_rounds += 1
                result.flips_induced += outcome.flip_count
                result.modeled_time_s += self.timing.hammer_row_s
                if not outcome.flips:
                    continue
                self.kernel.tlb.flush()
                references = find_self_references(self.kernel, attacker, self.checked_vas)
                result.ptes_checked += len(self.checked_vas)
                result.modeled_time_s += len(self.checked_vas) * self.timing.check_pte_s
                for reference in references[:8]:
                    report = attempt_escalation(self.kernel, attacker, reference)
                    if report.achieved:
                        result.outcome = AttackOutcome.SUCCESS
                        result.corrupted_vas = [r.virtual_address for r in references]
                        result.escalated_pid = attacker.pid
                        result.detail = report.detail
                        return self._finish(result)
                    result.detail = (
                        f"self-reference found but escalation failed: {report.detail}"
                    )
        if not result.detail:
            result.detail = f"no self-reference after {max_rounds} rounds"
        return self._finish(result)

    # -- internals -------------------------------------------------------
    def _finish(self, result: AttackResult) -> AttackResult:
        """Record the terminal outcome before handing the result back."""
        obs.inc(
            "attack.outcomes", kind="probabilistic_pte", outcome=result.outcome.value
        )
        sanitize.notify(
            "attack.campaign",
            kernel=self.kernel,
            hammer=self.hammer,
            kind="probabilistic_pte",
            outcome=result.outcome.value,
        )
        return result

    def _spray_interleaved(
        self,
        attacker: Process,
        spray_mappings: int,
        pages_per_mapping: int,
        interleave_data_pages: int,
    ) -> None:
        """Alternate file mappings with anonymous data-page allocations."""
        if self.kernel.module.fault_plane_armed:
            self._spray_interleaved_scalar(
                attacker, spray_mappings, pages_per_mapping, interleave_data_pages
            )
            return
        kernel = self.kernel
        file_bytes = pages_per_mapping * PAGE_SIZE
        shared = kernel.create_file(file_bytes)
        data_base = SPRAY_BASE + 4096 * PT_COVERAGE
        data_cursor = 0
        try:
            for index in range(spray_mappings):
                va = SPRAY_BASE + index * PT_COVERAGE
                _, page_pas = kernel.mmap_touch_many(
                    attacker, file_bytes, writable=True,
                    backing=shared, address=va,
                )
                self.checked_vas.extend(
                    va + page * PAGE_SIZE for page in range(len(page_pas))
                )
                self.sprayed_vas.append(va)
                obs.inc("attack.spray_mappings")
                for _ in range(interleave_data_pages):
                    data_va = data_base + data_cursor * PAGE_SIZE
                    # Keep each anonymous chunk inside one 2 MiB region so
                    # its page tables are shared, not one per page.
                    kernel.mmap_touch_many(
                        attacker, PAGE_SIZE, address=data_va, write=True
                    )
                    self.checked_vas.append(data_va)
                    data_cursor += 1
        except OutOfMemoryError as exc:
            # Mirror the scalar loop's partial state: pages touched before
            # the failure stay checkable, the failed mapping is not
            # counted as sprayed.
            touched = getattr(exc, "touched", [])
            vma = getattr(exc, "vma", None)
            if vma is not None:
                self.checked_vas.extend(
                    vma.start + page * PAGE_SIZE for page in range(len(touched))
                )

    def _spray_interleaved_scalar(
        self,
        attacker: Process,
        spray_mappings: int,
        pages_per_mapping: int,
        interleave_data_pages: int,
    ) -> None:
        """Per-page reference spray, kept for armed fault planes.

        Chaos schedules (``tlb-stale``, ``dram-read-error``, ``buddy-oom``)
        are keyed to per-access event order; this loop preserves it
        exactly.
        """
        kernel = self.kernel
        file_bytes = pages_per_mapping * PAGE_SIZE
        shared = kernel.create_file(file_bytes)
        data_base = SPRAY_BASE + 4096 * PT_COVERAGE
        data_cursor = 0
        try:
            for index in range(spray_mappings):
                va = SPRAY_BASE + index * PT_COVERAGE
                vma = kernel.mmap(
                    attacker, length=file_bytes, writable=True,
                    backing=shared, address=va,
                )
                for page in range(pages_per_mapping):
                    page_va = vma.start + page * PAGE_SIZE
                    kernel.touch(attacker, page_va)  # repro-lint: ignore[RL008] — armed-plane reference path
                    self.checked_vas.append(page_va)
                self.sprayed_vas.append(va)
                obs.inc("attack.spray_mappings")
                for _ in range(interleave_data_pages):
                    data_va = data_base + data_cursor * PAGE_SIZE
                    # Keep each anonymous chunk inside one 2 MiB region so
                    # its page tables are shared, not one per page.
                    anon = kernel.mmap(attacker, PAGE_SIZE, address=data_va)
                    kernel.touch(attacker, anon.start, write=True)  # repro-lint: ignore[RL008] — armed-plane reference path
                    self.checked_vas.append(anon.start)
                    data_cursor += 1
        except OutOfMemoryError:
            pass

    def _attacker_rows(self, attacker: Process) -> Set[int]:
        """Rows containing frames the attacker can access directly."""
        geometry = self.kernel.module.geometry
        rows: Set[int] = set()
        for frame in self.kernel.page_db.allocated_frames():
            if frame.owner_pid != attacker.pid:
                continue
            if frame.use in (PageUse.USER_DATA, PageUse.FILE_CACHE):
                rows.add(geometry.row_of_address(frame.address))
        return rows

    def _is_page_table_row(self, row: int) -> bool:
        geometry = self.kernel.module.geometry
        base = geometry.row_base_address(row)
        pages_per_row = geometry.row_bytes // PAGE_SIZE
        first_pfn = base // PAGE_SIZE
        return any(
            self.kernel.is_page_table_pfn(first_pfn + i) for i in range(pages_per_row)
        )

    def _candidate_victim_rows(self, attacker: Process) -> List[int]:
        """Rows the attacker would hammer: all neighbors of its own rows.

        Productive victims (rows actually containing page tables) are
        ordered first and the unproductive tail is capped, which shortens
        simulation wall-time without changing the attack's power.
        """
        geometry = self.kernel.module.geometry
        attacker_rows = self._attacker_rows(attacker)
        neighbors: Set[int] = set()
        for row in attacker_rows:
            neighbors.update(geometry.neighbors(row))
        # Highest rows first: sprayed last-level tables occupy the most
        # recently allocated (highest) frames, while the process's own
        # top-level tables sit lowest — hammering those first would shred
        # the attacker's paging tree before any usable flip lands.
        productive = sorted(
            (row for row in neighbors if self._is_page_table_row(row)), reverse=True
        )
        rest = sorted(row for row in neighbors if not self._is_page_table_row(row))
        return productive + rest[:16]
