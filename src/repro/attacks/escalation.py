"""PTE self-reference detection and privilege-escalation completion.

The paper defines *PTE self-reference* as "a PTE pointing to another PTE of
the same process" — precisely, a last-level PTE whose frame pointer lands
on a page-table page (PTP). Once an attacker owns a VA whose PTE
self-references, reading/writing that VA reads/writes a page table, so the
attacker can forge PTEs mapping arbitrary physical memory: root.

:func:`find_self_references` performs the attacker-visible scan (step (3)
of Algorithm 1 — read each sprayed VA and recognise page-table-like
content), then confirms against kernel ground truth.
:func:`attempt_escalation` carries a confirmed self-reference through to a
demonstrated arbitrary physical read/write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import PageFaultError
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PageTableEntry
from repro.kernel.page import PageUse
from repro.kernel.process import Process
from repro.units import PAGE_SHIFT, PAGE_SIZE, PTE_SIZE


@dataclass
class SelfReference:
    """A corrupted mapping giving user-space a window onto a page table."""

    virtual_address: int
    pte_physical_address: int
    target_pfn: int


@dataclass
class EscalationReport:
    """Outcome of the post-corruption escalation attempt."""

    achieved: bool
    self_reference: Optional[SelfReference] = None
    forged_pte_value: int = 0
    proof_read: bytes = b""
    detail: str = ""


def _looks_like_page_table(content: bytes) -> bool:
    """The attacker's heuristic from [32]: does a page read like PTEs?

    Sprayed file pages contain the attacker's marker data; a page table
    instead contains many 8-byte words with low control bits set (present,
    writable, user) and plausible frame numbers. We use the same simple
    pattern test the Project Zero exploit describes.
    """
    full = len(content) - (len(content) % PTE_SIZE)
    words = np.frombuffer(content[:full], dtype="<u8")
    if full != len(content):
        words = np.append(words, np.uint64(int.from_bytes(content[full:], "little")))
    present = words[(words & np.uint64(0x1)) != 0]
    if present.size == 0:
        return False
    # PTEs have their low permission bits set and frame bits within the
    # physical address width; attacker data rarely does consistently.
    plausible = int(
        np.count_nonzero(
            ((present & np.uint64(0x7)) == np.uint64(0x7))
            & (present < np.uint64(1 << 52))
        )
    )
    return plausible >= max(1, present.size // 2)


def _confirm_self_reference(
    kernel: Kernel, attacker: Process, va: int, leaf: int, entry: PageTableEntry
) -> Optional[SelfReference]:
    """Ground-truth confirmation of one page-table-looking page.

    The demo escalation path forges entries in last-level tables
    (pt_level 1); windows onto higher levels are exploitable too but need
    a different forging recipe, so they are not reported here.
    """
    frame = kernel.page_db.frame(entry.pfn)
    if (
        frame.use is PageUse.PAGE_TABLE
        and frame.owner_pid == attacker.pid
        and frame.pt_level in (0, 1)
    ):
        return SelfReference(
            virtual_address=va, pte_physical_address=leaf, target_pfn=entry.pfn
        )
    return None


def find_self_references(
    kernel: Kernel, attacker: Process, sprayed_vas: List[int]
) -> List[SelfReference]:
    """Scan sprayed mappings for PTEs corrupted into self-reference.

    For each VA the attacker walks its own mapping by reading the page
    content (user-level view) and flags page-table-looking pages; each
    flag is then confirmed against the kernel's frame database, mirroring
    how a real attack confirms by attempting the escalation.

    The scan is batched — candidate leaves are collected first, then all
    candidate pages load through :meth:`Mmu.load_many` in one pass — with
    the per-VA reference loop kept for armed fault planes, where per-read
    schedules must see each access in its original order.
    """
    if kernel.module.fault_plane_armed:
        return _find_self_references_scalar(kernel, attacker, sprayed_vas)
    candidates: List[Tuple[int, int, PageTableEntry]] = []
    for va in sprayed_vas:
        leaf = kernel.leaf_pte_address(attacker, va)
        if leaf is None:
            continue
        entry = PageTableEntry.decode(kernel.module.read_u64(leaf))
        if entry.present and entry.user:
            candidates.append((va, leaf, entry))
    if not candidates:
        return []
    contents = _load_pages_tolerant(kernel, attacker, [c[0] for c in candidates])
    found: List[SelfReference] = []
    for (va, leaf, entry), content in zip(candidates, contents):
        if content is None or not _looks_like_page_table(content):
            continue
        reference = _confirm_self_reference(kernel, attacker, va, leaf, entry)
        if reference is not None:
            found.append(reference)
    return found


def _load_pages_tolerant(
    kernel: Kernel, attacker: Process, vas: List[int]
) -> List[Optional[bytes]]:
    """One page of content per VA; ``None`` where the walk faults.

    Tries the batched load first; when any address faults (the paging
    subtree above it took collateral flips) it falls back to per-VA loads
    so the surviving addresses still get scanned.
    """
    try:
        return list(
            kernel.mmu.load_many(attacker.cr3, vas, PAGE_SIZE, pid=attacker.pid)
        )
    except PageFaultError:
        pass
    contents: List[Optional[bytes]] = []
    for va in vas:
        try:
            contents.append(
                kernel.mmu.load(attacker.cr3, va, PAGE_SIZE, pid=attacker.pid)  # repro-lint: ignore[RL008] — per-VA fault tolerance after a faulting batch
            )
        except PageFaultError:
            contents.append(None)
    return contents


def _find_self_references_scalar(
    kernel: Kernel, attacker: Process, sprayed_vas: List[int]
) -> List[SelfReference]:
    """Per-VA reference scan, kept for armed fault planes.

    Interleaves each VA's leaf read and page load exactly as the original
    loop did, so per-access fault schedules replay unchanged.
    """
    found: List[SelfReference] = []
    for va in sprayed_vas:
        leaf = kernel.leaf_pte_address(attacker, va)
        if leaf is None:
            continue
        entry = PageTableEntry.decode(kernel.module.read_u64(leaf))
        if not (entry.present and entry.user):
            continue
        try:
            content = kernel.mmu.load(attacker.cr3, va, PAGE_SIZE, pid=attacker.pid)  # repro-lint: ignore[RL008] — armed-plane reference path
        except PageFaultError:
            continue
        if not _looks_like_page_table(content):
            continue
        reference = _confirm_self_reference(kernel, attacker, va, leaf, entry)
        if reference is not None:
            found.append(reference)
    return found


def attempt_escalation(
    kernel: Kernel, attacker: Process, self_reference: SelfReference
) -> EscalationReport:
    """Turn a self-referencing PTE into arbitrary physical memory access.

    The attacker writes, through its corrupted mapping, a forged PTE into
    the exposed page table; the forged entry maps a kernel-owned physical
    frame with user/write permissions. Success is proven by reading that
    frame's content through the re-mapped virtual address.
    """
    obs.inc("attack.escalation_probes")
    victim_frame = _pick_kernel_frame(kernel)
    if victim_frame is None:
        return EscalationReport(achieved=False, detail="no kernel frame to target")
    secret = b"KERNEL-SECRET-" + bytes([victim_frame & 0xFF]) * 8
    kernel.module.write(victim_frame << PAGE_SHIFT, secret)

    # Pick a slot of the exposed table that some attacker VA still routes
    # through (the surrounding paging tree may have taken collateral flips;
    # a live route is guaranteed to walk). The attacker can compute slots
    # from VA arithmetic, so this needs no privileged knowledge.
    route = _live_route_through(kernel, attacker, self_reference.target_pfn)
    if route is None:
        return EscalationReport(
            achieved=False, detail="no attacker VA routes through the exposed table"
        )
    probe_va, slot = route

    # The exposed PTP, as seen through the attacker's corrupted mapping.
    window_va = self_reference.virtual_address
    forged = PageTableEntry.make(victim_frame, writable=True, user=True)
    try:
        kernel.mmu.store(
            attacker.cr3,
            window_va + slot * PTE_SIZE,
            forged.encode().to_bytes(8, "little"),
            pid=attacker.pid,
        )
    except PageFaultError as exc:
        return EscalationReport(achieved=False, detail=f"window not writable: {exc}")
    kernel.tlb.flush()
    try:
        leaked = kernel.mmu.load(attacker.cr3, probe_va, len(secret), pid=attacker.pid)
    except PageFaultError as exc:
        return EscalationReport(achieved=False, detail=f"forged mapping faulted: {exc}")
    achieved = leaked == secret
    if achieved:
        obs.inc("attack.escalations_achieved")
        obs.trace(
            "attack.escalation",
            window_va=window_va,
            target_pfn=self_reference.target_pfn,
            victim_frame=victim_frame,
        )
    return EscalationReport(
        achieved=achieved,
        self_reference=self_reference,
        forged_pte_value=forged.encode(),
        proof_read=leaked,
        detail="arbitrary physical read demonstrated" if achieved else "proof mismatch",
    )


def _pick_kernel_frame(kernel: Kernel) -> Optional[int]:
    """A kernel-owned frame whose content the attacker must not see."""
    for frame in kernel.page_db.frames_with_use(PageUse.KERNEL_DATA):
        return frame.pfn
    # Fall back to any page-table page of another process, or allocate one.
    from repro.kernel.gfp import GFP_KERNEL  # local import avoids cycle at module load

    try:
        return kernel.alloc_page(GFP_KERNEL, PageUse.KERNEL_DATA, owner_pid=None)
    except Exception:
        return None


def _live_route_through(
    kernel: Kernel, attacker: Process, pt_pfn: int
) -> Optional[Tuple[int, int]]:
    """An attacker ``(virtual_address, slot)`` whose last-level PTE lies in
    the table at ``pt_pfn`` and whose walk currently succeeds.

    Returns None when no mapped VA routes through that table (e.g. the
    subtree above it took collateral flips).
    """
    pt_base = pt_pfn << PAGE_SHIFT
    for vma in attacker.vmas:
        for page_index in range(vma.num_pages):
            va = vma.start + page_index * PAGE_SIZE
            leaf = kernel.leaf_pte_address(attacker, va)
            if leaf is not None and (leaf >> PAGE_SHIFT) == pt_pfn:
                return va, (leaf - pt_base) // PTE_SIZE
    return None
