"""Table 4-style overhead reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.perf.runner import PerfResult, compare_cta_overhead
from repro.perf.workloads import PHORONIX_WORKLOADS, SPEC_WORKLOADS, WorkloadProfile
from repro.units import MIB


@dataclass(frozen=True)
class OverheadRow:
    """One benchmark's measured CTA overhead."""

    workload: str
    suite: str
    overhead_percent: float


#: Published Table 4 means (percent): CTA overhead is noise around zero.
PAPER_TABLE4_MEANS: Dict[str, Tuple[float, float]] = {
    # suite -> (8GB system mean %, 128GB system mean %)
    "spec2006": (-0.07, 0.04),
    "phoronix": (-0.08, 0.25),
}


def table4_report(
    workloads: Sequence[WorkloadProfile] = SPEC_WORKLOADS + PHORONIX_WORKLOADS,
    repeats: int = 3,
    total_bytes: int = 64 * MIB,
) -> List[OverheadRow]:
    """Measure CTA overhead for every Table 4 workload."""
    rows = []
    for profile in workloads:
        overhead = compare_cta_overhead(profile, repeats=repeats, total_bytes=total_bytes)
        rows.append(
            OverheadRow(
                workload=profile.name,
                suite=profile.suite,
                overhead_percent=100.0 * overhead,
            )
        )
    return rows


def suite_mean(rows: Sequence[OverheadRow], suite: str) -> float:
    """Mean overhead percent across one suite's rows."""
    values = [row.overhead_percent for row in rows if row.suite == suite]
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_report(rows: Sequence[OverheadRow]) -> str:
    """Printable Table 4 analogue."""
    lines = [f"{'Benchmark':24s} {'Suite':10s} {'CTA overhead':>14s}"]
    for row in rows:
        lines.append(
            f"{row.workload:24s} {row.suite:10s} {row.overhead_percent:13.2f}%"
        )
    for suite in ("spec2006", "phoronix"):
        lines.append(f"{'Mean (' + suite + ')':35s} {suite_mean(rows, suite):13.2f}%")
    return "\n".join(lines)


def format_result_metrics(result: PerfResult, top: int = 0) -> str:
    """Printable per-run metric deltas of one :class:`PerfResult`.

    ``top`` keeps only the N largest-magnitude series (0 = all).
    """
    items = sorted(result.metrics.items(), key=lambda kv: -abs(kv[1]))
    if top:
        items = items[:top]
    if not items:
        return "(no metric deltas recorded)"
    width = max(len(name) for name, _ in items)
    lines = [f"{result.workload} (cta={'on' if result.cta_enabled else 'off'}):"]
    for name, value in sorted(items):
        rendered = f"{int(value)}" if float(value).is_integer() else f"{value:.6g}"
        lines.append(f"  {name:<{width}s}  {rendered:>14s}")
    return "\n".join(lines)
