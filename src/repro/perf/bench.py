"""Hot-path microbenchmarks behind ``repro bench``.

Three cases, each timed against a same-seed reference so the reported
speedups are apples-to-apples on the *same machine in the same run*:

``hammer_heavy``
    A burst of double-/single-sided hammers through the vectorized
    :class:`~repro.dram.rowhammer.RowHammerModel` vs the scalar
    ``slow_reference`` path. Equal flip totals are asserted — a speedup
    built on divergent results would be meaningless.
``walk_heavy``
    TLB-off translation sweeps: the frontier ``translate_many`` walker
    vs the scalar ``slow_reference`` walk loop over the same warm
    working set, identical physical addresses asserted and a minimum
    speedup *gated* (a walk path that stops beating the scalar loop
    fails the bench outright, not just the baseline comparison).
``walk_frontier``
    The frontier walker at width: thousands of VPNs spanning many leaf
    tables (shared interior nodes deduplicated per level), TLB off, vs
    the same-seed scalar reference; identical addresses asserted.
``live_boot_multigb``
    Paper-scale live simulation: boot a 2 GiB sparse module (128 KiB
    rows, N=512 interleave, CTA on, ``profile_cells`` off) and run the
    truncated live Algorithm 1 plus the templating attack through
    :func:`repro.perf.paperscale.run_paperscale_campaign`. Gates that
    the attacks stay blocked/exhausted and that resident DRAM stays
    inside the bench memory budget — the sparse-store contract, priced.
``campaign``
    Serial probabilistic-attack trials via the campaign fan-out target
    (throughput signal for Monte-Carlo scaling; deterministic, so its
    ops/s is comparable across commits on the same hardware).
``campaign_memo_warm``
    The same campaign run twice through a shared
    :class:`~repro.perf.memo.SegmentMemo`: cold (all misses, populates
    the cache) then warm (all hits). Byte-identical reports are
    asserted and the warm/cold speedup is *gated* at
    :data:`MEMO_SPEEDUP_FLOOR` — a cache that stops paying for itself
    fails the bench outright.
``service_multi_tenant_memo``
    N tenants submit the same campaign through one
    :class:`~repro.service.server.CampaignService` sharing a segment
    memo. All N reports must be byte-identical and the hit rate is
    gated at (N-1)/N — only the first tenant may compute.
``walk_batch``
    TLB-on translation sweeps through :meth:`~repro.kernel.mmu.Mmu.
    translate_many` vs the same-seed scalar ``slow_reference`` loop,
    with identical physical-address vectors asserted.
``spray_batch``
    Spray-style setup + verify (map/fault a region per mapping, then
    re-read every page) through :meth:`~repro.kernel.kernel.Kernel.
    mmap_touch_many` / :meth:`~repro.kernel.mmu.Mmu.load_many` vs the
    per-page reference loops; identical frames and bytes asserted.
``snapshot_warm_start``
    Per-segment setup cost: cold boot + spray vs attaching
    copy-on-write to a :class:`~repro.perf.snapshot.SimulatorSnapshot`.

``run_bench_suite`` returns a JSON-ready report; ``write_bench_report``
persists it (``BENCH_hotpath.json``) atomically via a temp file +
``os.replace`` so a crashed bench never leaves a truncated report, and
``check_baseline`` compares ops/s against a committed baseline with a
regression factor — CI fails when hammer-heavy regresses more than 2x.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import obs
from repro.dram.cells import CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.errors import ConfigurationError, ReproError
from repro.kernel.kernel import Kernel
from repro.perf.parallel import run_probabilistic_trials
from repro.perf.runner import WORKLOAD_BASE, make_perf_kernel
from repro.units import MIB, PAGE_SIZE

BENCH_VERSION = 1

DEFAULT_OUTPUT = "BENCH_hotpath.json"

#: Default allowed slowdown vs the committed baseline before CI fails.
DEFAULT_MAX_REGRESSION = 2.0


def _hammer_world(slow_reference: bool, seed: int) -> RowHammerModel:
    geometry = DramGeometry(total_bytes=16 * MIB, row_bytes=16 * 1024, num_banks=2)
    cell_map = CellTypeMap.interleaved(geometry, period_rows=8)
    module = DramModule(geometry, cell_map)
    for row in range(96):
        module.fill_row(row, 0xFF if row % 2 else 0x5A)
    return RowHammerModel(
        module,
        stats=FlipStatistics(p_vulnerable=2e-3, p_with_leak=0.9),
        seed=seed,
        activation_probability=0.9,
        slow_reference=slow_reference,
    )


def _time_hammers(model: RowHammerModel, warmup: int, hammers: int) -> tuple:
    """Hammer ``warmup`` untimed bursts, then time ``hammers`` more.

    The warmup absorbs one-time costs shared by both paths — vulnerable-bit
    sampling per first-touched row and the initial flip flood on fresh
    fill patterns — so the timed region measures steady-state hammering.
    Both paths consume the RNG identically during warmup, so streams stay
    aligned and total flips (warmup + timed) remain comparable.
    """
    flips = 0
    for burst in range(warmup):
        aggressor = 2 + (burst * 3) % 90
        flips += model.hammer(aggressor).flip_count
    start = time.perf_counter()
    for burst in range(warmup, warmup + hammers):
        aggressor = 2 + (burst * 3) % 90
        flips += model.hammer(aggressor).flip_count
    return time.perf_counter() - start, flips


def bench_hammer_heavy(quick: bool = False) -> Dict[str, Any]:
    """Vectorized vs scalar hammer bursts; asserts identical flip totals."""
    warmup = 60
    hammers = 120 if quick else 300
    seed = 20_260_806
    vec_elapsed, vec_flips = _time_hammers(_hammer_world(False, seed), warmup, hammers)
    ref_elapsed, ref_flips = _time_hammers(_hammer_world(True, seed), warmup, hammers)
    if vec_flips != ref_flips:
        raise ReproError(
            f"hammer bench mismatch: vectorized induced {vec_flips} flips, "
            f"scalar reference {ref_flips} — equivalence is broken"
        )
    return {
        "ops": hammers,
        "elapsed_s": vec_elapsed,
        "ops_per_s": hammers / vec_elapsed if vec_elapsed else 0.0,
        "reference_elapsed_s": ref_elapsed,
        "speedup": ref_elapsed / vec_elapsed if vec_elapsed else 0.0,
        "flips": vec_flips,
    }


#: Minimum frontier-vs-scalar speedup the walk benches tolerate before
#: failing outright. The measured ratio is far higher (the acceptance
#: floor is 5x); 2x absorbs machine noise while still catching a walker
#: that silently degrades to per-entry reads.
WALK_SPEEDUP_FLOOR = 2.0


def _walk_world(regions: int, pages_per_region: int, region_stride_pages: int) -> tuple:
    """A mapped working set plus its page VAs, for the walk benches."""
    import numpy as np

    kernel = make_perf_kernel(cta=False, total_bytes=64 * MIB)
    process = kernel.create_process()
    addresses: List[int] = []
    for region in range(regions):
        base = WORKLOAD_BASE + region * (region_stride_pages * PAGE_SIZE)
        vma, _ = kernel.mmap_touch_many(
            process, pages_per_region * PAGE_SIZE, address=base, write=True
        )
        addresses.extend(
            vma.start + page * PAGE_SIZE for page in range(pages_per_region)
        )
    return kernel, process, np.asarray(addresses, dtype=np.int64)


def _time_frontier_vs_scalar(
    kernel, process, vas, passes: int, case: str
) -> Dict[str, Any]:
    """Time TLB-off ``translate_many`` against its scalar reference loop.

    Asserts bit-identical physical addresses and gates the speedup at
    :data:`WALK_SPEEDUP_FLOOR` — the bench *fails*, it does not merely
    report, when the frontier walker stops beating the scalar walk.
    """
    import numpy as np

    mmu = kernel.mmu
    # Warmup both paths: PT views, decode caches, resident-row dict.
    mmu.translate_many(process.cr3, vas, pid=process.pid, use_tlb=False)
    mmu.translate_many(
        process.cr3, vas, pid=process.pid, use_tlb=False, slow_reference=True
    )
    start = time.perf_counter()
    for _ in range(passes):
        batched = mmu.translate_many(
            process.cr3, vas, pid=process.pid, use_tlb=False
        )
    elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(passes):
        reference = mmu.translate_many(
            process.cr3, vas, pid=process.pid, use_tlb=False, slow_reference=True
        )
    ref_elapsed = time.perf_counter() - start
    if not np.array_equal(batched, reference):
        raise ReproError(f"{case} mismatch: frontier != scalar addresses")
    speedup = ref_elapsed / elapsed if elapsed else 0.0
    if speedup < WALK_SPEEDUP_FLOOR:
        raise ReproError(
            f"{case}: frontier walker speedup {speedup:.2f}x is below the "
            f"{WALK_SPEEDUP_FLOOR:g}x floor vs the scalar reference walk"
        )
    walks = passes * int(vas.size)
    return {
        "ops": walks,
        "elapsed_s": elapsed,
        "ops_per_s": walks / elapsed if elapsed else 0.0,
        "reference_elapsed_s": ref_elapsed,
        "speedup": speedup,
    }


def bench_walk_heavy(quick: bool = False) -> Dict[str, Any]:
    """TLB-off frontier sweeps vs the scalar reference walk (gated)."""
    passes = 6 if quick else 30
    kernel, process, vas = _walk_world(
        regions=8, pages_per_region=32, region_stride_pages=64
    )
    return _time_frontier_vs_scalar(kernel, process, vas, passes, "walk_heavy")


def bench_walk_frontier(quick: bool = False) -> Dict[str, Any]:
    """The frontier walker at width: thousands of VPNs, many leaf tables.

    Each pass misses the (disabled) TLB for every VPN, so all of them
    advance through the radix tree as one frontier per level; the 32
    regions share PML4/PDPT interior nodes, exercising the per-level
    address dedup. Gated like ``walk_heavy``.
    """
    passes = 4 if quick else 20
    kernel, process, vas = _walk_world(
        regions=32, pages_per_region=64, region_stride_pages=512
    )
    return _time_frontier_vs_scalar(kernel, process, vas, passes, "walk_frontier")


def bench_live_boot_multigb(quick: bool = False) -> Dict[str, Any]:
    """Boot a 2 GiB sparse world and run the live attacks (gated).

    ``ops`` counts live hammer rounds (every ZONE_PTP row of the
    truncated Algorithm 1 sweep plus the templating bursts). Fails when
    an attack breaks containment at paper scale or when the sparse store
    materializes more than the bench memory budget.
    """
    from repro.dram.rowhammer import FlipStatistics
    from repro.perf.paperscale import run_paperscale_campaign
    from repro.units import GIB

    report = run_paperscale_campaign(
        total_bytes=2 * GIB,
        spray_mappings=48,
        max_target_pages=1,
        stats=FlipStatistics(p_vulnerable=1e-3, p_with_leak=0.998),
    )
    if report.algorithm1_outcome == "success":
        raise ReproError(
            "live_boot_multigb: Algorithm 1 succeeded at paper scale — "
            "the No Self-Reference containment is broken"
        )
    if report.templating_outcome != "blocked":
        raise ReproError(
            f"live_boot_multigb: templating attack reported "
            f"{report.templating_outcome!r} on a CTA kernel, expected blocked"
        )
    budget = 256 * MIB
    if report.resident_bytes > budget:
        raise ReproError(
            f"live_boot_multigb: {report.resident_bytes} resident DRAM bytes "
            f"exceed the {budget} bench budget — the sparse store is leaking "
            "dense allocations"
        )
    elapsed = report.boot_s + report.algorithm1_s + report.templating_s
    return {
        "ops": report.hammer_rounds,
        "elapsed_s": elapsed,
        "ops_per_s": report.hammer_rounds / elapsed if elapsed else 0.0,
        "boot_s": report.boot_s,
        "flips": report.flips_induced,
        "pointer_observations": report.pointer_observations,
        "monotonic_observations": report.monotonic_observations,
        "resident_bytes": report.resident_bytes,
        "resident_fraction": report.resident_fraction,
        "total_bytes": report.total_bytes,
    }


def bench_walk_batch(quick: bool = False) -> Dict[str, Any]:
    """Vectorized ``translate_many`` sweeps vs the scalar reference loop.

    Both sides run TLB-on over the same warm working set; the batched
    pass must return bit-identical physical addresses.
    """
    import numpy as np

    passes = 10 if quick else 60
    kernel = make_perf_kernel(cta=False, total_bytes=64 * MIB)
    process = kernel.create_process()
    addresses: List[int] = []
    for region in range(16):
        base = WORKLOAD_BASE + region * (128 * PAGE_SIZE)
        vma, _ = kernel.mmap_touch_many(
            process, 64 * PAGE_SIZE, address=base, write=True
        )
        addresses.extend(vma.start + page * PAGE_SIZE for page in range(64))
    vas = np.asarray(addresses, dtype=np.int64)
    mmu = kernel.mmu
    mmu.translate_many(process.cr3, vas, pid=process.pid)  # warmup: fill TLB
    start = time.perf_counter()
    for _ in range(passes):
        batched = mmu.translate_many(process.cr3, vas, pid=process.pid)
    elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(passes):
        reference = mmu.translate_many(
            process.cr3, vas, pid=process.pid, slow_reference=True
        )
    ref_elapsed = time.perf_counter() - start
    if not np.array_equal(batched, reference):
        raise ReproError("walk_batch mismatch: batched != scalar addresses")
    walks = passes * len(addresses)
    return {
        "ops": walks,
        "elapsed_s": elapsed,
        "ops_per_s": walks / elapsed if elapsed else 0.0,
        "reference_elapsed_s": ref_elapsed,
        "speedup": ref_elapsed / elapsed if elapsed else 0.0,
    }


def bench_spray_batch(quick: bool = False) -> Dict[str, Any]:
    """Spray-verify sweeps: batched ``load_many`` vs the per-VA loop.

    Models the hot loop of the probabilistic attack — re-reading every
    sprayed page each round to check for flips. The spray itself (mapped
    through ``mmap_touch_many``) runs once, untimed; both verify sides
    must return identical page contents.
    """
    import numpy as np

    rounds = 4 if quick else 20
    kernel = make_perf_kernel(cta=False, total_bytes=64 * MIB)
    process = kernel.create_process()
    checked: List[int] = []
    for index in range(16):
        base = WORKLOAD_BASE + index * (64 * PAGE_SIZE)
        vma, _ = kernel.mmap_touch_many(
            process, 32 * PAGE_SIZE, address=base, write=True
        )
        checked.extend(vma.start + page * PAGE_SIZE for page in range(32))
    vas = np.asarray(checked, dtype=np.int64)
    mmu = kernel.mmu
    mmu.load_many(process.cr3, vas, 64, pid=process.pid)  # warmup: fill TLB
    start = time.perf_counter()
    for _ in range(rounds):
        batched = list(mmu.load_many(process.cr3, vas, 64, pid=process.pid))
    elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        reference = list(
            mmu.load_many(
                process.cr3, vas, 64, pid=process.pid, slow_reference=True
            )
        )
    ref_elapsed = time.perf_counter() - start
    if batched != reference:
        raise ReproError("spray_batch mismatch: batched != scalar contents")
    ops = rounds * len(checked)
    return {
        "ops": ops,
        "elapsed_s": elapsed,
        "ops_per_s": ops / elapsed if elapsed else 0.0,
        "reference_elapsed_s": ref_elapsed,
        "speedup": ref_elapsed / elapsed if elapsed else 0.0,
    }


def bench_snapshot_warm_start(quick: bool = False) -> Dict[str, Any]:
    """Per-segment setup: cold boot + spray vs copy-on-write attach."""
    from repro.perf.parallel import capture_trial_snapshot, probabilistic_trial
    from repro.perf.snapshot import SimulatorSnapshot

    setups = 2 if quick else 6
    start = time.perf_counter()
    for index in range(setups):
        probabilistic_trial(index, seed=7 + index, max_rounds=0)
    cold_elapsed = time.perf_counter() - start
    snapshot = capture_trial_snapshot()
    try:
        start = time.perf_counter()
        for index in range(setups):
            probabilistic_trial(
                index, seed=7 + index, max_rounds=0, snapshot=snapshot.name
            )
        warm_elapsed = time.perf_counter() - start
    finally:
        snapshot.release()
    return {
        "ops": setups,
        "elapsed_s": warm_elapsed,
        "ops_per_s": setups / warm_elapsed if warm_elapsed else 0.0,
        "reference_elapsed_s": cold_elapsed,
        "speedup": cold_elapsed / warm_elapsed if warm_elapsed else 0.0,
    }


def bench_campaign(quick: bool = False) -> Dict[str, Any]:
    """Serial probabilistic-trial throughput through the campaign engine."""
    trials = 2 if quick else 4
    start = time.perf_counter()
    report = run_probabilistic_trials(
        trials,
        seed=99,
        workers=1,
        spray_mappings=8,
        max_rounds=1,
    )
    elapsed = time.perf_counter() - start
    outcomes = sorted(
        record["result"]["outcome"] for record in report.completed.values()
    )
    return {
        "ops": trials,
        "elapsed_s": elapsed,
        "ops_per_s": trials / elapsed if elapsed else 0.0,
        "outcomes": outcomes,
    }


#: Minimum warm-over-cold speedup the memoized campaign bench tolerates.
#: A warm pass replays serialized outcomes instead of booting kernels and
#: spraying pages, so the measured ratio is far higher; 5x is the
#: acceptance floor from the memoization contract.
MEMO_SPEEDUP_FLOOR = 5.0


def bench_campaign_memo_warm(quick: bool = False) -> Dict[str, Any]:
    """Cold-vs-warm campaign passes through a shared segment memo (gated).

    Both passes run the identical ``run_probabilistic_trials`` campaign
    against one :class:`~repro.perf.memo.SegmentMemo`; the reports must
    compare equal (the byte-identity contract) and the warm pass must be
    at least :data:`MEMO_SPEEDUP_FLOOR` times faster. ``ops_per_s`` is
    the warm (cache-hit) throughput.
    """
    from repro.perf.memo import SegmentMemo

    trials = 2 if quick else 4
    memo = SegmentMemo()

    def one_pass() -> tuple:
        start = time.perf_counter()
        report = run_probabilistic_trials(
            trials,
            seed=99,
            workers=1,
            spray_mappings=8,
            max_rounds=1,
            memo=memo,
        )
        return time.perf_counter() - start, report

    cold_elapsed, cold = one_pass()
    warm_elapsed, warm = one_pass()
    if cold.to_dict() != warm.to_dict():
        raise ReproError(
            "campaign_memo_warm mismatch: warm (memoized) report diverges "
            "from the cold run — the byte-identity contract is broken"
        )
    if memo.hits < trials:
        raise ReproError(
            f"campaign_memo_warm: warm pass scored {memo.hits} hits for "
            f"{trials} segments — the cache is not being consulted"
        )
    speedup = cold_elapsed / warm_elapsed if warm_elapsed else 0.0
    if speedup < MEMO_SPEEDUP_FLOOR:
        raise ReproError(
            f"campaign_memo_warm: warm speedup {speedup:.2f}x is below the "
            f"{MEMO_SPEEDUP_FLOOR:g}x floor vs the cold run"
        )
    return {
        "ops": trials,
        "elapsed_s": warm_elapsed,
        "ops_per_s": trials / warm_elapsed if warm_elapsed else 0.0,
        "reference_elapsed_s": cold_elapsed,
        "speedup": speedup,
        "hits": memo.hits,
        "misses": memo.misses,
        "stores": memo.stores,
    }


def bench_service_multi_tenant_memo(quick: bool = False) -> Dict[str, Any]:
    """N tenants, one shared memo, one service: hit rate gated at (N-1)/N.

    Every tenant submits the same (name, target, segments, seed)
    campaign, so only the first submission may compute — the remaining
    N-1 must replay cached outcomes. All N reports are asserted equal;
    a hit rate below (N-1)/N fails the bench.
    """
    import asyncio

    from repro.perf.memo import SegmentMemo
    from repro.service.protocol import CampaignRequest
    from repro.service.server import CampaignService

    tenants = 4 if quick else 8
    segments = 3
    memo = SegmentMemo()

    async def _run() -> tuple:
        service = CampaignService(workers=1, memo=memo)
        service.start()
        start = time.perf_counter()
        reports = []
        for index in range(tenants):
            request = CampaignRequest(
                name="memo-bench",
                target="repro.perf.parallel:montecarlo_trial",
                num_segments=segments,
                seed=1234,
                tenant=f"team-{index}",
            )
            reports.append(await service.submit(request))
        elapsed = time.perf_counter() - start
        await service.drain()
        return elapsed, reports

    elapsed, reports = asyncio.run(_run())
    first = reports[0].to_dict()
    for report in reports[1:]:
        if report.to_dict() != first:
            raise ReproError(
                "service_multi_tenant_memo mismatch: a memoized tenant "
                "report diverges from the first tenant's computed report"
            )
    total = memo.hits + memo.misses
    # Integer cross-multiplication: hits/total >= (tenants-1)/tenants
    # without float rounding at the exact boundary.
    if total == 0 or memo.hits * tenants < (tenants - 1) * total:
        raise ReproError(
            f"service_multi_tenant_memo: hit rate {memo.hits}/{total} is "
            f"below the ({tenants - 1}/{tenants}) floor — tenants beyond "
            "the first are recomputing"
        )
    ops = tenants * segments
    return {
        "ops": ops,
        "elapsed_s": elapsed,
        "ops_per_s": ops / elapsed if elapsed else 0.0,
        "hit_rate": memo.hits / total,
        "hits": memo.hits,
        "misses": memo.misses,
        "tenants": tenants,
    }


def bench_payload_compiled(quick: bool = False) -> Dict[str, Any]:
    """Compiled payload execution vs the slow_reference interpreter.

    Runs one hammer-sweep program both ways against identically seeded
    worlds and requires identical flips — the payload equivalence
    contract, priced. ``ops`` counts executed bursts on the compiled
    path.
    """
    from repro import payload

    rows = list(range(8, 24 if quick else 56))
    activations = 500
    program = payload.hammer_sweep(
        "bench-sweep", rows, activations=activations
    )
    compiled = payload.compile_program(program)

    # Warm both worlds identically (first-touch vulnerable-bit sampling
    # and the initial flip flood) so the timed region measures execution,
    # not shared one-time costs — and both consume the same randomness.
    model = _hammer_world(False, seed=17)
    reference_model = _hammer_world(False, seed=17)
    warmup = payload.hammer_sweep("bench-warmup", rows, activations=1)
    payload.run(warmup, payload.PayloadContext(hammer=model))
    payload.run(warmup, payload.PayloadContext(hammer=reference_model))

    start = time.perf_counter()
    fast = payload.run(compiled, payload.PayloadContext(hammer=model))
    elapsed = time.perf_counter() - start

    ref_start = time.perf_counter()
    slow = payload.slow_reference(
        program, payload.PayloadContext(hammer=reference_model)
    )
    ref_elapsed = time.perf_counter() - ref_start

    if fast.flips_induced != slow.flips_induced:
        raise ReproError(
            f"payload bench mismatch: compiled induced {fast.flips_induced} "
            f"flips, slow_reference {slow.flips_induced} — equivalence is "
            "broken"
        )
    return {
        "ops": fast.bursts,
        "elapsed_s": elapsed,
        "ops_per_s": fast.bursts / elapsed if elapsed else 0.0,
        "reference_elapsed_s": ref_elapsed,
        "speedup": ref_elapsed / elapsed if elapsed else 0.0,
        "flips": fast.flips_induced,
    }


def run_bench_suite(quick: bool = False) -> Dict[str, Any]:
    """Run every case against a fresh registry; returns the report dict."""
    previous = obs.get_registry()
    obs.set_registry(obs.Registry())
    try:
        results = {
            "hammer_heavy": bench_hammer_heavy(quick=quick),
            "walk_heavy": bench_walk_heavy(quick=quick),
            "walk_frontier": bench_walk_frontier(quick=quick),
            "walk_batch": bench_walk_batch(quick=quick),
            "live_boot_multigb": bench_live_boot_multigb(quick=quick),
            "spray_batch": bench_spray_batch(quick=quick),
            "snapshot_warm_start": bench_snapshot_warm_start(quick=quick),
            "campaign": bench_campaign(quick=quick),
            "campaign_memo_warm": bench_campaign_memo_warm(quick=quick),
            "service_multi_tenant_memo": bench_service_multi_tenant_memo(
                quick=quick
            ),
            "payload_compiled": bench_payload_compiled(quick=quick),
        }
    finally:
        obs.set_registry(previous)
    return {"version": BENCH_VERSION, "quick": bool(quick), "results": results}


def write_bench_report(report: Dict[str, Any], path: Union[str, Path]) -> None:
    """Persist a bench report as stable-ordered JSON, atomically.

    The report is written to a temp file in the destination directory
    and moved into place with ``os.replace``, so readers never observe
    a truncated ``BENCH_hotpath.json`` — an interrupted bench leaves
    either the previous report or the new one, nothing in between.
    """
    destination = Path(path)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    fd, tmp_path = tempfile.mkstemp(
        dir=str(destination.parent) or ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_path, destination)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a committed baseline (``{case: {"ops_per_s": float}}``)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from None
    if not isinstance(data, dict):
        raise ConfigurationError(f"baseline {path} must be a JSON object")
    return data


def check_baseline(
    report: Dict[str, Any],
    baseline: Union[str, Path, Dict[str, Any]],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> List[str]:
    """Compare a report against a baseline; returns regression messages.

    A case regresses when its measured ops/s falls below the baseline's
    ``ops_per_s / max_regression``. Cases absent from either side are
    skipped (new benchmarks don't fail old baselines).
    """
    if max_regression <= 0:
        raise ConfigurationError(f"max_regression {max_regression} must be > 0")
    if not isinstance(baseline, dict):
        baseline = load_baseline(baseline)
    failures: List[str] = []
    for case, expected in sorted(baseline.items()):
        measured = report.get("results", {}).get(case)
        if measured is None or "ops_per_s" not in expected:
            continue
        floor = float(expected["ops_per_s"]) / max_regression
        actual = float(measured["ops_per_s"])
        if actual < floor:
            failures.append(
                f"{case}: {actual:.1f} ops/s is below the regression floor "
                f"{floor:.1f} (baseline {float(expected['ops_per_s']):.1f} "
                f"/ {max_regression:g}x)"
            )
    return failures


def format_bench_table(report: Dict[str, Any]) -> str:
    """Human-readable summary of one report."""
    lines = []
    for case, result in sorted(report.get("results", {}).items()):
        parts = [
            f"{case:<14s}",
            f"{result['ops']:>6d} ops",
            f"{result['elapsed_s']:>9.3f} s",
            f"{result['ops_per_s']:>10.1f} ops/s",
        ]
        if "speedup" in result:
            parts.append(f"{result['speedup']:>7.1f}x vs scalar")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def bench_main(
    quick: bool = False,
    output: Union[str, Path] = DEFAULT_OUTPUT,
    baseline: Optional[Union[str, Path]] = None,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> int:
    """CLI driver: run, persist, print, optionally gate on a baseline."""
    report = run_bench_suite(quick=quick)
    write_bench_report(report, output)
    print(format_bench_table(report))
    print(f"report written to {output}")
    if baseline is not None:
        failures = check_baseline(report, baseline, max_regression=max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"baseline check passed (max regression {max_regression:g}x)")
    return 0
