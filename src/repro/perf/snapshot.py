"""Zero-copy simulator snapshots for campaign warm-start.

A :class:`SimulatorSnapshot` freezes a fully booted (and optionally
pre-sprayed) simulator world once, so every campaign segment can start
from it instead of replaying boot per segment:

- **DRAM row bytes** go into one :mod:`multiprocessing.shared_memory`
  block. Workers map the block read-only and rebind each row as a
  zero-copy numpy view; :meth:`~repro.dram.module.DramModule._row_array`
  promotes a row to a private writable copy on first mutation
  (copy-on-write), so segments never see each other's writes and
  untouched rows are never copied at all.
- **Kernel skeleton** (zones, buddy free lists, page DB, processes,
  page-table bookkeeping) travels as a compact pickle with the row dict
  detached.
- **Obs state** recorded while building the world (an isolated registry
  wraps the capture) is exported with
  :meth:`~repro.obs.metrics.Registry.export_state`; materializing merges
  it into the current registry, so a warmed segment's totals — and hence
  reports, checkpoints, and ``repro stats`` output — are byte-identical
  to a segment that booted cold.
- **Extra state** (e.g. a pre-run attack's sprayed-address lists) rides
  along as an arbitrary picklable value.

Layout of the shared block: ``[8-byte little-endian payload length |
pickle payload | concatenated row bytes]``. The segment is created by
the parent (which owns ``unlink``); workers attach by name with
:meth:`attach_cached` and keep one mapping per process.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.kernel.kernel import Kernel

__all__ = ["SimulatorSnapshot"]

_HEADER = struct.Struct("<Q")

#: One attached snapshot per shared-memory name per process (workers are
#: reused across segments; re-attaching per segment would leak mappings).
_ATTACHED: Dict[str, "SimulatorSnapshot"] = {}


class SimulatorSnapshot:
    """A frozen simulator world in shared memory (see module docstring)."""

    def __init__(self, shm: Any, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False

    # -- construction -------------------------------------------------------
    @classmethod
    def capture(
        cls,
        factory: Callable[[], Kernel],
        extra_fn: Optional[Callable[[Kernel], Any]] = None,
    ) -> "SimulatorSnapshot":
        """Build a world with ``factory`` and freeze it.

        ``factory`` (and ``extra_fn``, which may run setup like an attack
        spray against the fresh kernel before returning its extra state)
        execute under an isolated obs registry; everything they record is
        captured and replayed into the consuming registry at
        :meth:`materialize` time.
        """
        from multiprocessing import shared_memory

        previous = obs.get_registry()
        registry = obs.set_registry(obs.Registry())
        try:
            kernel = factory()
            extra = extra_fn(kernel) if extra_fn is not None else None
        finally:
            obs.set_registry(previous)

        module = kernel.module
        rows = module._rows
        row_index: Dict[int, Tuple[int, int]] = {}
        cursor = 0
        for row in sorted(rows):
            row_index[row] = (cursor, rows[row].size)
            cursor += rows[row].size

        # Pickle the kernel with the heavy row storage (and the caches
        # aliasing it) detached; the rows travel as raw bytes instead.
        saved_views = module._u64_views
        saved_pt_views = kernel.mmu._pt_views
        module._rows = {}
        module._u64_views = {}
        kernel.mmu._pt_views = {}
        try:
            payload = pickle.dumps(
                {
                    "kernel": kernel,
                    "row_index": row_index,
                    "obs_state": registry.export_state(),
                    "extra": extra,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        finally:
            module._rows = rows
            module._u64_views = saved_views
            kernel.mmu._pt_views = saved_pt_views

        rows_offset = _HEADER.size + len(payload)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, rows_offset + cursor)
        )
        _HEADER.pack_into(shm.buf, 0, len(payload))
        shm.buf[_HEADER.size : rows_offset] = payload
        if cursor:
            # One writable view over the row region; numpy slice-assigns
            # each row straight from its backing array. The per-row
            # tobytes() this replaces materialized an intermediate bytes
            # object per row — real money at multi-GB resident sets.
            region = np.frombuffer(
                shm.buf, dtype=np.uint8, count=cursor, offset=rows_offset
            )
            for row, (offset, length) in row_index.items():
                region[offset : offset + length] = rows[row]
            del region  # drop the view so release() can close the mapping
        snapshot = cls(shm, owner=True)
        # Serial (in-process) warm starts resolve the name through
        # attach_cached too; give them the owner handle rather than a
        # second mapping, which would fight the resource tracker over
        # the segment's registration.
        _ATTACHED[snapshot.name] = snapshot
        return snapshot

    @classmethod
    def attach(cls, name: str) -> "SimulatorSnapshot":
        """Map an existing snapshot by shared-memory name (worker side)."""
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            shm = shared_memory.SharedMemory(name=name)
            try:
                from multiprocessing import resource_tracker

                # The attaching process must not unlink the segment at
                # exit — the creating parent owns cleanup.
                resource_tracker.unregister(shm._name, "shared_memory")
            except (ImportError, AttributeError, KeyError):
                pass
        return cls(shm, owner=False)

    @classmethod
    def attach_cached(cls, name: str) -> "SimulatorSnapshot":
        """Attach once per process; later calls reuse the mapping."""
        snapshot = _ATTACHED.get(name)
        if snapshot is None:
            snapshot = _ATTACHED[name] = cls.attach(name)
        return snapshot

    # -- use ----------------------------------------------------------------
    @property
    def name(self) -> str:
        """Shared-memory name workers attach by."""
        return self._shm.name

    def materialize(self) -> Tuple[Kernel, Any]:
        """A fresh, independent kernel backed read-only by the snapshot.

        Unpickles a new kernel skeleton, rebinds every DRAM row as a
        read-only zero-copy view into the shared block (mutations promote
        per row, copy-on-write), and merges the captured obs state into
        the current registry. Returns ``(kernel, extra)``.
        """
        if self._closed:
            raise ConfigurationError("snapshot has been released")
        (payload_len,) = _HEADER.unpack_from(self._shm.buf, 0)
        state = pickle.loads(bytes(self._shm.buf[_HEADER.size : _HEADER.size + payload_len]))
        kernel: Kernel = state["kernel"]
        module = kernel.module
        rows_offset = _HEADER.size + payload_len
        rows: Dict[int, np.ndarray] = {}
        for row, (offset, length) in state["row_index"].items():
            view = np.frombuffer(
                self._shm.buf, dtype=np.uint8, count=length,
                offset=rows_offset + offset,
            )
            view.setflags(write=False)
            rows[row] = view
        module._rows = rows
        module._u64_views = {}
        kernel.mmu._pt_views = {}
        # The pickled armed-state cache belongs to the capture process;
        # epochs are not comparable across processes.
        module._faults_epoch = -1
        # Keep the mapping alive as long as this kernel aliases it.
        kernel._warm_snapshot = self  # type: ignore[attr-defined]
        obs.get_registry().merge_state(state["obs_state"])
        return kernel, state["extra"]

    # -- cleanup ------------------------------------------------------------
    def release(self) -> None:
        """Unlink (owner) and drop this handle.

        Kernels materialized earlier keep their mapping until they die;
        unlinking only removes the name. ``close`` is best-effort — live
        numpy views legitimately pin the buffer.
        """
        if self._closed:
            return
        self._closed = True
        _ATTACHED.pop(self.name, None)
        if self._owner:
            self._shm.unlink()
        try:
            self._shm.close()
        except BufferError:
            pass
