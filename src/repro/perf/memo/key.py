"""Content-addressed segment identity: canonical JSON and ``SegmentKey``.

A segment's result is a pure function of (what code ran, against which
configuration, from which snapshot, with which payload programs, under
which derived seed, with which injected-fault schedule). This module
reduces that tuple to a single hex digest so identical segments — across
campaigns, tenants, and process restarts — share one cache entry.

Key-material discipline (statically enforced by lint rule ``RL013``):
every :class:`SegmentKey` field must come from :func:`digest_of` or
:func:`~repro.rng.derive_seed` (or be threaded through a local name that
does) — never from ambient entropy, wall clock, or pids. Anything the
result depends on that cannot be captured this way (an unserialisable
kwarg, a fault plane without a recorded seed) makes the key builders
return ``None``, which callers treat as "bypass the cache", never as
"guess a key".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Type

from repro.rng import derive_seed

__all__ = [
    "CODE_VERSION",
    "SegmentKey",
    "canonical_json",
    "digest_of",
    "payload_key",
    "campaign_key",
]

#: Version salt mixed into every key. Bump when the serialized segment
#: outcome shape (or any semantics the cached bytes depend on) changes:
#: old entries then miss instead of replaying a stale contract.
CODE_VERSION = "repro-memo-1"

#: Segment kwargs whose *values* vary run-to-run without changing the
#: result (shared-memory snapshot names are fresh every capture). Their
#: presence is keyed; their values are not.
VOLATILE_KWARGS = ("snapshot", "snapshot_names")

#: Segment kwargs that carry payload programs; digested separately so the
#: key mirrors the issue contract (payload digest is its own component).
PAYLOAD_KWARGS = ("payload", "payloads", "program", "programs")


def canonical_json(obj: Any) -> str:
    """The one canonical rendering: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj: Any) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SegmentKey:
    """The content address of one segment result.

    Every field is a digest or a :func:`~repro.rng.derive_seed` product;
    :meth:`digest` collapses them into the store key. ``attempt`` is
    always 0 today — the cache unit is the whole retry loop (retries
    derive their own seeds *inside* the segment computation and their
    count is part of the cached record), but the field is kept so a
    future per-attempt cache is a key change, not a contract change.
    """

    config_digest: str
    snapshot_digest: str
    payload_digest: str
    seed: int
    attempt: int
    fault_digest: str
    code_version: str = CODE_VERSION

    def digest(self) -> str:
        """Hex store key: digest of the canonical JSON of all fields."""
        return digest_of(
            {
                "config": self.config_digest,
                "snapshot": self.snapshot_digest,
                "payload": self.payload_digest,
                "seed": self.seed,
                "attempt": self.attempt,
                "faults": self.fault_digest,
                "version": self.code_version,
            }
        )


def _payload_token(value: Any) -> Any:
    """JSON-able identity of one payload-program kwarg value."""
    digest = getattr(value, "digest", None)
    if callable(digest):
        return digest()
    if isinstance(value, (list, tuple)):
        return [_payload_token(item) for item in value]
    return value


def _jsonable(obj: Any) -> bool:
    try:
        canonical_json(obj)
    except (TypeError, ValueError):
        return False
    return True


def _snapshot_digest(kwargs: Mapping[str, Any]) -> str:
    """Key the *presence and shape* of snapshot kwargs, not their names.

    Warm and cold segment runs are byte-identical by the snapshot
    contract, but they are keyed apart anyway: sharing entries across
    the warm/cold boundary would make a cache hit depend on that
    contract holding forever, instead of only on this run's own inputs.
    """
    present = {key: kwargs[key] for key in VOLATILE_KWARGS if key in kwargs}
    if not present:
        return ""
    token: Dict[str, Any] = {}
    for key, value in present.items():
        if isinstance(value, Mapping):
            token[key] = sorted(str(k) for k in value)
        elif isinstance(value, (list, tuple)):
            token[key] = len(value)
        else:
            token[key] = True
    return digest_of(token)


def _split_kwargs(
    kwargs: Mapping[str, Any],
) -> Optional[Tuple[Dict[str, Any], str]]:
    """(stable config kwargs, payload digest); None if unserialisable."""
    stable: Dict[str, Any] = {}
    payload_material: Dict[str, Any] = {}
    for key in sorted(kwargs):
        if key in VOLATILE_KWARGS:
            continue
        value = kwargs[key]
        if key in PAYLOAD_KWARGS:
            payload_material[key] = _payload_token(value)
        else:
            stable[key] = value
    if not _jsonable(stable) or not _jsonable(payload_material):
        return None
    return stable, digest_of(payload_material) if payload_material else ""


def _retryable_refs(retryable: Sequence[Any]) -> list:
    refs = []
    for exc_type in retryable:
        if isinstance(exc_type, str):
            refs.append(exc_type)
        else:
            refs.append(f"{exc_type.__module__}:{exc_type.__qualname__}")
    return refs


def payload_key(
    payload: Mapping[str, Any], fault_digest: str
) -> Optional[SegmentKey]:
    """Key for one :func:`repro.perf.parallel.run_segment_task` payload.

    ``fault_digest`` comes from
    :func:`repro.perf.memo.runtime.ambient_fault_digest` (or a recorded
    override when the key is built in a worker). Returns ``None`` when
    the payload carries kwargs that cannot be canonically serialized —
    such segments compute uncached rather than risk a colliding key.
    """
    kwargs = payload.get("kwargs", {})
    split = _split_kwargs(kwargs)
    if split is None:
        return None
    stable_kwargs, payload_digest = split
    config_digest = digest_of(
        {
            "kind": "segment-task",
            "target": payload["target"],
            "name": payload["name"],
            "retryable": list(payload["retryable"]),
            "max_retries": payload["max_retries"],
            "kwargs": stable_kwargs,
        }
    )
    snapshot_digest = _snapshot_digest(kwargs)
    seed = derive_seed(payload["seed"], payload["index"], 0)
    attempt = 0
    return SegmentKey(
        config_digest=config_digest,
        snapshot_digest=snapshot_digest,
        payload_digest=payload_digest,
        seed=seed,
        attempt=attempt,
        fault_digest=fault_digest,
    )


def campaign_key(
    *,
    name: str,
    config: Mapping[str, Any],
    seed: int,
    index: int,
    max_retries: int,
    retryable: Sequence[Type[BaseException]],
    fault_digest: str,
) -> Optional[SegmentKey]:
    """Key for one serial :class:`~repro.faults.campaign.CampaignRunner`
    segment.

    The runner's ``segment_fn`` is an arbitrary closure, so the key
    content-addresses the campaign *identity* instead: name, config
    dict, retry taxonomy. Callers owe the contract that ``config``
    captures everything the segment function's behaviour depends on —
    true for every in-repo campaign builder, which derives the closure
    from the config it passes.
    """
    if not _jsonable(config):
        return None
    config_digest = digest_of(
        {
            "kind": "campaign-runner",
            "name": name,
            "config": dict(config),
            "max_retries": max_retries,
            "retryable": _retryable_refs(retryable),
        }
    )
    snapshot_digest = ""
    payload_digest = ""
    derived = derive_seed(seed, index, 0)
    attempt = 0
    return SegmentKey(
        config_digest=config_digest,
        snapshot_digest=snapshot_digest,
        payload_digest=payload_digest,
        seed=derived,
        attempt=attempt,
        fault_digest=fault_digest,
    )
