"""repro.perf.memo — content-addressed segment memoization.

A deterministic result cache for campaign segments: the key is the
digest of everything a segment's result is a function of (config,
snapshot shape, payload programs, derived seed, fault schedule, code
version — see :mod:`repro.perf.memo.key`), the value is the canonical
JSON of the full segment outcome (record + exported obs state), and the
contract is strict byte-identity: a cache hit merges into reports,
registries, and checkpoints exactly as recomputation would (sampled and
enforced at runtime by ``--memo-verify``, statically by lint rule
``RL013`` keeping ambient entropy out of key material).

Stores are two-tier (:mod:`repro.perf.memo.store`): an in-process LRU
with a byte budget, optionally backed by an append-only on-disk store
with atomic temp-file/rename writes shared across workers, tenants, and
process restarts. :class:`SegmentMemo` (:mod:`repro.perf.memo.runtime`)
is the facade the serial runner, the parallel engine, the service tier,
and the CLI all share.
"""

from repro.perf.memo.key import (
    CODE_VERSION,
    SegmentKey,
    campaign_key,
    canonical_json,
    digest_of,
    payload_key,
)
from repro.perf.memo.runtime import (
    SAFE_AMBIENT_EVENTS,
    SegmentMemo,
    ambient_fault_digest,
    build_memo,
)
from repro.perf.memo.store import (
    DEFAULT_MEMORY_BUDGET,
    DiskMemoStore,
    InMemoryMemoStore,
    TieredMemoStore,
)

__all__ = [
    "CODE_VERSION",
    "DEFAULT_MEMORY_BUDGET",
    "SAFE_AMBIENT_EVENTS",
    "SegmentKey",
    "SegmentMemo",
    "DiskMemoStore",
    "InMemoryMemoStore",
    "TieredMemoStore",
    "ambient_fault_digest",
    "build_memo",
    "campaign_key",
    "canonical_json",
    "digest_of",
    "payload_key",
]
