"""Two-tier memo stores: in-process LRU bytes + crash-safe disk files.

Both tiers speak the same two-method protocol — ``get(digest) ->
Optional[bytes]`` / ``put(digest, blob)`` — over opaque serialized
segment outcomes keyed by :meth:`~repro.perf.memo.key.SegmentKey.digest`
hex strings. :class:`TieredMemoStore` stacks them: memory answers first,
disk backs it and survives process restarts.

The disk tier mirrors the campaign-checkpoint write discipline
(:func:`repro.faults.campaign.write_checkpoint`): every entry is written
to a temp file in the store directory and published with one atomic
``os.replace``, so readers — including concurrent workers sharing the
directory — only ever observe absent or complete entries, and a crash
mid-store leaves at worst an orphaned ``*.tmp`` that recovery sweeps on
the next open. Entries are append-only: a digest, once published, is
never rewritten (the byte-identity contract makes any rewrite a no-op
by definition), which is what makes concurrent publication of the same
key from two workers safe.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.units import MIB

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "InMemoryMemoStore",
    "DiskMemoStore",
    "TieredMemoStore",
]

#: Default in-process byte budget: enough for tens of thousands of
#: trial-sized outcomes, small enough to never matter next to a kernel.
DEFAULT_MEMORY_BUDGET = 64 * MIB

_ENTRY_SUFFIX = ".json"
_TMP_SUFFIX = ".tmp"


class InMemoryMemoStore:
    """Process-local LRU over serialized outcomes with a byte budget.

    ``get`` refreshes recency; ``put`` evicts least-recently-used
    entries until the budget holds. A blob larger than the whole budget
    is refused (not stored) rather than flushing the entire cache for
    one entry. ``evictions`` and :attr:`total_bytes` feed the
    ``memo.bytes`` gauge and the eviction-accounting tests.
    """

    def __init__(self, max_bytes: int = DEFAULT_MEMORY_BUDGET):
        if max_bytes < 1:
            raise ConfigurationError(f"max_bytes {max_bytes} must be >= 1")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.total_bytes = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Optional[bytes]:
        blob = self._entries.get(digest)
        if blob is not None:
            self._entries.move_to_end(digest)
        return blob

    def put(self, digest: str, blob: bytes) -> None:
        if len(blob) > self.max_bytes:
            return
        existing = self._entries.pop(digest, None)
        if existing is not None:
            self.total_bytes -= len(existing)
        self._entries[digest] = blob
        self.total_bytes += len(blob)
        while self.total_bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.total_bytes -= len(evicted)
            self.evictions += 1


class DiskMemoStore:
    """Append-only on-disk tier: one ``<digest>.json`` file per entry.

    Opening the store recovers from crashes: orphaned ``*.tmp`` files
    (a writer died between ``mkstemp`` and ``os.replace``) are removed,
    published entries are counted. A published entry that fails to read
    back (truncated by external interference) is treated as absent and
    deleted, never returned.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.total_bytes = 0
        self.entries = 0
        self.recovered_partials = 0
        for path in sorted(self.directory.iterdir()):
            if path.name.endswith(_TMP_SUFFIX):
                path.unlink(missing_ok=True)
                self.recovered_partials += 1
            elif path.name.endswith(_ENTRY_SUFFIX):
                self.entries += 1
                self.total_bytes += path.stat().st_size

    def _path(self, digest: str) -> Path:
        if not digest or any(ch in digest for ch in "/\\."):
            raise ConfigurationError(f"malformed memo digest {digest!r}")
        return self.directory / f"{digest}{_ENTRY_SUFFIX}"

    def get(self, digest: str) -> Optional[bytes]:
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if not blob:
            # Truncated by something outside the atomic-write discipline;
            # drop it so the slot can be repopulated.
            path.unlink(missing_ok=True)
            return None
        return blob

    def put(self, digest: str, blob: bytes) -> None:
        path = self._path(digest)
        if path.exists():
            # Append-only: the existing bytes are identical by contract.
            return
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, suffix=_TMP_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.entries += 1
        self.total_bytes += len(blob)

    def stats(self) -> Dict[str, int]:
        """Fresh on-disk accounting (rescans the directory)."""
        entries = 0
        total = 0
        for path in self.directory.iterdir():
            if path.name.endswith(_ENTRY_SUFFIX):
                entries += 1
                total += path.stat().st_size
        self.entries = entries
        self.total_bytes = total
        return {"entries": entries, "total_bytes": total}

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Prune oldest entries (by mtime) until ``max_bytes`` holds.

        File mtimes are operational retention metadata only — they never
        enter key material, so pruning cannot affect correctness, only
        future hit rates.
        """
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes {max_bytes} must be >= 0")
        paths = [
            path
            for path in self.directory.iterdir()
            if path.name.endswith(_ENTRY_SUFFIX)
        ]
        paths.sort(key=lambda path: (path.stat().st_mtime, path.name))
        total = sum(path.stat().st_size for path in paths)
        removed = 0
        freed = 0
        for path in paths:
            if total <= max_bytes:
                break
            size = path.stat().st_size
            path.unlink(missing_ok=True)
            total -= size
            freed += size
            removed += 1
        self.entries = len(paths) - removed
        self.total_bytes = total
        return {
            "removed": removed,
            "freed_bytes": freed,
            "entries": self.entries,
            "total_bytes": total,
        }


class TieredMemoStore:
    """Memory in front, optional disk behind; hits promote to memory."""

    def __init__(
        self,
        memory: Optional[InMemoryMemoStore] = None,
        disk: Optional[DiskMemoStore] = None,
    ):
        self.memory = memory if memory is not None else InMemoryMemoStore()
        self.disk = disk

    def get(self, digest: str) -> Optional[bytes]:
        blob = self.memory.get(digest)
        if blob is not None:
            return blob
        if self.disk is None:
            return None
        blob = self.disk.get(digest)
        if blob is not None:
            self.memory.put(digest, blob)
        return blob

    def put(self, digest: str, blob: bytes) -> None:
        self.memory.put(digest, blob)
        if self.disk is not None:
            self.disk.put(digest, blob)
