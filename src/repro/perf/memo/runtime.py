"""The memoization runtime: fault-plane policy, lookup/store, verify.

:class:`SegmentMemo` is the object campaign runners, the parallel
engine, and the service supervisor share. It owns three decisions:

- **whether a segment is cacheable at all** — via
  :func:`ambient_fault_digest`: an ambient fault plane whose injectors
  can perturb segment-internal execution makes results depend on global
  dispatch order, which no per-segment key can capture, so the memo
  bypasses (computes without consulting or populating) rather than
  cache a lie. Service-dispatch-level injectors (worker crash/hang,
  snapshot corruption) never reach segment internals and are keyed by
  their full seeded schedule instead;
- **byte-identity on the hit path** — stored values are the canonical
  JSON of the whole segment outcome (record, exported obs state, hence
  traces and checkpoint content), and the miss path round-trips its
  freshly computed outcome through the same serialization, so hit and
  miss are indistinguishable downstream;
- **integrity sampling** — ``verify_fraction`` of hits (chosen
  deterministically from the key digest, never from ambient entropy)
  are recomputed and byte-compared; divergence raises
  :class:`~repro.errors.MemoIntegrityError`.

Metric discipline: ``memo.*`` metrics are recorded in the *consulting*
process's default registry — never inside the isolated registries whose
exported state gets cached — so cached outcomes, reports, and
checkpoints carry no memo metrics and stay byte-comparable against
uncached runs.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Type

from repro import faults, obs
from repro.errors import MemoIntegrityError
from repro.perf.memo.key import (
    SegmentKey,
    campaign_key,
    canonical_json,
    digest_of,
    payload_key,
)
from repro.perf.memo.store import (
    DEFAULT_MEMORY_BUDGET,
    DiskMemoStore,
    InMemoryMemoStore,
    TieredMemoStore,
)

__all__ = [
    "SAFE_AMBIENT_EVENTS",
    "ambient_fault_digest",
    "SegmentMemo",
    "build_memo",
]

#: Fault-plane events that fire at service *dispatch* level, outside any
#: segment computation: they change which worker runs a segment and how
#: often, never what the segment computes. Ambient injectors subscribed
#: only to these stay cacheable (keyed by their seeded schedule); any
#: other subscription forces a cache bypass.
SAFE_AMBIENT_EVENTS = frozenset({"service.segment", "service.snapshot_attach"})


def ambient_fault_digest() -> Optional[str]:
    """Fault-schedule key component for the current default plane.

    Returns ``""`` when the plane is disarmed or empty (no injected
    faults to key), a schedule digest when every armed injector is
    dispatch-level with a reproducible seeded schedule, and ``None`` —
    meaning *bypass the cache* — when any injector can reach
    segment-internal events or the schedule has no recorded seed.

    Segments that install their **own** plane internally (the chaos
    scenarios seed one from ``derive_seed(segment_seed, "faults")`` and
    always uninstall it) are unaffected: their schedule is a pure
    function of the segment seed already in the key, which is what makes
    fault-armed chaos segments cacheable with identical fault messages.
    """
    plane = faults.get_plane()
    if not plane.armed:
        return ""
    injectors = plane.injectors
    if not injectors:
        return ""
    for injector in injectors:
        if not set(injector.events) <= SAFE_AMBIENT_EVENTS:
            return None
    token = plane.schedule_token()
    if token is None:
        return None
    return digest_of(token)


class SegmentMemo:
    """A shared content-addressed segment-result cache.

    One instance serves a whole campaign run, worker pool, or service
    process. Thread-safety is inherited from the store tiers (dict and
    file operations); cross-process sharing goes through the disk tier's
    atomic append-only files.

    ``fault_digest`` pins the fault-schedule key component at
    construction (used when a worker rebuilds a memo from a shipped
    payload — the parent's ambient decision must travel with the work,
    not be re-derived against the worker's own plane). ``None`` means
    "consult the live ambient plane per key build".
    """

    def __init__(
        self,
        store: Optional[TieredMemoStore] = None,
        *,
        verify_fraction: float = 0.0,
        fault_digest: Optional[str] = None,
    ):
        self._store = store if store is not None else TieredMemoStore()
        self.verify_fraction = float(verify_fraction)
        self._fault_digest_override = fault_digest
        #: Plain counters for programmatic gates (bench hit-rate checks)
        #: independent of the process-wide obs registry.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bypasses = 0
        self.verified = 0

    @property
    def disk_directory(self) -> Optional[str]:
        """Path of the shared disk tier, for shipping to workers."""
        disk = self._store.disk
        return str(disk.directory) if disk is not None else None

    # -- key building ------------------------------------------------------
    def fault_digest(self) -> Optional[str]:
        """The fault key component in force (override or live ambient)."""
        if self._fault_digest_override is not None:
            return self._fault_digest_override
        return ambient_fault_digest()

    def payload_key(self, payload: Mapping[str, Any]) -> Optional[SegmentKey]:
        """Key for a ``run_segment_task`` payload; ``None`` = bypass."""
        digest = self.fault_digest()
        if digest is None:
            return None
        return payload_key(payload, digest)

    def campaign_key(
        self,
        *,
        name: str,
        config: Mapping[str, Any],
        seed: int,
        index: int,
        max_retries: int,
        retryable: Sequence[Type[BaseException]],
    ) -> Optional[SegmentKey]:
        """Key for a serial-runner segment; ``None`` = bypass."""
        digest = self.fault_digest()
        if digest is None:
            return None
        return campaign_key(
            name=name,
            config=config,
            seed=seed,
            index=index,
            max_retries=max_retries,
            retryable=retryable,
            fault_digest=digest,
        )

    # -- accounting --------------------------------------------------------
    def note_bypass(self, campaign: str) -> None:
        """Count a segment that computed uncached (fault-plane bypass)."""
        self.bypasses += 1
        obs.inc("memo.misses", campaign=campaign, reason="bypass")

    def _record_bytes(self) -> None:
        obs.set_gauge(
            "memo.bytes", self._store.memory.total_bytes, tier="memory"
        )
        if self._store.disk is not None:
            obs.set_gauge(
                "memo.bytes", self._store.disk.total_bytes, tier="disk"
            )

    def _should_verify(self, digest: str) -> bool:
        """Deterministic sampling: the key digest is the coin."""
        if self.verify_fraction <= 0.0:
            return False
        if self.verify_fraction >= 1.0:
            return True
        return int(digest[:8], 16) / 2**32 < self.verify_fraction

    # -- cache protocol ----------------------------------------------------
    def lookup(
        self,
        key: SegmentKey,
        *,
        campaign: str,
        recompute: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Return the cached outcome for ``key``, or ``None`` on miss.

        On a sampled hit (``verify_fraction``) with a ``recompute``
        callable available, the segment is recomputed and its canonical
        bytes compared against the stored entry;
        :class:`MemoIntegrityError` on divergence.
        """
        digest = key.digest()
        blob = self._store.get(digest)
        if blob is None:
            self.misses += 1
            obs.inc("memo.misses", campaign=campaign, reason="absent")
            return None
        if recompute is not None and self._should_verify(digest):
            self.verified += 1
            obs.inc("memo.verify.recomputed", campaign=campaign)
            fresh = canonical_json(recompute()).encode("utf-8")
            if fresh != blob:
                raise MemoIntegrityError(
                    f"memoized segment {digest[:16]} diverged from "
                    f"recomputation in campaign {campaign!r}: stored "
                    f"{len(blob)} bytes != recomputed {len(fresh)} bytes "
                    "or content differs",
                    key=digest,
                )
        self.hits += 1
        obs.inc("memo.hits", campaign=campaign)
        outcome: Dict[str, Any] = json.loads(blob)
        return outcome

    def store(
        self, key: SegmentKey, outcome: Dict[str, Any], *, campaign: str
    ) -> Dict[str, Any]:
        """Publish a computed outcome; returns its canonical round-trip.

        Only successful outcomes are cached — failures are rare,
        deterministic to recompute, and excluding them keeps poisoned
        entries (a segment that failed for environmental reasons)
        impossible. The returned dict is the JSON round-trip of the
        input, so the miss path hands downstream code byte-identical
        structures to a future hit.
        """
        blob = canonical_json(outcome).encode("utf-8")
        if outcome.get("ok", False):
            self._store.put(key.digest(), blob)
            self.stores += 1
            obs.inc("memo.stores", campaign=campaign)
            self._record_bytes()
        roundtrip: Dict[str, Any] = json.loads(blob)
        return roundtrip

    def run(
        self,
        key: Optional[SegmentKey],
        *,
        campaign: str,
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Lookup-or-compute-and-store; handles ``key is None`` bypass."""
        if key is None:
            self.note_bypass(campaign)
            return compute()
        cached = self.lookup(key, campaign=campaign, recompute=compute)
        if cached is not None:
            return cached
        return self.store(key, compute(), campaign=campaign)


def build_memo(
    memo_dir: Optional[str] = None,
    *,
    verify_fraction: float = 0.0,
    max_bytes: int = DEFAULT_MEMORY_BUDGET,
    fault_digest: Optional[str] = None,
) -> SegmentMemo:
    """CLI-facing constructor: memory tier always, disk tier if a dir."""
    disk = DiskMemoStore(memo_dir) if memo_dir is not None else None
    store = TieredMemoStore(InMemoryMemoStore(max_bytes=max_bytes), disk)
    return SegmentMemo(
        store, verify_fraction=verify_fraction, fault_digest=fault_digest
    )
