"""Live simulation at the paper's hardware scale (multi-GB modules).

The ASPLOS'19 prototypes are an 8 GiB i7-6700 desktop and a 128 GiB Xeon
server; until the sparse DRAM store and the frontier walker landed, the
live attack simulations ran only on scaled-down 16-64 MiB modules and
multi-GB geometries were reachable solely through the closed-form timing
model. This module boots a real :class:`~repro.kernel.kernel.Kernel` on a
paper-scale geometry (128 KiB rows, N=512 cell interleave) and runs the
*live* Algorithm 1 brute force plus the Drammer-style templating attack
against it, reporting wall-clock plus residency so the bench suite can
gate the whole path on a memory budget.

Two properties make this affordable:

- :class:`~repro.dram.module.DramModule` materializes rows on first
  write only, so an idle multi-GB module costs a dict and whatever the
  boot + attack actually touched (``resident_rows * row_bytes``), and
- :class:`~repro.dram.cells.CellTypeMap` stores its layout procedurally,
  so typing 65536 rows allocates nothing row-proportional.

``profile_cells`` stays off: the boot-time cell profiler sweeps every row
densely — the paper runs that once per module, offline (Section 2.2) —
and it would materialize the whole module, defeating the sparse store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.attacks.algorithm1 import CtaBruteForceAttack
from repro.attacks.templating import TemplatingAttack
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.errors import ConfigurationError
from repro.kernel.cta import CtaConfig
from repro.kernel.kernel import Kernel, KernelConfig
from repro.units import DEFAULT_CELL_INTERLEAVE_ROWS, GIB, KIB, MIB

__all__ = ["PaperScaleReport", "make_paperscale_kernel", "run_paperscale_campaign"]

#: Smallest geometry this module accepts as "paper scale".
MIN_TOTAL_BYTES = 2 * GIB

#: The paper's row size (desktop and server prototypes both use 128 KiB).
PAPER_ROW_BYTES = 128 * KIB


@dataclass(frozen=True)
class PaperScaleReport:
    """Outcome and cost accounting of one paper-scale live campaign."""

    total_bytes: int
    boot_s: float
    algorithm1_s: float
    templating_s: float
    hammer_rounds: int
    flips_induced: int
    pointer_observations: int
    monotonic_observations: int
    algorithm1_outcome: str
    templating_outcome: str
    #: What the *complete* Algorithm 1 sweep would cost on real hardware
    #: (the closed-form Section 5 estimate the live run truncates).
    full_sweep_modeled_s: float
    resident_rows: int
    resident_bytes: int

    @property
    def resident_fraction(self) -> float:
        """Materialized bytes / simulated capacity (sparseness witness)."""
        return self.resident_bytes / self.total_bytes if self.total_bytes else 0.0


def make_paperscale_kernel(
    total_bytes: int = MIN_TOTAL_BYTES,
    ptp_bytes: int = 32 * MIB,
    multilevel: bool = True,
) -> Kernel:
    """Boot a CTA kernel on a paper-scale module.

    Uses the paper's 128 KiB rows and N=512 true/anti interleave, a
    32 MiB ZONE_PTP (the common-case deployment size), and the Section 7
    multi-level zones by default. ``profile_cells`` is forced off — see
    the module docstring.
    """
    if total_bytes < MIN_TOTAL_BYTES:
        raise ConfigurationError(
            f"paper-scale boot wants >= {MIN_TOTAL_BYTES} bytes, got {total_bytes}"
        )
    config = KernelConfig(
        total_bytes=total_bytes,
        row_bytes=PAPER_ROW_BYTES,
        num_banks=8,
        cell_interleave_rows=DEFAULT_CELL_INTERLEAVE_ROWS,
        cta=CtaConfig(ptp_bytes=ptp_bytes, multilevel=multilevel),
        profile_cells=False,
    )
    return Kernel(config)


def run_paperscale_campaign(
    total_bytes: int = MIN_TOTAL_BYTES,
    ptp_bytes: int = 32 * MIB,
    seed: int = 20_260_808,
    max_target_pages: int = 1,
    spray_mappings: int = 24,
    template_buffer_bytes: int = 1 * MIB,
    stats: FlipStatistics = FlipStatistics(p_vulnerable=1e-4, p_with_leak=0.998),
) -> PaperScaleReport:
    """Boot a multi-GB world and run both live attacks against it.

    Algorithm 1 runs truncated (``max_target_pages`` outer iterations —
    the full sweep is priced separately by the timing model) but *live*:
    every ZONE_PTP row is actually hammered through the payload pipeline
    and every corrupted PTE pointer is observed. The templating attack
    then runs its full template/massage/replay chain; under CTA it must
    report ``blocked``.
    """
    start = time.perf_counter()
    kernel = make_paperscale_kernel(total_bytes=total_bytes, ptp_bytes=ptp_bytes)
    attacker = kernel.create_process()
    hammer = RowHammerModel(kernel.module, stats, seed=seed)
    boot_s = time.perf_counter() - start

    algo = CtaBruteForceAttack(kernel=kernel, hammer=hammer)
    start = time.perf_counter()
    algo_result = algo.run(
        attacker, max_target_pages=max_target_pages, spray_mappings=spray_mappings
    )
    algorithm1_s = time.perf_counter() - start

    templating = TemplatingAttack(kernel=kernel, hammer=hammer)
    start = time.perf_counter()
    templating_result = templating.run(
        attacker, template_buffer_bytes=template_buffer_bytes
    )
    templating_s = time.perf_counter() - start

    monotonic = sum(1 for o in algo.observations if o.monotonic)
    module = kernel.module
    return PaperScaleReport(
        total_bytes=total_bytes,
        boot_s=boot_s,
        algorithm1_s=algorithm1_s,
        templating_s=templating_s,
        hammer_rounds=algo_result.hammer_rounds + templating_result.hammer_rounds,
        flips_induced=algo_result.flips_induced + templating_result.flips_induced,
        pointer_observations=len(algo.observations),
        monotonic_observations=monotonic,
        algorithm1_outcome=algo_result.outcome.value,
        templating_outcome=templating_result.outcome.value,
        full_sweep_modeled_s=algo.full_sweep_modeled_time_s(),
        resident_rows=module.resident_rows,
        resident_bytes=module.resident_rows * module.geometry.row_bytes,
    )
