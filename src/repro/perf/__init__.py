"""Performance-evaluation harness (paper Section 6.3 / Table 4).

The paper runs SPEC CPU2006 and Phoronix on two Linux prototypes and
finds no measurable overhead from CTA. Our substitute: synthetic
workload profiles with each benchmark's memory-behaviour character
(footprint, mapping churn, locality), executed against the simulated
kernel with and without CTA, timing the allocator/paging path that the
18-line patch touches.
"""

from repro.perf.workloads import PHORONIX_WORKLOADS, SPEC_WORKLOADS, WorkloadProfile
from repro.perf.runner import PerfResult, metric_deltas, run_workload, compare_cta_overhead
from repro.perf.report import OverheadRow, format_result_metrics, table4_report

__all__ = [
    "OverheadRow",
    "PHORONIX_WORKLOADS",
    "PerfResult",
    "SPEC_WORKLOADS",
    "WorkloadProfile",
    "compare_cta_overhead",
    "format_result_metrics",
    "metric_deltas",
    "run_workload",
    "table4_report",
]
