"""Workload execution and CTA-overhead measurement.

Runs a :class:`~repro.perf.workloads.WorkloadProfile` against a simulated
kernel, exercising exactly the paths the 18-line patch touches: page
allocation (including ``pte_alloc_one``), demand faults, table walks,
and mmap/munmap churn. Wall-clock time over the kernel-operation sequence
is the overhead metric, mirroring how Table 4 compares stock and CTA
kernels on identical workloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.kernel.cta import CtaConfig
from repro.kernel.kernel import Kernel, KernelConfig
from repro.perf.workloads import WorkloadProfile
from repro.units import MIB, PAGE_SIZE


#: Base VA for workload mappings, clear of the default mmap region.
WORKLOAD_BASE = 0x0000_7000_0000

#: Virtual stride between workload regions (one page table each).
REGION_STRIDE = 2 * MIB


@dataclass
class PerfResult:
    """Measured outcome of one workload run.

    ``metrics`` holds the :mod:`repro.obs` default-registry series that
    changed during the run, as deltas (see :func:`metric_deltas`) — the
    denominators behind the wall-clock number: buddy churn, TLB traffic,
    walk counts, per-zone allocations.
    """

    workload: str
    cta_enabled: bool
    elapsed_s: float
    page_allocs: int
    pte_allocs: int
    demand_faults: int
    tlb_hit_rate: float
    page_table_bytes: int
    metrics: Dict[str, float] = field(default_factory=dict)


def metric_deltas(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Non-zero per-series change between two registry snapshots.

    Gauges report their final value change; histogram ``.min``/``.max``
    series are dropped (a delta of an extremum is meaningless).
    """
    deltas: Dict[str, float] = {}
    for name, value in after.items():
        if name.endswith(".min") or name.endswith(".max"):
            continue
        change = value - before.get(name, 0.0)
        if change:
            deltas[name] = change
    return deltas


def make_perf_kernel(cta: bool, total_bytes: int = 64 * MIB) -> Kernel:
    """A kernel sized for perf runs, with or without the defense.

    ``profile_cells`` is off: the one-time boot profiling is not part of
    steady-state performance (the paper runs it once per module, offline).
    """
    config = KernelConfig(
        total_bytes=total_bytes,
        row_bytes=64 * 1024,
        num_banks=4,
        cell_interleave_rows=32,
        cta=CtaConfig(ptp_bytes=4 * MIB) if cta else None,
        profile_cells=False,
    )
    return Kernel(config)


def _page_vas(vma, num_pages: int) -> np.ndarray:
    """The VA of each of the first ``num_pages`` pages of a VMA."""
    return vma.start + PAGE_SIZE * np.arange(num_pages, dtype=np.int64)


def run_workload(
    kernel: Kernel, profile: WorkloadProfile, process=None,
    slow_reference: bool = False,
) -> PerfResult:
    """Execute one workload iteration; returns timing and counters.

    The map/fault, access-sweep, and churn phases run through the batched
    VM pipeline (:meth:`Kernel.mmap_touch_many`, :meth:`Mmu.load_many`);
    ``slow_reference`` (or an armed fault plane, which the batched entry
    points detect themselves) selects the per-page reference loops.
    """
    if process is None:
        process = kernel.create_process()
    allocs_before = kernel.stats.page_allocs
    pte_before = kernel.stats.pte_allocs
    faults_before = kernel.stats.demand_faults
    obs_before = obs.get_registry().snapshot()
    scalar = slow_reference or kernel.module.fault_plane_armed

    start = time.perf_counter()
    regions = []
    # Phase 1: map and fault in the working set.
    for region in range(profile.mapped_regions):
        base = WORKLOAD_BASE + region * REGION_STRIDE
        length = profile.pages_per_region * PAGE_SIZE
        if scalar:
            vma = kernel.mmap(process, length, address=base)
            for page in range(profile.pages_per_region):
                kernel.touch(process, vma.start + page * PAGE_SIZE, write=True)  # repro-lint: ignore[RL008] — slow_reference path
        else:
            vma, _ = kernel.mmap_touch_many(
                process, length, address=base, write=True
            )
        regions.append(vma)
    # Phase 2: access sweeps (translation pressure).
    for _ in range(profile.access_passes):
        for vma in regions:
            if scalar:
                for page in range(profile.pages_per_region):
                    kernel.read_virtual(process, vma.start + page * PAGE_SIZE, 8)  # repro-lint: ignore[RL008] — slow_reference path
            else:
                kernel.mmu.load_many(
                    process.cr3,
                    _page_vas(vma, profile.pages_per_region),
                    8,
                    pid=process.pid,
                )
    # Phase 3: map/unmap churn (allocator pressure).
    churn_base = WORKLOAD_BASE + profile.mapped_regions * REGION_STRIDE
    for cycle in range(profile.map_unmap_cycles):
        base = churn_base + (cycle % 8) * REGION_STRIDE
        try:
            if scalar:
                vma = kernel.mmap(process, 4 * PAGE_SIZE, address=base)
                for page in range(4):
                    kernel.touch(process, vma.start + page * PAGE_SIZE, write=True)  # repro-lint: ignore[RL008] — slow_reference path
            else:
                vma, _ = kernel.mmap_touch_many(
                    process, 4 * PAGE_SIZE, address=base, write=True
                )
            kernel.munmap(process, vma)
        except OutOfMemoryError:
            break
    # Teardown.
    for vma in regions:
        kernel.munmap(process, vma)
    elapsed = time.perf_counter() - start

    return PerfResult(
        workload=profile.name,
        cta_enabled=kernel.cta_enabled,
        elapsed_s=elapsed,
        page_allocs=kernel.stats.page_allocs - allocs_before,
        pte_allocs=kernel.stats.pte_allocs - pte_before,
        demand_faults=kernel.stats.demand_faults - faults_before,
        tlb_hit_rate=kernel.tlb.hit_rate,
        page_table_bytes=kernel.page_table_bytes(process.pid),
        metrics=metric_deltas(obs_before, obs.get_registry().snapshot()),
    )


def compare_cta_overhead(
    profile: WorkloadProfile,
    repeats: int = 3,
    total_bytes: int = 64 * MIB,
) -> float:
    """Relative CTA overhead for one workload (Table 4 cell).

    Runs the workload ``repeats`` times on a stock kernel and on a CTA
    kernel (fresh kernel per run to avoid cross-run state), taking the
    best time of each — the standard benchmark-noise reduction — and
    returns ``(cta - stock) / stock``.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    stock_best: Optional[float] = None
    cta_best: Optional[float] = None
    for _ in range(repeats):
        stock_result = run_workload(make_perf_kernel(cta=False, total_bytes=total_bytes), profile)
        cta_result = run_workload(make_perf_kernel(cta=True, total_bytes=total_bytes), profile)
        if stock_best is None or stock_result.elapsed_s < stock_best:
            stock_best = stock_result.elapsed_s
        if cta_best is None or cta_result.elapsed_s < cta_best:
            cta_best = cta_result.elapsed_s
    return (cta_best - stock_best) / stock_best
