"""Synthetic workload profiles for the Table 4 benchmarks.

Each profile captures the memory behaviour that could plausibly interact
with CTA: how much address space the program maps, how often it maps and
unmaps (page-table churn), and how widely scattered its accesses are
(page-table page count). The figures are drawn from the published
characterisations of SPEC CPU2006 memory footprints [16] and the general
character of each Phoronix test, scaled down to simulator size.

CTA only changes *page-table page* placement, so workloads differ mainly
in how many page tables they force the kernel to build and tear down —
exactly the dimension along which Table 4 finds no overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadProfile:
    """One benchmark's memory-behaviour model.

    Parameters
    ----------
    name:
        Benchmark name as it appears in Table 4.
    suite:
        "spec2006" or "phoronix".
    mapped_regions:
        Distinct 2 MiB-aligned regions the program touches (each costs a
        last-level page table).
    pages_per_region:
        Pages faulted in per region (density of each page table).
    map_unmap_cycles:
        mmap/munmap churn iterations (allocator stress).
    access_passes:
        Read/write sweeps over the mapped pages (TLB/walk stress).
    """

    name: str
    suite: str
    mapped_regions: int
    pages_per_region: int
    map_unmap_cycles: int
    access_passes: int

    def __post_init__(self) -> None:
        if self.suite not in ("spec2006", "phoronix"):
            raise ConfigurationError(f"unknown suite {self.suite!r}")
        for field_name in (
            "mapped_regions", "pages_per_region", "map_unmap_cycles", "access_passes",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be positive")

    @property
    def total_pages(self) -> int:
        """Pages the workload touches."""
        return self.mapped_regions * self.pages_per_region


#: SPEC CPU2006 rows of Table 4. Footprints follow Henning [16]:
#: mcf/gcc are the memory monsters, sjeng/libquantum run tight loops.
SPEC_WORKLOADS: Tuple[WorkloadProfile, ...] = (
    WorkloadProfile("perlbench", "spec2006", mapped_regions=24, pages_per_region=24, map_unmap_cycles=12, access_passes=2),
    WorkloadProfile("bzip2", "spec2006", mapped_regions=16, pages_per_region=48, map_unmap_cycles=4, access_passes=3),
    WorkloadProfile("gcc", "spec2006", mapped_regions=40, pages_per_region=32, map_unmap_cycles=16, access_passes=2),
    WorkloadProfile("mcf", "spec2006", mapped_regions=48, pages_per_region=56, map_unmap_cycles=2, access_passes=4),
    WorkloadProfile("gobmk", "spec2006", mapped_regions=12, pages_per_region=16, map_unmap_cycles=6, access_passes=2),
    WorkloadProfile("hmmer", "spec2006", mapped_regions=10, pages_per_region=24, map_unmap_cycles=3, access_passes=3),
    WorkloadProfile("sjeng", "spec2006", mapped_regions=8, pages_per_region=20, map_unmap_cycles=2, access_passes=2),
    WorkloadProfile("libquantum", "spec2006", mapped_regions=6, pages_per_region=32, map_unmap_cycles=2, access_passes=4),
    WorkloadProfile("h264ref", "spec2006", mapped_regions=14, pages_per_region=28, map_unmap_cycles=4, access_passes=3),
    WorkloadProfile("omnetpp", "spec2006", mapped_regions=28, pages_per_region=20, map_unmap_cycles=10, access_passes=2),
    WorkloadProfile("astar", "spec2006", mapped_regions=18, pages_per_region=24, map_unmap_cycles=5, access_passes=2),
    WorkloadProfile("xalancbmk", "spec2006", mapped_regions=32, pages_per_region=16, map_unmap_cycles=14, access_passes=2),
)

#: Phoronix rows of Table 4: more mapping churn (I/O and scripting tests),
#: plus the pure-bandwidth kernels (stream/ramspeed/cachebench).
PHORONIX_WORKLOADS: Tuple[WorkloadProfile, ...] = (
    WorkloadProfile("unpack-linux", "phoronix", mapped_regions=36, pages_per_region=8, map_unmap_cycles=24, access_passes=1),
    WorkloadProfile("postmark", "phoronix", mapped_regions=24, pages_per_region=8, map_unmap_cycles=20, access_passes=1),
    WorkloadProfile("ramspeed:INT", "phoronix", mapped_regions=20, pages_per_region=48, map_unmap_cycles=2, access_passes=5),
    WorkloadProfile("ramspeed:FP", "phoronix", mapped_regions=20, pages_per_region=48, map_unmap_cycles=2, access_passes=5),
    WorkloadProfile("stream:Copy", "phoronix", mapped_regions=16, pages_per_region=56, map_unmap_cycles=1, access_passes=6),
    WorkloadProfile("stream:Scale", "phoronix", mapped_regions=16, pages_per_region=56, map_unmap_cycles=1, access_passes=6),
    WorkloadProfile("stream:Triad", "phoronix", mapped_regions=16, pages_per_region=56, map_unmap_cycles=1, access_passes=6),
    WorkloadProfile("stream:Add", "phoronix", mapped_regions=16, pages_per_region=56, map_unmap_cycles=1, access_passes=6),
    WorkloadProfile("cachebench:Read", "phoronix", mapped_regions=8, pages_per_region=32, map_unmap_cycles=1, access_passes=8),
    WorkloadProfile("cachebench:Write", "phoronix", mapped_regions=8, pages_per_region=32, map_unmap_cycles=1, access_passes=8),
    WorkloadProfile("cachebench:Modify", "phoronix", mapped_regions=8, pages_per_region=32, map_unmap_cycles=1, access_passes=8),
    WorkloadProfile("compress-7zip", "phoronix", mapped_regions=22, pages_per_region=36, map_unmap_cycles=6, access_passes=3),
    WorkloadProfile("openssl", "phoronix", mapped_regions=6, pages_per_region=12, map_unmap_cycles=2, access_passes=4),
    WorkloadProfile("pybench", "phoronix", mapped_regions=14, pages_per_region=16, map_unmap_cycles=10, access_passes=2),
    WorkloadProfile("phpbench", "phoronix", mapped_regions=14, pages_per_region=16, map_unmap_cycles=10, access_passes=2),
)


def find_workload(name: str) -> WorkloadProfile:
    """Look a profile up by name across both suites."""
    for profile in SPEC_WORKLOADS + PHORONIX_WORKLOADS:
        if profile.name == name:
            return profile
    raise ConfigurationError(f"unknown workload {name!r}")
