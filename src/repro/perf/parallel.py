"""Process-parallel Monte-Carlo trial fan-out.

Campaign segments already run under the stateless seed contract
``derive_seed(campaign_seed, index, attempt)`` (see
:mod:`repro.faults.campaign`), which makes them order-independent: a
segment's stream depends only on its identity, never on what ran before
it. This module exploits that to fan segments out across a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
merged result **bit-identical** to a serial run:

- each worker replays :class:`~repro.faults.campaign.CampaignRunner`'s
  exact retry protocol (same derived seeds, same record shapes, same
  ``campaign.retries`` increments) for its segment;
- each worker records metrics into a fresh, isolated
  :class:`~repro.obs.Registry` and ships the structured delta back;
- the parent merges deltas **in segment-index order** — counters add,
  gauges overwrite, traces re-emit — so the final registry, the
  :class:`~repro.faults.campaign.CampaignReport`, and any checkpoint file
  all compare equal to their serial counterparts;
- checkpoints are written through the same
  :func:`~repro.faults.campaign.write_checkpoint` helper the serial
  runner uses, after the merge (one atomic write per run).

Backoff never sleeps in workers; like the serial runner's default
``sleep_fn=None``, reports account backoff from attempt counts, so the
accounting also matches.

Targets must be importable top-level callables — they are shipped to
workers as ``"module:qualname"`` strings, as are the retryable exception
types.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from importlib import import_module
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Type, Union

from repro import obs
from repro.attacks.timing import AttackTimingModel
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.errors import ConfigurationError, TransientFaultError, WorkerCrashError
from repro.faults.campaign import (
    CampaignBudget,
    CampaignReport,
    load_checkpoint_state,
    write_checkpoint,
)
from repro.kernel.kernel import Kernel, KernelConfig
from repro.rng import DEFAULT_SEED, derive_seed
from repro.units import GIB, MIB

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.perf.memo.key import SegmentKey
    from repro.perf.memo.runtime import SegmentMemo

__all__ = [
    "default_workers",
    "qualified_name",
    "resolve_qualified",
    "run_segment_task",
    "crashed_segment_outcome",
    "run_campaign_parallel",
    "capture_trial_snapshot",
    "probabilistic_trial",
    "montecarlo_trial",
    "run_probabilistic_trials",
]

#: Executor-level re-enqueues allowed per segment after worker deaths
#: before the segment is recorded as terminally failed.
DEFAULT_MAX_REQUEUES = 2


def default_workers() -> int:
    """Sensible worker count: one core left for the parent process."""
    return max(1, (os.cpu_count() or 2) - 1)


def qualified_name(obj: Any) -> str:
    """``"module:qualname"`` reference for a picklable top-level object."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ConfigurationError(
            f"{obj!r} is not an importable top-level callable; parallel "
            "campaigns need module-level targets"
        )
    return f"{module}:{qualname}"


def resolve_qualified(reference: str) -> Any:
    """Import the object a :func:`qualified_name` reference points at."""
    module_name, _, qualname = reference.partition(":")
    if not module_name or not qualname:
        raise ConfigurationError(f"malformed qualified reference {reference!r}")
    try:
        target: Any = import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import {module_name!r} for {reference!r}: {exc}"
        ) from None
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise ConfigurationError(
                f"{module_name!r} has no attribute path {qualname!r}"
            ) from None
    return target


def run_segment_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one segment in a worker (or inline) with an isolated registry.

    Mirrors ``CampaignRunner._run_segment``: same
    ``derive_seed(campaign_seed, index, attempt)`` streams, same
    completed/failed record shapes, same ``campaign.retries`` counting —
    so a merged parallel run is indistinguishable from a serial one.

    Also the unit of work the campaign service's supervised workers
    execute: the payload is a plain JSON-able dict, so it can cross a
    process boundary, be re-enqueued after a worker death, and always
    reproduce the same outcome (the seed contract depends only on
    ``(seed, index, attempt)``, never on which worker ran it).

    A ``payload["memo"]`` dict (``{"dir", "verify", "fault_digest"}``,
    attached by the parent only for pooled runs with a disk-backed
    memo) makes the worker consult and populate the shared on-disk
    store around the computation: a segment re-enqueued after a worker
    crash finds the bytes its first incarnation published. The
    rebuilt memo pins the parent's fault-schedule decision via
    ``fault_digest`` instead of probing the worker's own (empty) plane;
    ``memo.*`` metrics counted here land in the worker's transient
    default registry — never in the isolated registry whose exported
    state gets cached — and are intentionally discarded with it.
    """
    memo_info = payload.get("memo")
    if memo_info:
        from repro.perf.memo.runtime import build_memo

        memo = build_memo(
            memo_info["dir"],
            verify_fraction=memo_info.get("verify", 0.0),
            fault_digest=memo_info.get("fault_digest", ""),
        )
        return memo.run(
            memo.payload_key(payload),
            campaign=payload["name"],
            compute=partial(_segment_outcome, payload),
        )
    return _segment_outcome(payload)


def _segment_outcome(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The uncached segment computation behind :func:`run_segment_task`."""
    target = resolve_qualified(payload["target"])
    retryable: Tuple[Type[BaseException], ...] = tuple(
        resolve_qualified(reference) for reference in payload["retryable"]
    )
    index = payload["index"]
    name = payload["name"]
    campaign_seed = payload["seed"]
    max_retries = payload["max_retries"]
    kwargs = payload["kwargs"]
    previous = obs.get_registry()
    registry = obs.set_registry(obs.Registry())
    try:
        attempt = 0
        while True:
            segment_seed = derive_seed(campaign_seed, index, attempt)
            try:
                result = target(index, segment_seed, **kwargs)
            except retryable as exc:
                attempt += 1
                if attempt > max_retries:
                    record: Dict[str, Any] = {
                        "attempts": attempt,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                    }
                    ok = False
                    break
                obs.inc("campaign.retries", campaign=name)
                continue
            record = {"attempts": attempt + 1, "result": result}
            ok = True
            break
    finally:
        obs.set_registry(previous)
    return {
        "index": index,
        "ok": ok,
        "record": record,
        "obs_state": registry.export_state(),
    }


#: Backwards-compatible alias (pre-service name).
_run_segment_task = run_segment_task


def crashed_segment_outcome(index: int, message: str) -> Dict[str, Any]:
    """Terminal failed-segment outcome for a segment lost to worker death.

    Shaped exactly like a :func:`run_segment_task` failure record so the
    merge loop, checkpoints, and reports need no special case. The empty
    obs delta reflects reality: the segment never ran to completion
    anywhere, so it contributed no metrics.
    """
    return {
        "index": index,
        "ok": False,
        "record": {
            "attempts": 1,
            "error": message,
            "error_type": WorkerCrashError.__name__,
        },
        "obs_state": obs.Registry().export_state(),
    }


def _run_payloads_pooled(
    payloads: List[Dict[str, Any]],
    worker_count: int,
    *,
    campaign: str,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
) -> Dict[int, Dict[str, Any]]:
    """Fan payloads across a process pool, surviving worker death.

    A worker process dying (OOM kill, segfault, ``os._exit`` in a
    target) surfaces as :class:`BrokenProcessPool` on every in-flight
    future. Instead of propagating that raw executor exception, this
    classifies the death into the retryable taxonomy: the pool is
    rebuilt (counted as ``service.worker_restarts``), segments without
    an outcome are re-enqueued — the stateless seed contract guarantees
    a re-run from attempt 0 is byte-identical — and a segment that
    exhausts its requeue budget is recorded as a failed segment with
    ``error_type: "WorkerCrashError"`` rather than crashing the run.
    """
    outcomes: Dict[int, Dict[str, Any]] = {}
    requeues: Dict[int, int] = {}
    pending = list(payloads)
    while pending:
        pool_size = min(worker_count, len(pending))
        broken = False
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(run_segment_task, payload): payload for payload in pending
            }
            try:
                for future in as_completed(futures):
                    outcome = future.result()
                    outcomes[outcome["index"]] = outcome
            except BrokenProcessPool:
                broken = True
        if not broken:
            break
        obs.inc("service.worker_restarts", campaign=campaign, scope="pool")
        lost = [p for p in pending if p["index"] not in outcomes]
        pending = []
        for payload in lost:
            index = payload["index"]
            requeues[index] = requeues.get(index, 0) + 1
            if requeues[index] > max_requeues:
                outcomes[index] = crashed_segment_outcome(
                    index,
                    f"worker process died running segment {index} "
                    f"({max_requeues} re-enqueues exhausted)",
                )
            else:
                pending.append(payload)
    return outcomes


def run_campaign_parallel(
    *,
    name: str,
    target: Union[str, Callable[..., Dict[str, Any]]],
    num_segments: int,
    seed: Optional[int] = None,
    kwargs: Optional[Dict[str, Any]] = None,
    config: Optional[Dict[str, Any]] = None,
    workers: Optional[int] = None,
    max_retries: int = 3,
    backoff_base_s: float = 0.5,
    retryable: Tuple[Type[BaseException], ...] = (TransientFaultError,),
    checkpoint_path: Optional[Union[str, Path]] = None,
    budget: Optional[CampaignBudget] = None,
    resume: bool = False,
    memo: Optional["SegmentMemo"] = None,
) -> CampaignReport:
    """Run a campaign's segments across worker processes; merge serially.

    ``target`` is ``(index, seed, **kwargs) -> result dict`` and must be
    an importable top-level callable (or its ``"module:qualname"``
    string). Segment budgets apply to this call like the serial runner's;
    wall-clock budgets are rejected — they depend on execution order,
    which parallel fan-out does not preserve.

    With a ``memo``, the parent consults the cache before fanning out
    (hits skip dispatch entirely) and publishes fresh outcomes after the
    merge-ordering sort; pooled workers additionally consult/populate a
    shared disk tier directly so crash re-enqueues hit work a dead
    worker already published. Exactly-once recording is preserved: the
    store is append-only and keyed by content, so duplicate publication
    of the same outcome is an idempotent no-op.
    """
    if num_segments < 1:
        raise ConfigurationError(f"num_segments {num_segments} must be >= 1")
    if max_retries < 0:
        raise ConfigurationError(f"max_retries {max_retries} must be >= 0")
    if budget is not None and budget.max_wall_s is not None:
        raise ConfigurationError(
            "wall-clock budgets require the serial CampaignRunner"
        )
    campaign_seed = DEFAULT_SEED if seed is None else int(seed)
    campaign_config: Dict[str, Any] = dict(config or {})
    target_reference = target if isinstance(target, str) else qualified_name(target)
    resolve_qualified(target_reference)  # fail fast in the parent
    retryable_references = [qualified_name(exc_type) for exc_type in retryable]

    completed: Dict[int, Dict[str, Any]] = {}
    failed: Dict[int, Dict[str, Any]] = {}
    if resume:
        if checkpoint_path is None:
            raise ConfigurationError("resume requested without a checkpoint_path")
        completed, failed = load_checkpoint_state(
            checkpoint_path,
            name=name,
            seed=campaign_seed,
            num_segments=num_segments,
            config=campaign_config,
        )

    pending = [
        index
        for index in range(num_segments)
        if index not in completed and index not in failed
    ]
    if budget is not None and budget.max_segments is not None:
        pending = pending[: budget.max_segments]
    payloads: List[Dict[str, Any]] = [
        {
            "target": target_reference,
            "retryable": retryable_references,
            "index": index,
            "name": name,
            "seed": campaign_seed,
            "max_retries": max_retries,
            "kwargs": dict(kwargs or {}),
        }
        for index in pending
    ]

    outcomes: Dict[int, Dict[str, Any]] = {}
    memo_keys: Dict[int, "SegmentKey"] = {}
    if memo is not None and payloads:
        fault_digest = memo.fault_digest()
        uncached: List[Dict[str, Any]] = []
        for payload in payloads:
            key = memo.payload_key(payload)
            if key is None:
                memo.note_bypass(name)
                uncached.append(payload)
                continue
            cached = memo.lookup(
                key, campaign=name, recompute=partial(_segment_outcome, payload)
            )
            if cached is not None:
                outcomes[cached["index"]] = cached
            else:
                memo_keys[payload["index"]] = key
                uncached.append(payload)
        payloads = uncached

    worker_count = default_workers() if workers is None else int(workers)
    if payloads:
        if worker_count <= 1:
            for payload in payloads:
                outcome = run_segment_task(payload)
                outcomes[outcome["index"]] = outcome
        else:
            if memo is not None and memo.disk_directory is not None:
                # Pooled workers consult/populate the shared disk tier
                # themselves; inline runs skip this (the parent already
                # consulted above, and worker-side counting would land
                # in the parent registry twice).
                for payload in payloads:
                    if payload["index"] in memo_keys:
                        payload["memo"] = {
                            "dir": memo.disk_directory,
                            "verify": memo.verify_fraction,
                            "fault_digest": memo_keys[
                                payload["index"]
                            ].fault_digest,
                        }
            outcomes = _run_payloads_pooled(
                payloads, worker_count, campaign=name
            )

    if memo is not None:
        for index, key in sorted(memo_keys.items()):
            if index in outcomes:
                # The result-cache publisher, not a per-address VM store.
                outcomes[index] = memo.store(  # repro-lint: ignore[RL008]
                    key, outcomes[index], campaign=name
                )

    registry = obs.get_registry()
    for index in sorted(outcomes):
        outcome = outcomes[index]
        registry.merge_state(outcome["obs_state"])
        if outcome["ok"]:
            completed[index] = outcome["record"]
            obs.inc("campaign.segments", campaign=name, status="completed")
        else:
            failed[index] = outcome["record"]
            obs.inc("campaign.segments", campaign=name, status="failed")

    if checkpoint_path is not None:
        write_checkpoint(
            checkpoint_path,
            name=name,
            seed=campaign_seed,
            num_segments=num_segments,
            config=campaign_config,
            completed=completed,
            failed=failed,
        )
    interrupted = (len(completed) + len(failed)) < num_segments
    return CampaignReport(
        name=name,
        seed=campaign_seed,
        num_segments=num_segments,
        config=campaign_config,
        backoff_base_s=backoff_base_s,
        completed=completed,
        failed=failed,
        interrupted=interrupted,
    )


def _trial_kernel(total_bytes: int, row_bytes: int) -> Kernel:
    """The stock kernel every probabilistic trial runs against."""
    return Kernel(
        KernelConfig(
            total_bytes=total_bytes,
            row_bytes=row_bytes,
            num_banks=2,
            cell_interleave_rows=32,
        )
    )


def capture_trial_snapshot(
    total_bytes: int = 16 * MIB,
    row_bytes: int = 16 * 1024,
    spray_mappings: int = 16,
):
    """Freeze a booted + sprayed trial world for warm-started trials.

    The spray (:meth:`ProbabilisticPteAttack.prepare`) consumes no hammer
    randomness, so it is identical for every trial seed — exactly the
    setup work :func:`probabilistic_trial` otherwise repeats per segment.
    Returns a :class:`~repro.perf.snapshot.SimulatorSnapshot` whose extra
    state carries the attacker pid and the sprayed/checked address lists.
    """
    from repro.attacks.probabilistic import ProbabilisticPteAttack
    from repro.perf.snapshot import SimulatorSnapshot

    def extra_fn(kernel: Kernel) -> Dict[str, Any]:
        # The hammer is unused during prepare(); trials build their own,
        # seeded per segment, against the materialized module.
        attack = ProbabilisticPteAttack(
            kernel=kernel,
            hammer=RowHammerModel(kernel.module, seed=0),
            timing=AttackTimingModel(),
        )
        attacker = kernel.create_process()
        attack.prepare(attacker, spray_mappings=spray_mappings)
        return {
            "pid": attacker.pid,
            "sprayed_vas": list(attack.sprayed_vas),
            "checked_vas": list(attack.checked_vas),
        }

    return SimulatorSnapshot.capture(
        lambda: _trial_kernel(total_bytes, row_bytes), extra_fn
    )


def probabilistic_trial(
    index: int,
    seed: int,
    total_bytes: int = 16 * MIB,
    row_bytes: int = 16 * 1024,
    spray_mappings: int = 16,
    max_rounds: int = 1,
    p_vulnerable: float = 3e-2,
    p_with_leak: float = 0.5,
    snapshot: Optional[str] = None,
) -> Dict[str, Any]:
    """One self-contained probabilistic-attack trial (picklable target).

    Builds a fresh stock kernel + hammer seeded from the segment seed and
    runs one Drammer-style spray; the result dict is JSON-checkpointable.
    ``index`` is accepted for the segment-fn signature but the trial's
    stream depends only on ``seed``.

    ``snapshot`` names a shared-memory world from
    :func:`capture_trial_snapshot` (captured with the same kwargs): the
    trial then attaches copy-on-write instead of replaying boot + spray,
    merging the captured obs state so reports, checkpoints, and metric
    totals stay byte-identical to a cold trial.
    """
    del index
    from repro.attacks.probabilistic import ProbabilisticPteAttack

    stats = FlipStatistics(p_vulnerable=p_vulnerable, p_with_leak=p_with_leak)
    hammer_seed = derive_seed(seed, "hammer")
    if snapshot is not None:
        from repro.perf.snapshot import SimulatorSnapshot

        kernel, extra = SimulatorSnapshot.attach_cached(snapshot).materialize()
        attacker = kernel.processes[extra["pid"]]
        attack = ProbabilisticPteAttack(
            kernel=kernel,
            hammer=RowHammerModel(kernel.module, stats=stats, seed=hammer_seed),
            timing=AttackTimingModel(),
            sprayed_vas=list(extra["sprayed_vas"]),
            checked_vas=list(extra["checked_vas"]),
        )
        result = attack.execute(attacker, max_rounds=max_rounds)
    else:
        kernel = _trial_kernel(total_bytes, row_bytes)
        hammer = RowHammerModel(
            kernel.module, stats=stats, seed=hammer_seed
        )
        attack = ProbabilisticPteAttack(
            kernel=kernel, hammer=hammer, timing=AttackTimingModel()
        )
        result = attack.run(
            kernel.create_process(),
            spray_mappings=spray_mappings,
            max_rounds=max_rounds,
        )
    return {
        "outcome": result.outcome.value,
        "hammer_rounds": result.hammer_rounds,
        "flips": result.flips_induced,
        "ptes_checked": result.ptes_checked,
        "faults": {},
    }


def montecarlo_trial(
    index: int,
    seed: int,
    trials: int = 1,
    total_bytes: int = 8 * GIB,
    ptp_bytes: int = 32 * MIB,
    p_vulnerable: float = 1e-4,
    p_up: float = 0.5,
) -> Dict[str, Any]:
    """One analytical Monte-Carlo segment (cheap importable service target).

    Wraps :func:`repro.analysis.montecarlo.simulate_exploitable_ptes` so
    the campaign service has a fast, pure-computation workload for
    overload and fault-injection scenarios: no kernel boot, no snapshot,
    milliseconds per segment. The stream depends only on ``seed``;
    ``index`` is accepted for the segment-fn signature.
    """
    del index
    from repro.analysis.montecarlo import simulate_exploitable_ptes

    result = simulate_exploitable_ptes(
        total_bytes=total_bytes,
        ptp_bytes=ptp_bytes,
        p_vulnerable=p_vulnerable,
        p_up=p_up,
        trials=trials,
        seed=seed,
    )
    return {
        "trials": result.trials,
        "num_ptes": result.num_ptes,
        "exploitable_count": result.exploitable_count,
        "expected_per_system": result.expected_per_system,
        "faults": {},
    }


def run_probabilistic_trials(
    trials: int,
    seed: Optional[int] = None,
    workers: int = 1,
    checkpoint_path: Optional[Union[str, Path]] = None,
    budget: Optional[CampaignBudget] = None,
    resume: bool = False,
    warm_start: bool = False,
    memo: Optional["SegmentMemo"] = None,
    **trial_kwargs: Any,
) -> CampaignReport:
    """Run ``trials`` independent probabilistic-attack trials.

    ``workers <= 1`` uses the serial :class:`CampaignRunner` (reference
    behaviour); ``workers > 1`` fans out with
    :func:`run_campaign_parallel`. Both produce identical reports,
    checkpoints and obs totals for the same seed.

    ``warm_start`` captures one boot + spray world up front
    (:func:`capture_trial_snapshot`) and has every trial attach to it
    copy-on-write instead of replaying setup. The snapshot name travels
    in the segment kwargs only — never in ``config`` — so checkpoint
    files stay byte-identical to cold runs.

    ``memo`` threads a :class:`~repro.perf.memo.runtime.SegmentMemo`
    through whichever engine runs: a repeated identical run replays from
    the cache instead of recomputing, byte-identically.
    """
    config = {"trials": int(trials), **{k: trial_kwargs[k] for k in sorted(trial_kwargs)}}
    snapshot = None
    run_kwargs = dict(trial_kwargs)
    if warm_start:
        snapshot = capture_trial_snapshot(
            **{
                k: trial_kwargs[k]
                for k in ("total_bytes", "row_bytes", "spray_mappings")
                if k in trial_kwargs
            }
        )
        run_kwargs["snapshot"] = snapshot.name
    try:
        if workers <= 1:
            from repro.faults.campaign import CampaignRunner

            def segment_fn(index: int, segment_seed: int, attempt: int) -> Dict[str, Any]:
                return probabilistic_trial(index, segment_seed, **run_kwargs)

            runner = CampaignRunner(
                name="probabilistic-trials",
                segment_fn=segment_fn,
                num_segments=trials,
                seed=seed,
                config=config,
                budget=budget,
                checkpoint_path=checkpoint_path,
                memo=memo,
            )
            return runner.run(resume=resume)
        return run_campaign_parallel(
            name="probabilistic-trials",
            target="repro.perf.parallel:probabilistic_trial",
            num_segments=trials,
            seed=seed,
            kwargs=run_kwargs,
            config=config,
            workers=workers,
            checkpoint_path=checkpoint_path,
            budget=budget,
            resume=resume,
            memo=memo,
        )
    finally:
        if snapshot is not None:
            snapshot.release()
