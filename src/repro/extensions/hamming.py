"""Directional hamming-weight error detection (paper Section 8).

True-cell data can only lose '1's, so its hamming weight (popcount) is
monotonically non-increasing under charge-leak errors; a weight stored in
anti-cells is monotonically non-decreasing. Store the data in true-cells
and its weight in anti-cells, and *any* pure charge-leak corruption of
either side is detectable by a single popcount comparison::

    data weight fell  OR  stored weight rose  =>  mismatch  =>  detected

The scheme costs ``log2(n)`` redundancy bits per n-bit block and one
POPCNT instruction per check, and admits rare false results only through
the small against-leak flip probability (0.2%) — quantified by
:meth:`DirectionalCodec.false_negative_probability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dram.cells import CellType
from repro.dram.module import DramModule
from repro.errors import ConfigurationError, DramError


def popcount(data: bytes) -> int:
    """Hamming weight of a byte string."""
    return sum(bin(byte).count("1") for byte in data)


@dataclass(frozen=True)
class EncodedBlock:
    """A stored block: data in true-cells, weight in anti-cells."""

    data_address: int
    weight_address: int
    length: int
    original_weight: int

    @property
    def weight_bytes(self) -> int:
        """Bytes needed to store the weight (log2(8n) bits, byte aligned)."""
        bits = max(1, (self.length * 8).bit_length())
        return (bits + 7) // 8


class DirectionalCodec:
    """Encoder/decoder over one module's true/anti-cell regions."""

    def __init__(self, module: DramModule):
        if module.cell_map is None:
            raise ConfigurationError("codec requires a module with a cell map")
        self._module = module
        true_regions = module.cell_map.address_regions_of_type(CellType.TRUE)
        anti_regions = module.cell_map.address_regions_of_type(CellType.ANTI)
        if not true_regions or not anti_regions:
            raise DramError("codec needs both cell types present")
        self._true_cursor, self._true_end = true_regions[0]
        self._anti_cursor, self._anti_end = anti_regions[0]

    def encode(self, data: bytes) -> EncodedBlock:
        """Write a block and its weight to the appropriate cell regions."""
        if not data:
            raise ConfigurationError("cannot encode an empty block")
        weight = popcount(data)
        block = EncodedBlock(
            data_address=self._true_cursor,
            weight_address=self._anti_cursor,
            length=len(data),
            original_weight=weight,
        )
        if self._true_cursor + len(data) > self._true_end:
            raise DramError("true-cell region exhausted")
        if self._anti_cursor + block.weight_bytes > self._anti_end:
            raise DramError("anti-cell region exhausted")
        self._module.write(block.data_address, data)
        self._module.write(
            block.weight_address, weight.to_bytes(block.weight_bytes, "little")
        )
        self._true_cursor += len(data)
        self._anti_cursor += block.weight_bytes
        return block

    def read_weight(self, block: EncodedBlock) -> int:
        """Stored (anti-cell) weight of a block."""
        raw = self._module.read(block.weight_address, block.weight_bytes)
        return int.from_bytes(raw, "little")

    def check(self, block: EncodedBlock) -> Tuple[bool, bytes]:
        """Verify a block; returns (clean, data).

        ``clean`` is False when the data's popcount disagrees with the
        stored weight — which, under directional errors, catches any
        corruption of either the data or the weight.
        """
        data = self._module.read(block.data_address, block.length)
        return popcount(data) == self.read_weight(block), data

    @staticmethod
    def false_negative_probability(
        flips: int, p_against_leak: float = 0.002
    ) -> float:
        """Probability ``flips`` simultaneous errors evade detection.

        Detection fails only if upward (against-leak) flips in the data
        exactly cancel downward ones — requiring at least one against-leak
        flip. A crude union bound: each of the ``flips`` errors goes
        against the leak direction with probability ``p_against_leak``,
        and evasion needs the weight to balance, so the probability is
        bounded by ``1 - (1 - p_against_leak)^flips``.
        """
        if flips < 0:
            raise ConfigurationError("flips must be non-negative")
        return 1.0 - (1.0 - p_against_leak) ** flips
