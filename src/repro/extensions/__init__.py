"""Broader applications of the monotonicity property (paper Section 8).

- :mod:`~repro.extensions.permissions` — permission vectors in true-cells
  can only lose permissions under charge-leak faults, never gain them.
- :mod:`~repro.extensions.coldboot` — reserved canary cells detect DRAM
  remanence at boot and refuse to proceed after a suspicious power cycle.
- :mod:`~repro.extensions.hamming` — a directional error-detection code:
  data in true-cells, its hamming weight in anti-cells.
"""

from repro.extensions.permissions import Permission, PermissionVectorStore
from repro.extensions.coldboot import BootDecision, ColdbootGuard
from repro.extensions.hamming import DirectionalCodec, EncodedBlock

__all__ = [
    "BootDecision",
    "ColdbootGuard",
    "DirectionalCodec",
    "EncodedBlock",
    "Permission",
    "PermissionVectorStore",
]
