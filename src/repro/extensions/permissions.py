"""Permission-vector protection with true-cell monotonicity (Section 8).

A permission bit vector (e.g. Unix rwx, SELinux access vectors) stored in
true-cells can only decay ``1 -> 0`` — "allowed" can degrade to "denied",
but "denied" can essentially never become "allowed". Fault attacks on
permission bits therefore cannot violate confidentiality: the error
direction is pinned by the physics.

:class:`PermissionVectorStore` allocates vectors in true-cell rows of a
simulated module, lets tests inject RowHammer faults, and audits whether
any denial ever became a grant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.dram.cells import CellType
from repro.dram.module import DramModule
from repro.errors import ConfigurationError, DramError


class Permission(enum.IntFlag):
    """Classic rwx bits; '1' grants, '0' denies."""

    NONE = 0
    EXECUTE = 1
    WRITE = 2
    READ = 4

    @classmethod
    def full(cls) -> "Permission":
        """rwx."""
        return cls.READ | cls.WRITE | cls.EXECUTE


@dataclass(frozen=True)
class PermissionRecord:
    """Where one subject's permissions live."""

    subject: str
    address: int
    original: Permission


class PermissionVectorStore:
    """Permission vectors pinned to true-cell rows of a module."""

    def __init__(self, module: DramModule):
        if module.cell_map is None:
            raise ConfigurationError("store requires a module with a cell map")
        self._module = module
        self._records: Dict[str, PermissionRecord] = {}
        self._cursor = self._first_true_cell_address()

    def _first_true_cell_address(self) -> int:
        for start, _end in self._module.cell_map.address_regions_of_type(CellType.TRUE):
            return start
        raise DramError("module has no true-cell rows")

    def grant(self, subject: str, permissions: Permission) -> PermissionRecord:
        """Store a subject's permission vector in true-cells."""
        if subject in self._records:
            raise ConfigurationError(f"subject {subject!r} already stored")
        address = self._cursor
        if self._module.cell_map.type_of_address(address) is not CellType.TRUE:
            raise DramError("allocation cursor left the true-cell region")
        self._cursor += 1
        self._module.write(address, bytes([int(permissions)]))
        record = PermissionRecord(subject=subject, address=address, original=permissions)
        self._records[subject] = record
        return record

    def read(self, subject: str) -> Permission:
        """Current (possibly decayed) permissions of a subject."""
        record = self._records[subject]
        return Permission(self._module.read(record.address, 1)[0] & int(Permission.full()))

    def records(self) -> Iterator[PermissionRecord]:
        """All stored records."""
        return iter(self._records.values())

    # -- audit ------------------------------------------------------------
    def escalations(self) -> List[Tuple[str, Permission, Permission]]:
        """Subjects whose *current* permissions exceed their original grant.

        With true-cell storage this list stays empty under charge-leak
        faults: bits only fall. Returns (subject, original, current).
        """
        found = []
        for record in self._records.values():
            current = self.read(record.subject)
            gained = current & ~record.original
            if gained:
                found.append((record.subject, record.original, current))
        return found

    def degradations(self) -> List[Tuple[str, Permission, Permission]]:
        """Subjects who lost permissions (availability, not confidentiality)."""
        found = []
        for record in self._records.values():
            current = self.read(record.subject)
            lost = record.original & ~current
            if lost:
                found.append((record.subject, record.original, current))
        return found

    def confidentiality_preserved(self) -> bool:
        """The Section 8 guarantee: no denial ever became a grant."""
        return not self.escalations()
