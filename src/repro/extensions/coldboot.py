"""Coldboot-attack detection via reserved canary cells (paper Section 8).

DRAM remanence lets an attacker power-cycle a machine and read leftover
contents (e.g. disk-encryption keys), especially when the chips are
chilled. The countermeasure: reserve a set of long-retention true-cells
and anti-cells, keep them *charged* while the system runs (true-cells
store '1', anti-cells '0'), and test them first thing at boot:

- after a legitimate (long) power-off, the charge is gone — true canaries
  read '0' and anti canaries read '1' — and boot proceeds;
- after a suspiciously fast (or chilled) power cycle the canaries still
  hold their charged values, indicating remanence: any secret in DRAM is
  likewise recoverable, so the guard powers the system back off.

Note the paper's prose states the proceed condition as "all reserved
true-cells are '1' and all reserved anti-cells are '0'"; charged canaries
are precisely the remanence signal, so this implementation treats the
decayed state as the safe one and documents the reading here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.dram.cells import CellType
from repro.dram.module import DramModule
from repro.errors import ConfigurationError


class BootDecision(enum.Enum):
    """Outcome of the canary check."""

    PROCEED = "proceed"
    SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class CanaryReport:
    """Details behind a boot decision."""

    decision: BootDecision
    charged_true_cells: int
    charged_anti_cells: int
    total_canaries: int

    @property
    def remanence_fraction(self) -> float:
        """Fraction of canaries still holding charge."""
        if self.total_canaries == 0:
            return 0.0
        return (self.charged_true_cells + self.charged_anti_cells) / self.total_canaries


class ColdbootGuard:
    """Reserved-canary boot check over a simulated module."""

    def __init__(
        self,
        module: DramModule,
        true_cell_addresses: Sequence[int],
        anti_cell_addresses: Sequence[int],
        tolerance: float = 0.05,
    ):
        if module.cell_map is None:
            raise ConfigurationError("guard requires a module with a cell map")
        if not true_cell_addresses or not anti_cell_addresses:
            raise ConfigurationError("need canaries of both cell types")
        if not 0 <= tolerance < 1:
            raise ConfigurationError("tolerance must be in [0, 1)")
        for address in true_cell_addresses:
            if module.cell_map.type_of_address(address) is not CellType.TRUE:
                raise ConfigurationError(f"address {address:#x} is not in a true-cell row")
        for address in anti_cell_addresses:
            if module.cell_map.type_of_address(address) is not CellType.ANTI:
                raise ConfigurationError(f"address {address:#x} is not in an anti-cell row")
        self._module = module
        self._true = list(true_cell_addresses)
        self._anti = list(anti_cell_addresses)
        self._tolerance = tolerance

    def arm(self) -> None:
        """Charge every canary (runs while the system is up)."""
        for address in self._true:
            self._module.write(address, b"\xff")  # true-cell charged = '1'
        for address in self._anti:
            self._module.write(address, b"\x00")  # anti-cell charged = '0'

    def check(self) -> CanaryReport:
        """The boot-time test: decayed canaries mean a safe (long) power-off."""
        charged_true = sum(
            1 for address in self._true if self._module.read(address, 1)[0] == 0xFF
        )
        charged_anti = sum(
            1 for address in self._anti if self._module.read(address, 1)[0] == 0x00
        )
        total = len(self._true) + len(self._anti)
        remanent = charged_true + charged_anti
        decision = (
            BootDecision.PROCEED
            if remanent <= self._tolerance * total
            else BootDecision.SHUTDOWN
        )
        return CanaryReport(
            decision=decision,
            charged_true_cells=charged_true,
            charged_anti_cells=charged_anti,
            total_canaries=total,
        )

    # -- simulation helpers -------------------------------------------------
    def simulate_power_off(self, decay_fraction: float = 1.0) -> None:
        """Model a power-off of a given severity.

        ``decay_fraction`` 1.0 is a long, room-temperature power-off (full
        decay); values near 0 model a fast chilled coldboot cycle where
        remanence preserves most cells.
        """
        if not 0 <= decay_fraction <= 1:
            raise ConfigurationError("decay_fraction must be in [0, 1]")
        row_bytes = self._module.geometry.row_bytes
        count_true = int(len(self._true) * decay_fraction)
        count_anti = int(len(self._anti) * decay_fraction)
        for address in self._true[:count_true]:
            row = address // row_bytes
            self._module.decay_bits(row, range((address % row_bytes) * 8, (address % row_bytes) * 8 + 8))
        for address in self._anti[:count_anti]:
            row = address // row_bytes
            self._module.decay_bits(row, range((address % row_bytes) * 8, (address % row_bytes) * 8 + 8))


def reserve_canaries(
    module: DramModule, per_type: int = 64
) -> Tuple[List[int], List[int]]:
    """Pick canary byte addresses from the first rows of each cell type."""
    if module.cell_map is None:
        raise ConfigurationError("module has no cell map")
    true_addresses: List[int] = []
    anti_addresses: List[int] = []
    for start, end in module.cell_map.address_regions_of_type(CellType.TRUE):
        while len(true_addresses) < per_type and start < end:
            true_addresses.append(start)
            start += 1
        if len(true_addresses) >= per_type:
            break
    for start, end in module.cell_map.address_regions_of_type(CellType.ANTI):
        while len(anti_addresses) < per_type and start < end:
            anti_addresses.append(start)
            start += 1
        if len(anti_addresses) >= per_type:
            break
    if len(true_addresses) < per_type or len(anti_addresses) < per_type:
        raise ConfigurationError("module too small for the requested canary count")
    return true_addresses, anti_addresses
