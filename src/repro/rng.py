"""Deterministic random-number utilities.

Experiments must be reproducible run-to-run, so every stochastic component
takes either a seed or a :class:`numpy.random.Generator`. This module
centralises the coercion logic and provides stream-splitting so independent
subsystems (e.g. the vulnerable-bit map and the per-hammer flip draws) do not
share a stream and silently correlate.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError

SeedLike = Union[None, int, np.random.Generator]

#: The generator type handed around by this module — import it from here
#: rather than touching ``numpy.random`` directly (RL001).
Rng = np.random.Generator

#: Default seed used when callers do not supply one. Fixed so that casual
#: interactive use is reproducible; tests pass explicit seeds.
DEFAULT_SEED = 0xC7A


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a numpy Generator.

    ``None`` maps to :data:`DEFAULT_SEED`; an existing Generator is returned
    unchanged (shared stream, caller's choice); an int seeds a fresh PCG64.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a label.

    The label participates in the child seed so different subsystems get
    different streams even when split from the same parent in any order.
    """
    label_digest = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    entropy = int(rng.integers(0, 2**63 - 1))
    mixed = (entropy, int(label_digest.sum()), len(label))
    return np.random.default_rng(np.random.SeedSequence(mixed))


def derive_seed(*components: Union[int, str]) -> int:
    """Deterministically mix ``components`` into one child seed.

    Unlike :func:`split_rng` this is *stateless*: the same components
    always produce the same seed, independent of draw order or history.
    Campaign runners rely on that to give segment ``(index, attempt)``
    pairs stable streams, so a resumed run replays identically to an
    uninterrupted one. Components may be non-negative ints or short
    string labels.
    """
    if not components:
        raise ConfigurationError("derive_seed needs at least one component")
    entropy = []
    for component in components:
        if isinstance(component, bool) or not isinstance(component, (int, str)):
            raise ConfigurationError(
                f"derive_seed component {component!r} is not an int or str"
            )
        if isinstance(component, str):
            entropy.append(len(component))
            entropy.extend(int(byte) for byte in component.encode("utf-8"))
        else:
            if component < 0:
                raise ConfigurationError(
                    f"derive_seed component {component} must be non-negative"
                )
            entropy.append(int(component))
    return int(np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint64)[0])


def bernoulli(rng: np.random.Generator, probability: float, size: Optional[int] = None):
    """Draw Bernoulli(probability) samples as booleans."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(f"probability {probability} outside [0, 1]")
    if size is None:
        return bool(rng.random() < probability)
    return rng.random(size) < probability
