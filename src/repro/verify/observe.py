"""Dynamic observation harness backing the soundness contract.

:func:`observe_payload` replays a payload through the executor's
:func:`~repro.payload.executor.iter_steps` surface, recording what the
run *actually* did — per-row activation counts and the set of rows
touched by any access — while performing every operation for real
(flips and all), so observations are taken under the same dynamics the
production path sees.

:func:`check_containment` then compares an :class:`ObservedBehavior`
against a static :class:`~repro.verify.payload.PayloadAnalysis`:

- every observed per-row activation count must lie inside the static
  interval, and every observed touched row must be covered by the
  touched-row abstraction (soundness: the abstraction over-approximates
  reality);
- conversely, every row the analysis claims is definitely activated
  (``lo > 0``) must be observed (the IR's loop counts are constants, so
  the activation abstraction is exact — a miss in either direction is a
  bug).

Any breach increments the ``verify.unsound`` canary counter, which the
test suite asserts is zero; the hypothesis differential suite in
``tests/test_verify_soundness_fuzz.py`` drives this with the fault
plane armed and disarmed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro import obs
from repro.payload.compiler import compile_program
from repro.payload.executor import (
    PayloadContext,
    PendingBurst,
    PendingRead,
    PendingWrite,
    align_refresh,
    iter_steps,
)
from repro.payload.ir import PayloadProgram
from repro.verify.payload import AddressSpaceModel, PayloadAnalysis


@dataclass
class ObservedBehavior:
    """What one dynamic run of a payload actually did."""

    acts: Dict[int, int] = field(default_factory=dict)
    touched: Set[int] = field(default_factory=set)
    flips: int = 0

    def touched_rows(self) -> FrozenSet[int]:
        """The observed touched-row set (activations included)."""
        return frozenset(self.touched) | frozenset(self.acts)


def observe_payload(
    program: PayloadProgram, ctx: PayloadContext
) -> ObservedBehavior:
    """Execute ``program`` step-by-step, recording its concrete behaviour.

    Every operation is performed for real through the context; the
    recording sits between :func:`iter_steps` and ``perform()`` so the
    observed counts are exactly what the batched path would issue.
    """
    module = ctx.require("module", "observation needs a DramModule for row math")
    geometry = module.geometry
    observed = ObservedBehavior()
    compiled = compile_program(program)
    align_refresh(ctx, program.refresh_align)
    for step in iter_steps(compiled, ctx):
        if isinstance(step, PendingBurst):
            outcome = step.perform()
            observed.acts[step.row] = (
                observed.acts.get(step.row, 0) + step.activations
            )
            observed.touched.add(step.row)
            observed.flips += outcome.flip_count
        elif isinstance(step, PendingRead):
            result = step.perform()
            if step.space == "physical":
                first = geometry.row_of_address(step.address)
                last = geometry.row_of_address(
                    step.address + max(step.length, 1) - 1
                )
                observed.touched.update(range(first, last + 1))
            else:
                # Kernel.touch returns the translated physical address.
                observed.touched.add(geometry.row_of_address(int(result)))
        elif isinstance(step, PendingWrite):
            step.perform()
            first = geometry.row_of_address(step.address)
            last = geometry.row_of_address(
                step.address + max(len(step.data), 1) - 1
            )
            observed.touched.update(range(first, last + 1))
    return observed


def check_containment(
    analysis: PayloadAnalysis,
    observed: ObservedBehavior,
    model: AddressSpaceModel,
) -> List[str]:
    """Verify the static bounds contain the observed behaviour.

    Returns a list of human-readable soundness problems (empty means the
    contract holds) and increments the ``verify.unsound`` canary once
    per problem found.
    """
    problems: List[str] = []
    for row, count in observed.acts.items():
        interval = analysis.acts.get(row)
        if interval is None:
            problems.append(
                f"row {row} activated {count} times but absent from the "
                "static activation map"
            )
        elif not interval.contains(count):
            problems.append(
                f"row {row} activated {count} times, outside static bound "
                f"[{interval.lo}, {interval.hi}]"
            )
    for row, interval in analysis.acts.items():
        if interval.lo > 0 and row not in observed.acts:
            problems.append(
                f"static analysis requires >= {interval.lo} activations of "
                f"row {row}, but none were observed (exactness breach)"
            )
    for row in sorted(observed.touched_rows()):
        if not analysis.touched.contains(row, model.user_rows):
            problems.append(
                f"row {row} touched dynamically but outside the static "
                "touched-row abstraction"
            )
    if problems:
        obs.inc("verify.unsound", len(problems))
    return problems
