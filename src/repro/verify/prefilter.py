"""Campaign-facing verification: verdict summaries and pre-filtering.

``repro chaos`` records a per-payload verdict summary in each segment
report (:func:`payload_verdict_summary`), and batch runners can skip
*provably harmless* payloads entirely (:func:`execute_batch` with
``prefilter=True``).

"Provably harmless" is a purely structural property of the compiled
payload: it contains no bursts, no writes, and no virtual accesses —
only physical reads and idle cycles, none of which can change simulator
state (reads never flip bits and fault nothing in). Skipping such a
payload therefore cannot change any downstream result, and
:class:`BatchReport` is designed so the merged report is byte-identical
between a prefiltered and an unfiltered run: merged totals count only
state-changing work (activations, bursts, flips, writes — a harmless
payload contributes zero to each), and per-payload entries carry only
static facts (digest, name, harmlessness, verdict). Observability
counters (``payload.executions`` etc.) *do* differ — the filter's whole
point is to not execute — which is why they are not part of the report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import PayloadError
from repro.kernel.kernel import Kernel
from repro.payload.compiler import Burst, ReadBatch, WriteBatch, compile_program
from repro.payload.executor import PayloadContext, PayloadResult, run
from repro.payload.ir import PayloadProgram
from repro.verify.payload import (
    DEFAULT_FLIP_THRESHOLD,
    AddressSpaceModel,
    verify_payload,
)


def is_provably_harmless(program: PayloadProgram) -> bool:
    """Whether the payload provably cannot change simulator state.

    True iff the compiled form performs no activations, no writes, and
    no virtual accesses — only physical reads and NOP cycles remain, and
    neither mutates DRAM, page tables, or any kernel structure.
    """
    compiled = compile_program(program)
    for step in compiled.steps:
        if isinstance(step, (Burst, WriteBatch)):
            return False
        if isinstance(step, ReadBatch) and step.space != "physical":
            return False
    return True


def _resolve_model(
    source: Union[Kernel, AddressSpaceModel]
) -> AddressSpaceModel:
    if isinstance(source, AddressSpaceModel):
        return source
    return AddressSpaceModel.from_kernel(source)


def payload_verdict_summary(
    programs: Sequence[PayloadProgram],
    source: Union[Kernel, AddressSpaceModel],
    threshold: int = DEFAULT_FLIP_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Static verdicts for a batch of payloads, one entry per digest.

    Returns plain JSON-able dicts (campaign workers ship these across
    process boundaries). Duplicate payloads — attacks re-execute the
    same program every iteration — collapse to one entry, first-seen
    order. A structurally malformed payload yields an ``error`` entry
    instead of propagating (campaign reports must not die on one bad
    payload).
    """
    model = _resolve_model(source)
    entries: List[Dict[str, Any]] = []
    seen: Dict[str, None] = {}
    for program in programs:
        digest = program.digest()
        if digest in seen:
            continue
        seen[digest] = None
        entry: Dict[str, Any] = {"digest": digest, "name": program.name}
        try:
            report = verify_payload(program, model, threshold=threshold)
            entry["harmless"] = is_provably_harmless(program)
            entry["overall"] = report.overall.value
            entry["unsafe_checks"] = sorted(
                c.check for c in report.unsafe_checks()
            )
        except PayloadError as exc:
            entry["error"] = str(exc)
        entries.append(entry)
    return entries


@dataclass
class BatchReport:
    """Merged result of executing (or skipping) a batch of payloads."""

    payloads: List[Dict[str, Any]] = field(default_factory=list)
    merged: Dict[str, int] = field(
        default_factory=lambda: {
            "activations": 0,
            "bursts": 0,
            "flips": 0,
            "writes": 0,
        }
    )

    def absorb(self, result: PayloadResult) -> None:
        """Fold one execution's state-changing work into the totals."""
        self.merged["activations"] += result.activations
        self.merged["bursts"] += result.bursts
        self.merged["flips"] += result.flips_induced
        self.merged["writes"] += result.writes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; identical with and without prefiltering.

        Only static per-payload facts and state-changing totals appear —
        no skipped flags, no runtime statistics — so prefiltering
        provably harmless payloads cannot perturb the bytes.
        """
        return {"merged": dict(self.merged), "payloads": list(self.payloads)}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Stable JSON rendering (the byte-identity surface)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def execute_batch(
    programs: Sequence[PayloadProgram],
    ctx: PayloadContext,
    source: Union[Kernel, AddressSpaceModel],
    prefilter: bool = False,
    threshold: int = DEFAULT_FLIP_THRESHOLD,
) -> BatchReport:
    """Run a payload batch, optionally skipping provably harmless ones.

    With ``prefilter=True``, payloads :func:`is_provably_harmless`
    deems inert are never executed; the returned report is nonetheless
    byte-identical (``to_json``) to the unfiltered run whenever those
    payloads indeed cause no state change — which harmlessness proves.
    """
    model = _resolve_model(source)
    report = BatchReport()
    for program in programs:
        harmless = is_provably_harmless(program)
        verdict = verify_payload(program, model, threshold=threshold)
        report.payloads.append(
            {
                "digest": program.digest(),
                "name": program.name,
                "harmless": harmless,
                "overall": verdict.overall.value,
            }
        )
        if prefilter and harmless:
            continue
        report.absorb(run(program, ctx))
    return report
