"""Sound abstract interpretation over :mod:`repro.payload.ir` programs.

The interpreter runs the payload body once, symbolically, computing:

- a **row-set domain**: which physical rows each named address list can
  touch, with virtual lists resolved through a config-derived
  :class:`AddressSpaceModel` (demand paging serves virtual pages from
  the ordinary zonelists, so a virtual access abstracts to "any user
  row" — Rule 2 keeps those out of ZONE_PTP);
- a **per-row activation-count interval domain**: how many times each
  row can be activated, composed sequentially (add), through loops
  (scale by the constant count), and segmented by refresh-phase
  alignment when the whole program fits in one refresh window;
- a **window-peak bound**: the maximum activations of each row inside
  any 64 ms refresh window, using a cycle cost model (ACT = one tRC,
  NOP = its cycle count, accesses = one cycle each) — a loop longer
  than the window cannot land all its activations in one window, which
  is exactly the defence TRR/SoftTRR-style mitigations rely on.

Because loop counts in the IR are constants, the activation abstraction
is *exact*: the soundness suite checks containment in both directions.
The simulator's dynamic semantics disturb memory only through
``hammer()`` (READ/WRITE never flip bits), so burst rows and their
per-row counts are the complete aggressor surface.

From the analysis, :func:`verify_payload` derives three checks:

``act-pre-discipline``
    The ACT/PRE protocol holds on all loop paths (loop bodies walked
    twice, so a row left open across an iteration boundary is caught).
``ptp-adjacency``
    No activatable row is inside ZONE_PTP or blast-radius adjacent
    (same bank, +/- 1 row) to a ZONE_PTP row — the payload provably
    cannot hammer page tables.
``flip-threshold``
    Every row's peak activations per refresh window stay below the
    geometry's flip threshold. This is a *model-level* claim about
    activation counts, not a guarantee about probabilistic flips; it is
    deliberately outside the dynamic-containment soundness contract.

Structural defects (unknown list names, wrong address space, indices
out of range) raise :class:`~repro.errors.PayloadError` — they are
malformed input (CLI exit 2), not verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro import obs
from repro.dram.geometry import DramGeometry
from repro.errors import PayloadError
from repro.kernel.kernel import Kernel, KernelConfig
from repro.payload.ir import (
    MAX_LOOP_DEPTH,
    Act,
    Instruction,
    Loop,
    Nop,
    PayloadProgram,
    Pre,
    Read,
    Write,
)
from repro.verify.config import StaticLayout
from repro.verify.domain import Interval, RowSet, add_counts, scale_counts
from repro.verify.verdict import CheckResult, VerificationReport, Verdict, Witness

#: One refresh window (the JEDEC 64 ms retention interval), seconds.
REFRESH_WINDOW_S = 0.064

#: One ACT/PRE cycle (row cycle time tRC ~ 45 ns), seconds.
TRC_S = 45e-9

#: Activation capacity of one refresh window — no row can be activated
#: more often than once per tRC, so this also caps every window peak.
WINDOW_ACT_CAPACITY = int(REFRESH_WINDOW_S / TRC_S)

#: Default per-window activation threshold below which no flip is
#: possible in the model (a conservative HCfirst for DDR3/DDR4-era
#: parts; real thresholds are per-geometry).
DEFAULT_FLIP_THRESHOLD = 50_000


@dataclass(frozen=True)
class AddressSpaceModel:
    """Config-derived abstraction of the address spaces a payload sees.

    ``ptp_rows`` are the rows backing ZONE_PTP (the protected target);
    ``user_rows`` are rows an ordinary allocation can land in — the
    resolution of the virtual space under Rule 2.
    """

    geometry: DramGeometry
    ptp_rows: FrozenSet[int] = frozenset()
    user_rows: FrozenSet[int] = frozenset()

    @classmethod
    def from_layout(cls, view: StaticLayout) -> "AddressSpaceModel":
        """Derive the model from a statically reconstructed layout."""
        return cls(
            geometry=view.geometry,
            ptp_rows=view.ptp_rows(),
            user_rows=view.user_rows(),
        )

    @classmethod
    def from_config(cls, config: KernelConfig) -> "AddressSpaceModel":
        """Derive the model from a kernel configuration (no boot)."""
        return cls.from_layout(StaticLayout.from_config(config))

    @classmethod
    def from_kernel(cls, kernel: Kernel) -> "AddressSpaceModel":
        """Derive the model from a booted kernel's actual layout."""
        return cls.from_layout(StaticLayout.from_kernel(kernel))

    @classmethod
    def from_geometry(cls, geometry: DramGeometry) -> "AddressSpaceModel":
        """A kernel-less module: no ZONE_PTP, every row user-reachable."""
        return cls(
            geometry=geometry,
            ptp_rows=frozenset(),
            user_rows=frozenset(range(geometry.total_rows)),
        )


@dataclass(frozen=True)
class PayloadAnalysis:
    """The abstract-interpretation result for one payload program.

    ``acts`` maps each activatable physical row to its activation-count
    interval for the whole run; ``window_peaks`` bounds each row's
    activations inside any one refresh window; ``origins`` names the
    address list (and index) that first activates each row, for witness
    traces; ``touched`` is the touched-row abstraction across all
    instruction kinds.
    """

    program: PayloadProgram
    acts: Mapping[int, Interval]
    window_peaks: Mapping[int, int]
    origins: Mapping[int, Tuple[str, int]]
    touched: RowSet
    total_cycles: int
    phase: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (rendered into report facts)."""
        return {
            "rows": {
                str(row): {
                    "acts": self.acts[row].to_list(),
                    "window_peak": self.window_peaks[row],
                }
                for row in sorted(self.acts)
            },
            "touched": self.touched.to_dict(),
            "total_cycles": self.total_cycles,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class _Summary:
    """Compositional body summary (one per sub-tree of the payload)."""

    cycles: int = 0
    acts: Dict[int, Interval] = None  # type: ignore[assignment]
    peaks: Dict[int, int] = None  # type: ignore[assignment]
    rows: FrozenSet[int] = frozenset()
    virtual: bool = False

    def __post_init__(self) -> None:
        if self.acts is None:
            object.__setattr__(self, "acts", {})
        if self.peaks is None:
            object.__setattr__(self, "peaks", {})


def _seq(left: _Summary, right: _Summary) -> _Summary:
    """Sequential composition of two body summaries."""
    acts = add_counts(left.acts, right.acts)
    peaks: Dict[int, int] = {}
    for row, interval in acts.items():
        combined = left.peaks.get(row, 0) + right.peaks.get(row, 0)
        peaks[row] = min(interval.hi, combined)
    return _Summary(
        cycles=left.cycles + right.cycles,
        acts=acts,
        peaks=peaks,
        rows=left.rows | right.rows,
        virtual=left.virtual or right.virtual,
    )


def _loop(body: _Summary, count: int) -> _Summary:
    """A loop executing ``body`` exactly ``count`` times.

    The window-peak bound: at most ``W // cycles + 2`` iterations can
    intersect one refresh window (full iterations plus the two partial
    ones at the edges), each contributing at most the body's total.
    """
    acts = scale_counts(body.acts, count)
    window_iters = min(count, WINDOW_ACT_CAPACITY // max(body.cycles, 1) + 2)
    peaks = {
        row: min(interval.hi, window_iters * body.acts[row].hi)
        for row, interval in acts.items()
    }
    return _Summary(
        cycles=body.cycles * count,
        acts=acts,
        peaks=peaks,
        rows=body.rows,
        virtual=body.virtual,
    )


def _resolve_act_row(
    program: PayloadProgram, model: AddressSpaceModel, ins: Act
) -> int:
    entry = program.lists.get(ins.list)
    if entry is None:
        raise PayloadError(f"ACT references unknown list {ins.list!r}")
    if entry.space != "row":
        raise PayloadError(
            f"ACT list {ins.list!r} is {entry.space}-space; ACT needs rows"
        )
    if not 0 <= ins.index < len(entry.addresses):
        raise PayloadError(
            f"ACT index {ins.index} outside list {ins.list!r} "
            f"({len(entry.addresses)} entries)"
        )
    row = entry.addresses[ins.index]
    if not 0 <= row < model.geometry.total_rows:
        raise PayloadError(
            f"row {row} outside geometry ({model.geometry.total_rows} rows)"
        )
    return row


def _access_rows(
    model: AddressSpaceModel, addresses: Tuple[int, ...], length: int
) -> FrozenSet[int]:
    """Rows a physical READ/WRITE of ``length`` bytes per address spans."""
    geometry = model.geometry
    span = max(length, 1)
    rows: set = set()
    for address in addresses:
        geometry.check_address(address)
        geometry.check_address(address + span - 1)
        rows.update(
            range(
                geometry.row_of_address(address),
                geometry.row_of_address(address + span - 1) + 1,
            )
        )
    return frozenset(rows)


def _summarize(
    program: PayloadProgram,
    model: AddressSpaceModel,
    body: Tuple[Instruction, ...],
    origins: Dict[int, Tuple[str, int]],
    depth: int = 0,
) -> _Summary:
    if depth > MAX_LOOP_DEPTH:
        raise PayloadError(f"loop nesting exceeds {MAX_LOOP_DEPTH}")
    summary = _Summary()
    for ins in body:
        if isinstance(ins, Act):
            row = _resolve_act_row(program, model, ins)
            origins.setdefault(row, (ins.list, ins.index))
            step = _Summary(
                cycles=1,
                acts={row: Interval.point(1)},
                peaks={row: 1},
                rows=frozenset((row,)),
            )
        elif isinstance(ins, Pre):
            step = _Summary()
        elif isinstance(ins, Nop):
            if ins.cycles < 0:
                raise PayloadError(f"NOP cycles must be >= 0, got {ins.cycles}")
            step = _Summary(cycles=ins.cycles)
        elif isinstance(ins, Read):
            entry = program.lists.get(ins.list)
            if entry is None:
                raise PayloadError(f"READ references unknown list {ins.list!r}")
            if entry.space == "virtual":
                step = _Summary(cycles=len(entry.addresses), virtual=True)
            elif entry.space == "physical":
                if ins.write:
                    raise PayloadError(
                        "READ write=True needs a virtual list, "
                        f"{ins.list!r} is physical"
                    )
                step = _Summary(
                    cycles=len(entry.addresses),
                    rows=_access_rows(model, entry.addresses, ins.length),
                )
            else:
                raise PayloadError(
                    f"READ list {ins.list!r} is row-space; "
                    "READ needs physical or virtual addresses"
                )
        elif isinstance(ins, Write):
            entry = program.lists.get(ins.list)
            if entry is None:
                raise PayloadError(f"WRITE references unknown list {ins.list!r}")
            if entry.space != "physical":
                raise PayloadError(
                    f"WRITE list {ins.list!r} is {entry.space}-space; "
                    "WRITE needs physical addresses"
                )
            if not ins.pattern:
                raise PayloadError("WRITE pattern must be non-empty")
            step = _Summary(
                cycles=len(entry.addresses),
                rows=_access_rows(model, entry.addresses, len(ins.pattern)),
            )
        elif isinstance(ins, Loop):
            if ins.count < 0:
                raise PayloadError(f"loop count must be >= 0, got {ins.count}")
            if ins.count == 0:
                continue
            inner = _summarize(program, model, ins.body, origins, depth + 1)
            step = _loop(inner, ins.count)
        else:
            raise PayloadError(f"unknown instruction {ins!r}")
        summary = _seq(summary, step)
    return summary


def analyze_payload(
    program: PayloadProgram, model: AddressSpaceModel
) -> PayloadAnalysis:
    """Abstractly interpret ``program`` against ``model``.

    Raises :class:`~repro.errors.PayloadError` on structural defects;
    never executes the payload.
    """
    origins: Dict[int, Tuple[str, int]] = {}
    summary = _summarize(program, model, program.body, origins)
    peaks = {
        row: min(peak, WINDOW_ACT_CAPACITY)
        for row, peak in summary.peaks.items()
    }
    align = program.refresh_align
    if align is not None and summary.cycles <= WINDOW_ACT_CAPACITY:
        phase = f"phase {align.phase} (mod {align.modulus})"
    else:
        phase = "any-phase"
    return PayloadAnalysis(
        program=program,
        acts=dict(summary.acts),
        window_peaks=peaks,
        origins=dict(origins),
        touched=RowSet(rows=summary.rows | frozenset(summary.acts), user_top=summary.virtual),
        total_cycles=summary.cycles,
        phase=phase,
    )


# -- the three payload checks -----------------------------------------------
def _walk_discipline(
    body: Tuple[Instruction, ...],
    path: str,
    state: List[Optional[str]],
    depth: int = 0,
) -> Optional[Witness]:
    """The ACT/PRE walk; ``state[0]`` is where the open row was ACTed."""
    if depth > MAX_LOOP_DEPTH:
        raise PayloadError(f"loop nesting exceeds {MAX_LOOP_DEPTH}")
    for position, ins in enumerate(body):
        here = f"{path}[{position}]"
        if isinstance(ins, Act):
            if state[0] is not None:
                return Witness(
                    summary=(
                        f"ACT at {here} while the row opened at {state[0]} "
                        "is still open (missing PRE)"
                    ),
                    steps=(
                        {"event": "act", "path": state[0], "state": "row open"},
                        {"event": "act", "path": here, "state": "violation"},
                    ),
                )
            state[0] = here
        elif isinstance(ins, Pre):
            state[0] = None
        elif isinstance(ins, Loop):
            # Walk the body twice (count permitting) so a row left open
            # across an iteration boundary is caught.
            passes = min(ins.count, 2)
            for iteration in range(passes):
                witness = _walk_discipline(
                    ins.body, f"{here}.loop", state, depth + 1
                )
                if witness is not None:
                    return witness
    return None


def _check_discipline(program: PayloadProgram) -> CheckResult:
    state: List[Optional[str]] = [None]
    witness = _walk_discipline(program.body, "body", state)
    if witness is not None:
        return CheckResult(
            check="act-pre-discipline",
            verdict=Verdict.UNSAFE,
            detail="an ACT can fire while another row is still open",
            witness=witness,
        )
    if state[0] is not None:
        return CheckResult(
            check="act-pre-discipline",
            verdict=Verdict.UNSAFE,
            detail="the program ends with a row still open (missing PRE)",
            witness=Witness(
                summary=f"row opened at {state[0]} is never precharged",
                steps=({"event": "act", "path": state[0], "state": "row open at exit"},),
            ),
        )
    return CheckResult(
        check="act-pre-discipline",
        verdict=Verdict.SAFE,
        detail=(
            "every ACT fires with the bank precharged and the program "
            "ends closed, on all loop paths"
        ),
    )


def _check_adjacency(
    analysis: PayloadAnalysis, model: AddressSpaceModel
) -> CheckResult:
    if not model.ptp_rows:
        return CheckResult(
            check="ptp-adjacency",
            verdict=Verdict.SAFE,
            detail=(
                "vacuously safe: the layout has no ZONE_PTP rows (note this "
                "also means page tables are unprotected — see the config "
                "engine's verdicts)"
            ),
        )
    geometry = model.geometry
    for row in sorted(analysis.acts):
        if analysis.acts[row].hi <= 0:
            continue
        victims = [row] if row in model.ptp_rows else []
        victims += [n for n in geometry.neighbors(row) if n in model.ptp_rows]
        if victims:
            origin_list, origin_index = analysis.origins.get(row, ("?", 0))
            victim = victims[0]
            relation = "inside ZONE_PTP" if victim == row else "adjacent to ZONE_PTP"
            return CheckResult(
                check="ptp-adjacency",
                verdict=Verdict.UNSAFE,
                detail=(
                    f"row {row} (ACTed via list {origin_list!r}[{origin_index}]) "
                    f"is {relation}: activations there can disturb "
                    f"page-table row {victim}"
                ),
                witness=Witness(
                    summary=(
                        f"aggressor row {row} -> ZONE_PTP victim row {victim} "
                        f"(up to {analysis.acts[row].hi} activations)"
                    ),
                    steps=(
                        {
                            "event": "aggressor",
                            "row": row,
                            "list": origin_list,
                            "index": origin_index,
                            "activations_hi": analysis.acts[row].hi,
                        },
                        {
                            "event": "victim",
                            "row": victim,
                            "zone": "ZONE_PTP",
                            "relation": relation,
                        },
                    ),
                ),
            )
    return CheckResult(
        check="ptp-adjacency",
        verdict=Verdict.SAFE,
        detail=(
            "no activatable row lies inside or blast-radius adjacent to "
            "ZONE_PTP: the payload cannot hammer page-table rows"
        ),
    )


def _check_flip_threshold(
    analysis: PayloadAnalysis, threshold: int
) -> CheckResult:
    worst_row: Optional[int] = None
    worst_peak = -1
    for row, peak in analysis.window_peaks.items():
        if peak > worst_peak:
            worst_row, worst_peak = row, peak
    if worst_row is not None and worst_peak >= threshold:
        return CheckResult(
            check="flip-threshold",
            verdict=Verdict.UNSAFE,
            detail=(
                f"row {worst_row} can see {worst_peak} activations inside "
                f"one {int(REFRESH_WINDOW_S * 1000)} ms refresh window, at "
                f"or above the flip threshold ({threshold})"
            ),
            witness=Witness(
                summary=(
                    f"window peak {worst_peak} >= threshold {threshold} "
                    f"on row {worst_row}"
                ),
                steps=(
                    {
                        "event": "window-peak",
                        "row": worst_row,
                        "activations": worst_peak,
                        "threshold": threshold,
                        "window_ms": int(REFRESH_WINDOW_S * 1000),
                    },
                ),
            ),
        )
    peak_note = (
        f"worst row peaks at {worst_peak} activations"
        if worst_row is not None
        else "the payload performs no activations"
    )
    return CheckResult(
        check="flip-threshold",
        verdict=Verdict.SAFE,
        detail=(
            f"every row stays below the flip threshold ({threshold}) in "
            f"every refresh window; {peak_note}"
        ),
    )


def verify_payload(
    program: PayloadProgram,
    model: AddressSpaceModel,
    threshold: int = DEFAULT_FLIP_THRESHOLD,
    subject: str = "",
) -> VerificationReport:
    """Run all payload checks against the address-space model.

    Raises :class:`~repro.errors.PayloadError` for structurally malformed
    programs (the CLI's exit-2 path); verdicts are reserved for
    well-formed programs whose *behaviour* is at issue.
    """
    analysis = analyze_payload(program, model)
    checks = (
        _check_discipline(program),
        _check_adjacency(analysis, model),
        _check_flip_threshold(analysis, threshold),
    )
    obs.inc("verify.payload_checks", len(checks))
    facts: Dict[str, Any] = dict(analysis.to_dict())
    facts["digest"] = program.digest()
    facts["window_act_capacity"] = WINDOW_ACT_CAPACITY
    facts["flip_threshold"] = threshold
    return VerificationReport(
        engine="payload",
        subject=subject or f"{program.name} ({program.digest()})",
        checks=checks,
        facts=facts,
    )
