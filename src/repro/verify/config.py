"""CTA layout model checker: Rule 1/2, monotonic orientation, NSR.

:class:`StaticLayout` reconstructs the zone layout a
``KernelConfig`` would boot into — the same recipe as
``Kernel._build_layout`` but without booting (the ground-truth cell map
stands in for the boot-time profiler, which infers exactly that map on
these interleaved modules). :func:`verify_config` then runs four checks:

``rule1-containment``
    Every PTP allocation request (``GFP_PTP``, per level) is served from
    ``ZONE_PTP`` sub-zones above the low water mark only — no fallback.
``rule2-containment``
    No ordinary zonelist ever reaches a PTP zone, every PTP sub-zone
    lies above the mark, and anti-cell gaps are unzoned holes.
``monotonic-orientation``
    Every row backing ZONE_PTP is a true-cell row, so PTE frame pointers
    stored there flip 1 -> 0 only (monotonically downward).
``no-self-reference``
    The structural theorem, checked exhaustively over *all* reachable
    page-table placements: under at most one monotonic pointer
    corruption per walk path, no page-table walk can interpret a genuine
    page table of level >= 2 as a last-level page table. Reaching that
    state is the paper's self-reference window — the "leaf" entries the
    MMU then reads are page-table pointers, i.e. a user-visible PTE
    mapping page-table memory.

The corruption model: a RowHammer flip corrupts at most one entry along
a walk path; in true-cells flips are 1 -> 0, so the corrupted pointer
value is a *strict submask* of the original (see
:mod:`repro.verify.domain`). Because a submask is never larger than the
original, corrupted leaf pointers stay below the low water mark (the
paper's indicator-bit theorem falls out as value monotonicity), and in
the multilevel layout — level-L zones strictly above level-(L-1) zones —
a corrupted pointer can only land at a level *below* the one the walk
expects, so the actual level never exceeds the interpreted level and the
violating state is unreachable. A single-zone ZONE_PTP hosts every level
at every pfn, so one downward flip in a PD entry lands on a pfn that may
host another PD: level confusion, the counterexample PR 2's runtime
sanitizer observes dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.dram.cells import CellType, CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.errors import AnalysisError, ConfigurationError
from repro.kernel.cta import CtaConfig, CtaPolicy
from repro.kernel.gfp import GFP_KERNEL, GFP_PTP, GFP_USER, GfpFlags
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.pagetable import NUM_LEVELS
from repro.kernel.zones import MemoryZone, ZoneId, ZoneLayout
from repro.units import MIB, PAGE_SHIFT, PAGE_SIZE
from repro.verify.domain import strict_submask_witness
from repro.verify.verdict import CheckResult, VerificationReport, Verdict, Witness

#: Exhaustive-enumeration bound for the NSR placement sweep. Layouts
#: whose per-level host ranges exceed this many pages get an UNKNOWN
#: verdict instead of a partial answer (the UNKNOWN policy: never guess).
MAX_ENUMERATED_PFNS = 1 << 16

#: Page-table level names for witness narration (index = level).
_LEVEL_NAMES = {1: "PT", 2: "PD", 3: "PDPT", 4: "PML4"}


@dataclass(frozen=True)
class StaticLayout:
    """The statically reconstructed layout of one kernel configuration."""

    config: KernelConfig
    geometry: DramGeometry
    cell_map: CellTypeMap
    layout: ZoneLayout
    policy: Optional[CtaPolicy] = None
    name: str = ""

    @classmethod
    def from_config(cls, config: KernelConfig, name: str = "") -> "StaticLayout":
        """Plan the layout ``Kernel.__init__`` would boot, without booting.

        Mirrors ``Kernel._build_layout`` with the ground-truth cell map in
        place of the boot-time profiler (whose inferred map matches it on
        the interleaved modules this simulator builds).
        """
        geometry = DramGeometry(
            total_bytes=config.total_bytes,
            row_bytes=config.row_bytes,
            num_banks=config.num_banks,
        )
        cell_map = CellTypeMap.interleaved(
            geometry, period_rows=config.cell_interleave_rows
        )
        if config.cta is None:
            if config.arch == "x86_32":
                layout = ZoneLayout.x86_32(geometry.total_bytes)
            else:
                layout = ZoneLayout.x86_64(geometry.total_bytes)
            return cls(config, geometry, cell_map, layout, policy=None, name=name)
        policy = CtaPolicy(cell_map, config.cta)
        subzones = policy.build_subzones()
        ptp_span = geometry.total_bytes - policy.low_water_mark
        if config.arch == "x86_32":
            base = ZoneLayout.x86_32(geometry.total_bytes, ptp_bytes=ptp_span)
            zones = [z for z in base.zones if z.zone_id is not ZoneId.PTP]
            layout = ZoneLayout(list(zones) + subzones, base.total_pages)
        else:
            layout = ZoneLayout.x86_64(
                geometry.total_bytes, ptp_bytes=ptp_span, ptp_subzones=subzones
            )
        return cls(config, geometry, cell_map, layout, policy=policy, name=name)

    @classmethod
    def from_kernel(cls, kernel: Kernel, name: str = "") -> "StaticLayout":
        """The layout a *booted* kernel actually runs (profiled policy)."""
        return cls(
            config=kernel.config,
            geometry=kernel.module.geometry,
            cell_map=kernel.module.cell_map,
            layout=kernel.layout,
            policy=kernel.cta_policy,
            name=name,
        )

    # -- row views ---------------------------------------------------------
    def _rows_of_pfn_range(self, start_pfn: int, end_pfn: int) -> FrozenSet[int]:
        return frozenset(
            self.geometry.rows_of_byte_range(
                start_pfn * PAGE_SIZE, end_pfn * PAGE_SIZE
            )
        )

    def ptp_rows(self) -> FrozenSet[int]:
        """Rows backing any ZONE_PTP sub-zone."""
        rows: FrozenSet[int] = frozenset()
        for zone in self.layout.zones_of(ZoneId.PTP):
            rows |= self._rows_of_pfn_range(zone.start_pfn, zone.end_pfn)
        return rows

    def user_rows(self) -> FrozenSet[int]:
        """Rows an ordinary (non-PTP) allocation can land in (Rule 2)."""
        rows: FrozenSet[int] = frozenset()
        for zone in self.layout.zones:
            if zone.zone_id is not ZoneId.PTP:
                rows |= self._rows_of_pfn_range(zone.start_pfn, zone.end_pfn)
        return rows

    def describe(self) -> Dict[str, Any]:
        """Layout facts for report consumers."""
        mark = self.layout.low_water_mark_pfn
        return {
            "total_pages": self.layout.total_pages,
            "low_water_mark_pfn": mark,
            "ptp_pages": sum(
                z.num_pages for z in self.layout.zones_of(ZoneId.PTP)
            ),
            "zones": [
                {
                    "name": z.name,
                    "start_pfn": z.start_pfn,
                    "end_pfn": z.end_pfn,
                    "pt_level": z.pt_level,
                }
                for z in self.layout.zones
            ],
        }


# -- named configurations (CLI / golden verdicts) ---------------------------
def _stock_config() -> KernelConfig:
    return KernelConfig(
        total_bytes=32 * MIB,
        row_bytes=16 * 1024,
        num_banks=2,
        cell_interleave_rows=32,
    )


def _cta_config(**cta_kwargs: Any) -> KernelConfig:
    return KernelConfig(
        total_bytes=32 * MIB,
        row_bytes=16 * 1024,
        num_banks=2,
        cell_interleave_rows=32,
        cta=CtaConfig(ptp_bytes=2 * MIB, **cta_kwargs),
    )


#: Named configurations ``repro verify`` accepts. ``cta`` is single-zone
#: CTA (the default deployment), ``cta-multilevel`` the Section 7
#: per-level scheme, ``cta-anticell`` the low-water-mark-only ablation.
NAMED_CONFIGS: Dict[str, Any] = {
    "stock": _stock_config,
    "cta": lambda: _cta_config(),
    "cta-multilevel": lambda: _cta_config(multilevel=True),
    "cta-anticell": lambda: _cta_config(cell_aware=False),
}


def named_config(name: str) -> KernelConfig:
    """Look up a named verification configuration."""
    try:
        builder = NAMED_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown config {name!r} "
            f"(choose from {', '.join(sorted(NAMED_CONFIGS))})"
        ) from None
    return builder()


# -- the checks -------------------------------------------------------------
def _hosted_levels(zone: MemoryZone) -> Tuple[int, ...]:
    """Page-table levels a PTP (sub-)zone may host."""
    if zone.pt_level == 0:
        return tuple(range(1, NUM_LEVELS + 1))
    return (zone.pt_level,)


def _check_rule1(view: StaticLayout) -> CheckResult:
    """Rule 1: PTP requests are served from ZONE_PTP only, per level."""
    layout = view.layout
    mark = layout.low_water_mark_pfn
    if mark is None:
        normal = [z for z in layout.zones if z.zone_id is not ZoneId.PTP]
        sample = normal[-1]
        return CheckResult(
            check="rule1-containment",
            verdict=Verdict.UNSAFE,
            detail=(
                "layout has no ZONE_PTP: page-table allocations fall back to "
                "ordinary zones beside attacker-reachable memory"
            ),
            witness=Witness(
                summary=(
                    f"pte_alloc_one served from {sample.name} "
                    f"(pfns [{sample.start_pfn}, {sample.end_pfn}))"
                ),
                steps=(
                    {
                        "event": "allocation",
                        "zone": sample.name,
                        "start_pfn": sample.start_pfn,
                        "end_pfn": sample.end_pfn,
                    },
                ),
            ),
        )
    for level in range(1, NUM_LEVELS + 1):
        zonelist = layout.zonelist_for(GFP_PTP, pt_level=level)
        if not zonelist:
            return CheckResult(
                check="rule1-containment",
                verdict=Verdict.UNSAFE,
                detail=f"no PTP zone serves page-table level {level}",
                witness=Witness(
                    summary=f"GFP_PTP zonelist for level {level} is empty"
                ),
            )
        for zone in zonelist:
            if zone.zone_id is not ZoneId.PTP or zone.start_pfn < mark:
                return CheckResult(
                    check="rule1-containment",
                    verdict=Verdict.UNSAFE,
                    detail=(
                        f"PTP request for level {level} can be served from "
                        f"{zone.name} below the low water mark"
                    ),
                    witness=Witness(
                        summary=f"{zone.name} in the GFP_PTP zonelist",
                        steps=(
                            {
                                "event": "fallback",
                                "zone": zone.name,
                                "start_pfn": zone.start_pfn,
                                "low_water_mark_pfn": mark,
                            },
                        ),
                    ),
                )
    return CheckResult(
        check="rule1-containment",
        verdict=Verdict.SAFE,
        detail=(
            "every GFP_PTP zonelist (all levels) contains only ZONE_PTP "
            f"sub-zones at or above the low water mark (pfn {mark})"
        ),
    )


def _check_rule2(view: StaticLayout) -> CheckResult:
    """Rule 2: ordinary allocations never reach ZONE_PTP; gaps are holes."""
    layout = view.layout
    mark = layout.low_water_mark_pfn
    if mark is None:
        shared = layout.zones[-1]
        return CheckResult(
            check="rule2-containment",
            verdict=Verdict.UNSAFE,
            detail=(
                "layout has no ZONE_PTP: user data and page tables share "
                "the ordinary zones"
            ),
            witness=Witness(
                summary=(
                    f"user pages and page tables co-resident in {shared.name}"
                ),
                steps=(
                    {
                        "event": "co-residency",
                        "zone": shared.name,
                        "start_pfn": shared.start_pfn,
                        "end_pfn": shared.end_pfn,
                    },
                ),
            ),
        )
    ordinary_flags = (
        GFP_USER,
        GFP_KERNEL,
        GfpFlags.KERNEL | GfpFlags.DMA32,
        GfpFlags.KERNEL | GfpFlags.DMA,
    )
    for flags in ordinary_flags:
        for zone in layout.zonelist_for(flags):
            if zone.zone_id is ZoneId.PTP:
                return CheckResult(
                    check="rule2-containment",
                    verdict=Verdict.UNSAFE,
                    detail=f"ordinary zonelist ({flags}) reaches {zone.name}",
                    witness=Witness(
                        summary=f"{zone.name} reachable by non-PTP allocation"
                    ),
                )
    for zone in layout.zones_of(ZoneId.PTP):
        if zone.start_pfn < mark:
            return CheckResult(
                check="rule2-containment",
                verdict=Verdict.UNSAFE,
                detail=f"PTP sub-zone {zone.name} dips below the mark",
                witness=Witness(
                    summary=f"{zone.name} starts at pfn {zone.start_pfn} < {mark}"
                ),
            )
    if view.policy is not None:
        for start, end in view.policy.anti_cell_ranges:
            probe = start >> PAGE_SHIFT
            zone = layout.zone_of_pfn(probe)
            if zone is not None:
                return CheckResult(
                    check="rule2-containment",
                    verdict=Verdict.UNSAFE,
                    detail=(
                        f"anti-cell gap pfn {probe} is allocatable from "
                        f"{zone.name}; invalid capacity must stay unzoned"
                    ),
                    witness=Witness(
                        summary=f"anti-cell pfn {probe} inside {zone.name}"
                    ),
                )
    return CheckResult(
        check="rule2-containment",
        verdict=Verdict.SAFE,
        detail=(
            "no ordinary zonelist reaches ZONE_PTP; all PTP sub-zones lie "
            "above the mark and anti-cell gaps are unzoned holes"
        ),
    )


def _check_monotonic(view: StaticLayout) -> CheckResult:
    """True-cell orientation of every row backing ZONE_PTP."""
    if view.policy is None:
        return CheckResult(
            check="monotonic-orientation",
            verdict=Verdict.UNSAFE,
            detail=(
                "no CTA policy: page tables land in arbitrary rows, where "
                "anti-cell flips move frame pointers upward"
            ),
            witness=Witness(
                summary="page-table frames allocatable in anti-cell rows"
            ),
        )
    row_bytes = view.geometry.row_bytes
    for start, end in view.policy.true_cell_ranges:
        for row in range(start // row_bytes, (end + row_bytes - 1) // row_bytes):
            if view.cell_map.type_of_row(row) is not CellType.TRUE:
                pfn = (row * row_bytes) >> PAGE_SHIFT
                return CheckResult(
                    check="monotonic-orientation",
                    verdict=Verdict.UNSAFE,
                    detail=(
                        f"ZONE_PTP row {row} is anti-cell: a flip there sets "
                        "pointer bits (0 -> 1), breaking monotonicity"
                    ),
                    witness=Witness(
                        summary=f"anti-cell row {row} backs PTP pfn {pfn}",
                        steps=(
                            {
                                "event": "orientation",
                                "row": row,
                                "cell_type": "anti",
                                "pfn": pfn,
                            },
                        ),
                    ),
                )
    return CheckResult(
        check="monotonic-orientation",
        verdict=Verdict.SAFE,
        detail=(
            "every ZONE_PTP row is true-cell: stored frame pointers can only "
            "flip 1 -> 0 (monotonically downward)"
        ),
    )


def _host_ranges(view: StaticLayout) -> Dict[int, List[Tuple[int, int]]]:
    """Per-level pfn ranges where a genuine table of that level may live."""
    hosts: Dict[int, List[Tuple[int, int]]] = {
        level: [] for level in range(1, NUM_LEVELS + 1)
    }
    for zone in view.layout.zones_of(ZoneId.PTP):
        for level in _hosted_levels(zone):
            hosts[level].append((zone.start_pfn, zone.end_pfn))
    return hosts


def _levels_hosting_pfn(view: StaticLayout, pfn: int) -> Tuple[int, ...]:
    """Levels a landing pfn may genuinely host (empty = not a PTP pfn)."""
    zone = view.layout.zone_of_pfn(pfn)
    if zone is None or zone.zone_id is not ZoneId.PTP:
        return ()
    return _hosted_levels(zone)


def _check_no_self_reference(view: StaticLayout) -> CheckResult:
    """The NSR model check over all reachable placements.

    Walk states are (interpreted level I, actual occupant); uncorrupted
    descent keeps I == actual. With at most one monotonic corruption per
    path, the reachable post-corruption states from (s, s) are
    (s-1, B) for every level B that some strict submask of some genuine
    level-(s-1) pointer may host. The violating state — a genuine table
    of level >= 2 interpreted at level 1 — is reachable iff some
    corruption lands at B >= s: subsequent uncorrupted descent then
    reads a level-(B - s + 2) table as the leaf PT. Leaf-pointer
    corruption (s == 1) is structurally safe under monotonicity: a
    submask is never larger than the original, so a below-mark pointer
    stays below the mark (the indicator-bit theorem).
    """
    layout = view.layout
    mark = layout.low_water_mark_pfn
    if mark is None:
        return CheckResult(
            check="no-self-reference",
            verdict=Verdict.UNSAFE,
            detail=(
                "no ZONE_PTP: page tables share zones (and anti-cell rows) "
                "with attacker memory, so a single upward flip can point a "
                "PTE at another page-table frame"
            ),
            witness=Witness(
                summary=(
                    "PTE and page-table frames co-resident in ordinary zones; "
                    "bidirectional flips reach page-table pfns"
                ),
                steps=(
                    {
                        "event": "corruption",
                        "direction": "0 -> 1 (anti-cell)",
                        "effect": "leaf PTE redirected onto a page-table frame",
                    },
                ),
            ),
        )
    monotonic = _check_monotonic(view)
    if monotonic.verdict is not Verdict.SAFE:
        # Bidirectional corruption inside ZONE_PTP: an upward flip in any
        # leaf PTE below the mark can re-enter the PTP region directly.
        ptp_zone = layout.zones_of(ZoneId.PTP)[-1]
        target = ptp_zone.start_pfn
        return CheckResult(
            check="no-self-reference",
            verdict=Verdict.UNSAFE,
            detail=(
                "ZONE_PTP includes anti-cell rows, so pointer corruption is "
                "bidirectional: an upward flip lifts a below-mark leaf PTE "
                "into the PTP region — a PTE pointing at page-table memory"
            ),
            witness=Witness(
                summary=(
                    f"0 -> 1 flip raises a leaf PTE to pfn {target} inside "
                    f"{ptp_zone.name}"
                ),
                steps=(
                    {
                        "event": "corruption",
                        "direction": "0 -> 1 (anti-cell)",
                        "landing_pfn": target,
                        "landing_zone": ptp_zone.name,
                    },
                ),
            ),
        )
    hosts = _host_ranges(view)
    enumerated = sum(
        end - start for ranges in hosts.values() for start, end in ranges
    )
    if enumerated > MAX_ENUMERATED_PFNS:
        return CheckResult(
            check="no-self-reference",
            verdict=Verdict.UNKNOWN,
            detail=(
                f"placement space of {enumerated} pfns exceeds the "
                f"exhaustive-enumeration bound ({MAX_ENUMERATED_PFNS}); "
                "refusing to answer partially"
            ),
        )
    # Corruption at interpreted level s (2..NUM_LEVELS): the walk holds a
    # genuine level-s table whose entries point at level-(s-1) tables.
    # Prefer s == 2 (PD entry) so the emitted counterexample matches the
    # runtime sanitizer's level-confusion narrative.
    for s in range(2, NUM_LEVELS + 1):
        for start, end in hosts[s - 1]:
            for p in range(start, end):
                landing = _violating_landing(view, p, minimum_level=s)
                if landing is None:
                    continue
                bit, landed, hosted = landing
                confused = hosted - s + 2
                return CheckResult(
                    check="no-self-reference",
                    verdict=Verdict.UNSAFE,
                    detail=(
                        "single-zone ZONE_PTP hosts every level at every "
                        "pfn: one monotonic flip in a "
                        f"{_LEVEL_NAMES[s]} entry redirects it onto a pfn "
                        f"that may host a level-{hosted} table; the walk "
                        "reads it one level down, and a genuine "
                        f"{_LEVEL_NAMES[confused]} of level {confused} is "
                        "interpreted as the leaf PT — its page-table "
                        "pointers become user-visible PTEs"
                    ),
                    witness=_nsr_witness(s, p, bit, landed, hosted),
                )
    detail = (
        "per-level PTP zones are strictly ordered (level L above level "
        "L-1) and pointers are monotonic, so a corrupted pointer only "
        "lands at levels below the one the walk expects: the actual "
        "table level never exceeds the interpreted level, and no walk "
        "reads a level >= 2 table as the leaf PT; corrupted leaf "
        "pointers stay below the low water mark (submasks never grow — "
        "the indicator-bit theorem)"
        if any(z.pt_level for z in layout.zones_of(ZoneId.PTP))
        else
        "no strict submask of any reachable page-table pointer lands on "
        "a pfn hosting a same-or-higher-level table, so level confusion "
        "is unreachable and corrupted leaf pointers stay below the mark"
    )
    return CheckResult(
        check="no-self-reference",
        verdict=Verdict.SAFE,
        detail=detail,
    )


def _violating_landing(
    view: StaticLayout, pointer: int, minimum_level: int
) -> Optional[Tuple[int, int, int]]:
    """A strict-submask landing of ``pointer`` hostable at >= ``minimum_level``.

    Returns ``(cleared_bit, landing_pfn, hosted_level)`` or ``None``.
    """
    for zone in view.layout.zones_of(ZoneId.PTP):
        hostable = [lv for lv in _hosted_levels(zone) if lv >= minimum_level]
        if not hostable:
            continue
        found = strict_submask_witness(
            pointer, zone.start_pfn, zone.end_pfn - 1
        )
        if found is not None:
            bit, landed = found
            return (bit, landed, min(hostable))
    return None


def _nsr_witness(s: int, pointer: int, bit: int, landed: int, hosted: int) -> Witness:
    """The concrete level-confusion counterexample trace."""
    confused = hosted - s + 2
    return Witness(
        summary=(
            f"level-{s} ({_LEVEL_NAMES[s]}) entry -> pfn {pointer:#x}; "
            f"1 -> 0 flip clears bit {bit} -> pfn {landed:#x}, hostable as a "
            f"level-{hosted} table; walk confuses it for level {s - 1} and "
            f"reads a genuine {_LEVEL_NAMES[confused]} as the leaf PT"
        ),
        steps=(
            {
                "event": "walk",
                "interpreted_level": s,
                "occupant": f"level-{s} table ({_LEVEL_NAMES[s]})",
                "entry_target_pfn": pointer,
            },
            {
                "event": "corruption",
                "direction": "1 -> 0 (true-cell, monotonic)",
                "cleared_bit": bit,
                "source_pfn": pointer,
                "landing_pfn": landed,
            },
            {
                "event": "level-confusion",
                "interpreted_level": s - 1,
                "occupant": f"level-{hosted} table",
            },
            {
                "event": "violation",
                "interpreted_level": 1,
                "occupant": f"level-{confused} table ({_LEVEL_NAMES[confused]})",
                "effect": "page-table pointers exposed as leaf PTEs",
            },
        ),
    )


def verify_config(
    config: KernelConfig,
    subject: str = "",
    view: Optional[StaticLayout] = None,
) -> VerificationReport:
    """Model-check a kernel configuration's CTA layout.

    ``view`` short-circuits layout reconstruction for callers that hold a
    booted kernel (``StaticLayout.from_kernel``).
    """
    if view is None:
        view = StaticLayout.from_config(config, name=subject)
    checks = (
        _check_rule1(view),
        _check_rule2(view),
        _check_monotonic(view),
        _check_no_self_reference(view),
    )
    obs.inc("verify.config_checks", len(checks))
    return VerificationReport(
        engine="config",
        subject=subject or view.name or "kernel-config",
        checks=checks,
        facts=view.describe(),
    )
