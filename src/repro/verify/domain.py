"""Abstract domains shared by the two verification engines.

- :class:`Interval` — integer intervals for per-row activation counts
  (join/add/scale, the usual lattice operations).
- :class:`RowSet` — a finite set of concrete rows plus a "may touch any
  user row" top element, for touched-row abstraction where virtual lists
  resolve through the config's address-space model.
- Submask arithmetic (:func:`max_submask_le`, :func:`has_submask_in`,
  :func:`has_strict_submask_in`) — the reachability primitive of the
  No-Self-Reference model checker. A *monotonic* RowHammer corruption of
  a true-cell pointer can only clear bits (1 -> 0), so the reachable
  corrupted values of a pointer ``p`` are exactly the submasks of ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (the count abstraction)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise AnalysisError(f"empty interval [{self.lo}, {self.hi}]")

    @classmethod
    def point(cls, value: int) -> "Interval":
        """The singleton interval ``[value, value]``."""
        return cls(value, value)

    def add(self, other: "Interval") -> "Interval":
        """Sequential composition: counts add."""
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, count: int) -> "Interval":
        """A loop executing the body exactly ``count`` times."""
        return Interval(self.lo * count, self.hi * count)

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (union hull) of two intervals."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, value: int) -> bool:
        """Whether a concrete count lies in the interval."""
        return self.lo <= value <= self.hi

    def to_list(self) -> List[int]:
        """JSON rendering: ``[lo, hi]``."""
        return [self.lo, self.hi]


ZERO = Interval(0, 0)


def add_counts(
    left: Dict[int, Interval], right: Dict[int, Interval]
) -> Dict[int, Interval]:
    """Pointwise sequential composition of per-row count maps."""
    result = dict(left)
    for row, interval in right.items():
        existing = result.get(row)
        result[row] = interval if existing is None else existing.add(interval)
    return result


def scale_counts(counts: Dict[int, Interval], count: int) -> Dict[int, Interval]:
    """Scale every row's count interval by a loop count."""
    return {row: interval.scale(count) for row, interval in counts.items()}


@dataclass(frozen=True)
class RowSet:
    """Touched-row abstraction: concrete rows, plus an any-user-row top.

    ``user_top`` set means the payload may additionally touch *any* row
    an ordinary (non-PTP) allocation can land in — how virtual-address
    accesses are abstracted, since demand paging picks frames from the
    ordinary zonelists (Rule 2 keeps them out of ZONE_PTP).
    """

    rows: FrozenSet[int] = frozenset()
    user_top: bool = False

    def union(self, other: "RowSet") -> "RowSet":
        """Join of two touched-row abstractions."""
        return RowSet(self.rows | other.rows, self.user_top or other.user_top)

    def with_rows(self, rows: FrozenSet[int]) -> "RowSet":
        """Add concrete rows."""
        return RowSet(self.rows | rows, self.user_top)

    def contains(self, row: int, user_rows: FrozenSet[int]) -> bool:
        """Whether a concrete touched row is covered by the abstraction."""
        if row in self.rows:
            return True
        return self.user_top and row in user_rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON rendering."""
        return {"rows": sorted(self.rows), "user_top": self.user_top}


# -- submask (monotonic-corruption) arithmetic ------------------------------
def max_submask_le(value: int, bound: int) -> Optional[int]:
    """The largest submask of ``value`` that is ``<= bound``.

    A submask ``m`` of ``value`` satisfies ``m & value == m`` — the
    reachable set of a monotonic 1 -> 0 corruption. Greedy from the high
    bit: include each set bit of ``value`` iff doing so stays ``<=
    bound``. Returns ``None`` when no submask qualifies (only when
    ``bound < 0``, since 0 is a submask of everything).
    """
    if bound < 0:
        return None
    result = 0
    for bit in reversed(range(max(value.bit_length(), 1))):
        mask = 1 << bit
        if value & mask and result | mask <= bound:
            result |= mask
    return result


def has_submask_in(value: int, lo: int, hi: int) -> bool:
    """Whether any submask of ``value`` lies in ``[lo, hi]`` (inclusive).

    Holds iff the largest submask ``<= hi`` is still ``>= lo`` — the
    greedy maximum dominates every other in-bound submask.
    """
    if lo > hi:
        return False
    best = max_submask_le(value, hi)
    return best is not None and best >= lo


def has_strict_submask_in(value: int, lo: int, hi: int) -> bool:
    """Whether a *strict* submask of ``value`` (>= one bit cleared) lies
    in ``[lo, hi]``.

    Every strict submask of ``value`` is a submask of ``value`` with one
    particular set bit cleared, so it suffices to test each single-bit
    clearing with :func:`has_submask_in`.
    """
    bit = 0
    remaining = value
    while remaining:
        if remaining & 1 and has_submask_in(value & ~(1 << bit), lo, hi):
            return True
        remaining >>= 1
        bit += 1
    return False


def strict_submask_witness(
    value: int, lo: int, hi: int
) -> Optional[Tuple[int, int]]:
    """A concrete ``(cleared_bit, landing_value)`` for
    :func:`has_strict_submask_in`, or ``None``.

    Prefers the single-bit-flip witness (exactly one bit cleared) when
    one exists — the physically cheapest corruption — falling back to
    the greedy multi-bit submask.
    """
    candidates: List[Tuple[int, int]] = []
    bit = 0
    remaining = value
    while remaining:
        if remaining & 1:
            single = value & ~(1 << bit)
            if lo <= single <= hi:
                return (bit, single)
            best = max_submask_le(single, hi)
            if best is not None and best >= lo:
                candidates.append((bit, best))
        remaining >>= 1
        bit += 1
    return candidates[0] if candidates else None
