"""The shared verdict/witness format both verification engines emit.

A verification run produces a :class:`VerificationReport`: an ordered
list of named checks, each :data:`SAFE`, :data:`UNSAFE`, or
:data:`UNKNOWN`. ``UNSAFE`` checks carry a :class:`Witness` — a concrete
trace (list of structured steps) demonstrating the violation, e.g. the
single-zone level-confusion counterexample or the instruction path that
activates a ZONE_PTP-adjacent row.

Verdict semantics (the soundness contract):

``SAFE``
    The property holds for *every* behaviour in the abstraction — a
    proof, not an observation. A SAFE verdict contradicted by a dynamic
    run is a soundness bug (the ``verify.unsound`` canary).
``UNSAFE``
    A concrete counterexample exists *in the model*; the witness shows
    it. The modelled behaviour may still be probabilistic at runtime
    (a flip threshold crossed does not guarantee a flip).
``UNKNOWN``
    The abstraction cannot decide (e.g. a state space past the
    exhaustive-enumeration bound). Never silently treated as SAFE;
    ``--strict`` promotes it to a failure.

Reports serialise to stable JSON (sorted keys) so golden files under
``tests/data/verdicts/`` can be diffed byte-for-byte in CI.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


class Verdict(enum.Enum):
    """Outcome of one static check."""

    SAFE = "SAFE"
    UNSAFE = "UNSAFE"
    UNKNOWN = "UNKNOWN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Severity order for aggregating checks into one overall verdict.
_SEVERITY = {Verdict.SAFE: 0, Verdict.UNKNOWN: 1, Verdict.UNSAFE: 2}


@dataclass(frozen=True)
class Witness:
    """A concrete counterexample trace backing an UNSAFE verdict.

    ``steps`` is an ordered list of structured events; each step is a
    flat mapping of JSON-able values (ints, strings). ``summary`` is the
    one-line human rendering the CLI prints.
    """

    summary: str
    steps: Tuple[Mapping[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation with stable step ordering."""
        return {
            "summary": self.summary,
            "steps": [dict(sorted(step.items())) for step in self.steps],
        }


@dataclass(frozen=True)
class CheckResult:
    """One named check: verdict, explanation, optional witness."""

    check: str
    verdict: Verdict
    detail: str
    witness: Optional[Witness] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        data: Dict[str, Any] = {
            "check": self.check,
            "verdict": self.verdict.value,
            "detail": self.detail,
        }
        data["witness"] = None if self.witness is None else self.witness.to_dict()
        return data


@dataclass(frozen=True)
class VerificationReport:
    """All checks for one subject (a payload digest or a config name).

    ``facts`` carries engine-specific derived data worth surfacing
    (per-row activation bounds, zone counts, ...) — stable JSON, purely
    informational, never part of the verdict aggregation.
    """

    engine: str
    subject: str
    checks: Tuple[CheckResult, ...]
    facts: Mapping[str, Any] = field(default_factory=dict)

    @property
    def overall(self) -> Verdict:
        """Worst verdict across all checks (SAFE < UNKNOWN < UNSAFE)."""
        worst = Verdict.SAFE
        for check in self.checks:
            if _SEVERITY[check.verdict] > _SEVERITY[worst]:
                worst = check.verdict
        return worst

    def unsafe_checks(self) -> List[CheckResult]:
        """The checks that found a counterexample."""
        return [c for c in self.checks if c.verdict is Verdict.UNSAFE]

    def unknown_checks(self) -> List[CheckResult]:
        """The checks the abstraction could not decide."""
        return [c for c in self.checks if c.verdict is Verdict.UNKNOWN]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable ordering throughout)."""
        return {
            "engine": self.engine,
            "subject": self.subject,
            "overall": self.overall.value,
            "checks": [c.to_dict() for c in self.checks],
            "facts": _stable(self.facts),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Stable JSON rendering (the golden-file / ``--json`` format)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format_text(self) -> str:
        """The CLI's human rendering: one line per check plus witnesses."""
        lines = [f"{self.engine} verification of {self.subject}: {self.overall.value}"]
        for check in self.checks:
            lines.append(f"  [{check.verdict.value:7s}] {check.check}: {check.detail}")
            if check.witness is not None:
                lines.append(f"    witness: {check.witness.summary}")
                for step in check.witness.steps:
                    rendered = ", ".join(
                        f"{key}={value}" for key, value in sorted(step.items())
                    )
                    lines.append(f"      - {rendered}")
        return "\n".join(lines)


def _stable(value: Any) -> Any:
    """Recursively convert mappings/sequences into JSON-stable structures."""
    if isinstance(value, Mapping):
        return {str(k): _stable(v) for k, v in sorted(value.items(), key=lambda i: str(i[0]))}
    if isinstance(value, (list, tuple)):
        return [_stable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_stable(v) for v in value)
    return value


def worst_of(verdicts: Sequence[Verdict]) -> Verdict:
    """Aggregate verdicts by severity; empty input is SAFE (no checks failed)."""
    worst = Verdict.SAFE
    for verdict in verdicts:
        if _SEVERITY[verdict] > _SEVERITY[worst]:
            worst = verdict
    return worst
