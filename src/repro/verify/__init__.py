"""Static verification: payload abstract interpretation + CTA model checking.

Two engines share one verdict/witness format (:mod:`repro.verify.verdict`):

:mod:`repro.verify.payload`
    A sound abstract interpreter over :mod:`repro.payload.ir` programs.
    Its domains are row *sets* (which physical rows each named address
    list can ACT, with virtual lists resolved through a config-derived
    address-space abstraction) and per-row activation-count *intervals*
    segmented by refresh-phase alignment. From those it derives payload
    verdicts: "cannot activate any row adjacent to ZONE_PTP", "peak
    activations per 64 ms refresh window below the flip threshold",
    "ACT/PRE discipline holds on all loop paths".

:mod:`repro.verify.config`
    A model checker over a ``KernelConfig`` x ``DramGeometry`` layout:
    Rule 1/2 zone containment, true-cell monotonic-pointer orientation,
    and the No-Self-Reference property over *all* reachable page-table
    placements under a single monotonic (1 -> 0, submask) pointer
    corruption — statically reproducing what :mod:`repro.sanitize` can
    only catch at runtime, including the single-zone level-confusion
    counterexample.

The soundness contract (checked by the hypothesis differential suite in
``tests/test_verify_soundness_fuzz.py`` via :mod:`repro.verify.observe`):
for any valid payload, the dynamically observed per-row activation
counts and touched row sets are contained in the static bounds, with the
fault plane armed and disarmed. A containment breach increments the
``verify.unsound`` canary counter, which tests assert is zero.
"""

from repro.verify.config import (
    NAMED_CONFIGS,
    StaticLayout,
    named_config,
    verify_config,
)
from repro.verify.observe import ObservedBehavior, check_containment, observe_payload
from repro.verify.payload import (
    DEFAULT_FLIP_THRESHOLD,
    WINDOW_ACT_CAPACITY,
    AddressSpaceModel,
    PayloadAnalysis,
    analyze_payload,
    verify_payload,
)
from repro.verify.prefilter import (
    BatchReport,
    execute_batch,
    is_provably_harmless,
    payload_verdict_summary,
)
from repro.verify.verdict import CheckResult, VerificationReport, Verdict, Witness

__all__ = [
    "AddressSpaceModel",
    "BatchReport",
    "CheckResult",
    "DEFAULT_FLIP_THRESHOLD",
    "NAMED_CONFIGS",
    "ObservedBehavior",
    "PayloadAnalysis",
    "StaticLayout",
    "Verdict",
    "VerificationReport",
    "WINDOW_ACT_CAPACITY",
    "Witness",
    "analyze_payload",
    "check_containment",
    "execute_batch",
    "is_provably_harmless",
    "named_config",
    "observe_payload",
    "payload_verdict_summary",
    "verify_config",
    "verify_payload",
]
