"""repro.sanitize — runtime invariant sanitizers (KASAN/lockdep-style).

The paper's security argument rests on invariants that are otherwise only
exercised incidentally by tests: buddy-heap consistency, ZONE_PTP
containment above the low water mark, monotonicity of PTE pointers stored
in true-cells, and the No-Self-Reference property. This package makes the
simulated kernel *continuously self-checking*: instrumented layers call
:func:`notify` on every mutation, and registered :class:`Sanitizer`
checkers validate the invariant right there, raising
:class:`~repro.errors.SanitizerError` at the first violation — the same
"fail at the faulting instruction" model KASAN and lockdep use.

Mirrors the :mod:`repro.obs` design: a process-wide default
:class:`SanitizerSuite`, module-level helpers that resolve it at call
time, and a cheap no-op path — a disabled suite turns every
:func:`notify` into one attribute check and an early return, so the hooks
can stay unconditionally in hot simulator loops.

Usage::

    from repro import sanitize

    suite = sanitize.install(kernel, hammer=hammer)   # register + enable
    ...  # run workloads/attacks; violations raise SanitizerError
    suite.check_now()                                 # full offline sweep
    sanitize.reset()                                  # back to disabled

The static half of the package lives in :mod:`repro.sanitize.lint` (the
``repro lint`` AST rule pack); the runtime checkers in
:mod:`repro.sanitize.checkers`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, NoReturn, Optional, Tuple

from repro import faults, obs
from repro.errors import SanitizerError

if TYPE_CHECKING:
    from repro.dram.rowhammer import RowHammerModel
    from repro.kernel.kernel import Kernel

__all__ = [
    "Sanitizer",
    "SanitizerSuite",
    "get_suite",
    "set_suite",
    "reset",
    "enable",
    "disable",
    "enabled",
    "notify",
    "install",
    "uninstall",
]


class Sanitizer:
    """Base class for one pluggable invariant checker.

    Subclasses set :attr:`name` (used in violation reports and the
    ``sanitize.*`` metrics) and :attr:`events` (the notification events
    they subscribe to), and implement :meth:`handle`. Checkers bound to a
    specific object (a kernel, an allocator) must ignore events whose
    context carries a different object — several kernels can coexist in
    one process and the suite fans every event out to all subscribers.
    """

    #: Checker identifier used in error messages and metric labels.
    name: str = "sanitizer"
    #: Event names this checker subscribes to.
    events: Tuple[str, ...] = ()

    def handle(self, event: str, ctx: Mapping[str, object]) -> None:
        """Validate one mutation event; raise via :meth:`violation` on failure."""
        raise NotImplementedError

    def check_all(self) -> None:
        """Full (possibly expensive) validation of the guarded invariant.

        Called by :meth:`SanitizerSuite.check_now`; the default is a no-op
        so purely event-driven checkers need not override it.
        """

    def violation(self, message: str, event: str = "") -> NoReturn:
        """Record and raise a :class:`SanitizerError` for this checker."""
        obs.inc("sanitize.violations", checker=self.name)
        obs.trace("sanitize.violation", checker=self.name, event=event)
        raise SanitizerError(message, checker=self.name, event=event)

    def acknowledge_downgrade(self) -> None:
        """Count a would-be violation excused by an explicit downgrade.

        Used by checkers whose invariant is deliberately relaxed for
        frames the screened-fallback exhaustion policy granted (see
        :mod:`repro.kernel.degrade`) — the event is counted under
        ``sanitize.acknowledged_downgrades``, not raised.
        """
        obs.inc("sanitize.acknowledged_downgrades", checker=self.name)


class SanitizerSuite:
    """A set of registered checkers plus the event dispatch fabric.

    Starts disabled: :func:`notify` is a no-op until :meth:`enable` (which
    :func:`install` calls for you). ``checks`` / ``violations`` count
    dispatched validations and raised violations for reporting.
    """

    def __init__(self) -> None:
        self._checkers: List[Sanitizer] = []
        self._by_event: Dict[str, List[Sanitizer]] = {}
        self._enabled = False
        #: Total checker invocations (event handlers + full sweeps).
        self.checks = 0
        #: Total violations raised through this suite's checkers.
        self.violations = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether events are dispatched to checkers."""
        return self._enabled

    def enable(self) -> None:
        """Start dispatching events."""
        self._enabled = True

    def disable(self) -> None:
        """Stop dispatching events (hooks become no-ops)."""
        self._enabled = False

    @property
    def checkers(self) -> Tuple[Sanitizer, ...]:
        """Registered checkers, in registration order."""
        return tuple(self._checkers)

    def register(self, checker: Sanitizer) -> Sanitizer:
        """Add ``checker`` and subscribe it to its events; returns it."""
        self._checkers.append(checker)
        for event in checker.events:
            self._by_event.setdefault(event, []).append(checker)
        return checker

    # -- dispatch ----------------------------------------------------------
    def dispatch(self, event: str, ctx: Mapping[str, object]) -> None:
        """Fan one event out to every subscribed checker."""
        for checker in self._by_event.get(event, ()):
            self.checks += 1
            obs.inc("sanitize.checks", checker=checker.name, event=event)
            try:
                checker.handle(event, ctx)
            except SanitizerError:
                self.violations += 1
                raise

    def check_now(self) -> None:
        """Run every checker's full validation pass immediately."""
        for checker in self._checkers:
            self.checks += 1
            obs.inc("sanitize.checks", checker=checker.name, event="check_all")
            try:
                checker.check_all()
            except SanitizerError:
                self.violations += 1
                raise


_default_suite = SanitizerSuite()


def get_suite() -> SanitizerSuite:
    """The process-wide default suite."""
    return _default_suite


def set_suite(suite: SanitizerSuite) -> SanitizerSuite:
    """Install ``suite`` as the default; returns it (for chaining)."""
    global _default_suite
    _default_suite = suite
    return suite


def reset() -> SanitizerSuite:
    """Replace the default suite with a fresh, disabled one."""
    return set_suite(SanitizerSuite())


def enable() -> None:
    """Turn default-suite dispatch on."""
    _default_suite.enable()


def disable() -> None:
    """Turn default-suite dispatch off (no-op path)."""
    _default_suite.disable()


def enabled() -> bool:
    """Whether default-suite dispatch is on."""
    return _default_suite.enabled


def notify(event: str, **ctx: object) -> None:
    """Report one mutation event to the default suite.

    This is the hook instrumented layers call unconditionally; when the
    suite is disabled it costs one attribute check and an early return.
    Events are offered to the fault-injection plane (:mod:`repro.faults`)
    *before* the checkers see them, so sanitizers validate the perturbed
    state rather than the pristine one.
    """
    plane = faults._default_plane
    if plane._armed:
        plane.dispatch(event, ctx)
    suite = _default_suite
    if not suite._enabled:
        return
    suite.dispatch(event, ctx)


def install(
    kernel: "Kernel",
    hammer: Optional["RowHammerModel"] = None,
    full_every: int = 64,
) -> SanitizerSuite:
    """Register the standard checker set for ``kernel`` and enable the suite.

    Adds one :class:`~repro.sanitize.checkers.BuddyHeapSanitizer` per
    zone allocator and a
    :class:`~repro.sanitize.checkers.ZoneContainmentSanitizer`; on CTA
    kernels additionally a
    :class:`~repro.sanitize.checkers.MonotonicPointerSanitizer` and a
    :class:`~repro.sanitize.checkers.NoSelfReferenceSanitizer` (both are
    defined in terms of ZONE_PTP, so they have nothing to guard on stock
    kernels). ``hammer`` is accepted for symmetry/forward-compat; flip
    events carry the mutated module, which is how checkers filter.
    ``full_every`` bounds how often the buddy checkers run their full
    (expensive) invariant sweep.
    """
    from repro.sanitize.checkers import (
        BuddyHeapSanitizer,
        MonotonicPointerSanitizer,
        NoSelfReferenceSanitizer,
        ZoneContainmentSanitizer,
    )

    suite = _default_suite
    for zone in kernel.layout.zones:
        suite.register(
            BuddyHeapSanitizer(kernel.allocator_for_zone(zone), full_every=full_every)
        )
    suite.register(ZoneContainmentSanitizer(kernel))
    if kernel.cta_enabled:
        suite.register(MonotonicPointerSanitizer(kernel))
        suite.register(NoSelfReferenceSanitizer(kernel))
    suite.enable()
    return suite


def uninstall() -> None:
    """Drop every registered checker and disable dispatch."""
    reset()
