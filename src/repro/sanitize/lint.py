"""``repro lint`` — the repo-specific AST rule pack (stdlib ``ast`` only).

Static enforcement of the simulator's contracts, so violations are caught
before anything runs:

=======  =====================================================================
rule     contract enforced
=======  =====================================================================
RL001    determinism: no direct ``random`` / ``numpy.random`` use outside the
         :mod:`repro.rng` plumbing — every stochastic component must accept a
         seed through :func:`repro.rng.make_rng`
RL002    no bare ``assert`` in library code — asserts vanish under
         ``python -O``, silently disabling the invariant
RL003    every raised exception derives from :class:`repro.errors.ReproError`
         (or is ``NotImplementedError`` / a re-raise), keeping the error
         taxonomy catchable as one family
RL004    every ``*Attack`` class is registered in ``attacks/registry.py``, so
         the Table 1 catalogue and the benchmarks can enumerate them
RL005    metric/trace names passed to :mod:`repro.obs` helpers match the
         frozen contract in :mod:`repro.obs.contract`, including the metric
         kind (``inc`` -> counter, ``set_gauge`` -> gauge, ``observe`` ->
         histogram)
RL006    fault-plane determinism: :mod:`repro.faults` modules must not import
         ``secrets`` / ``uuid``, call ``os.urandom`` / ``time.time``, or seed
         ``make_rng`` implicitly (no-arg / ``None``) — every fault schedule
         must replay exactly from an explicit seed (``time.monotonic`` is
         fine: it measures budgets, it never feeds a schedule)
RL007    hot-path vectorization: :mod:`repro.dram.rowhammer` must not call
         per-element ``read_bit`` / ``write_bit`` or per-event ``obs.inc``
         inside a loop — use the batched :class:`~repro.dram.module.DramModule`
         primitives (``read_bits`` / ``apply_bit_flips``) and aggregate the
         counter updates (the sanctioned scalar reference path carries
         per-line suppressions)
RL008    batched virtual memory: modules under ``attacks/`` and ``perf/``
         must not call per-address ``translate`` / ``load`` / ``store`` /
         ``touch`` inside a loop — use the batched pipeline
         (:meth:`~repro.kernel.mmu.Mmu.translate_many` / ``load_many`` /
         ``store_many``, :meth:`~repro.kernel.kernel.Kernel.touch_many` /
         ``mmap_touch_many``); the armed-fault-plane and
         ``slow_reference`` scalar paths carry per-line suppressions
RL009    payload-compiled attacks: modules under ``attacks/`` must not call
         ``hammer`` / ``hammer_double_sided`` directly — hammer phases are
         declared as :mod:`repro.payload` programs, compiled, and consumed
         through ``iter_steps`` so the differential harness covers every
         attack's access pattern
RL010    validated payloads: modules under ``attacks/`` must not construct
         ``PayloadProgram`` directly — wrap the constructor in
         ``validate_program(...)`` or build through the
         :mod:`repro.payload.programs` helpers (which validate), so no
         attack can execute a program the IR invariants never saw
RL011    supervised tasks: modules under ``service/`` must not call
         ``asyncio.create_task`` / ``ensure_future`` directly — spawn
         through :func:`repro.service.supervisor.spawn_supervised`, whose
         done-callback records a task that dies with an unconsumed
         exception instead of letting it vanish with the task object
RL012    multi-GB sparsity: modules under ``dram/`` must not allocate numpy
         arrays sized by ``total_rows`` (the sparse row store and the
         procedural :class:`~repro.dram.cells.CellTypeMap` keep a multi-GB
         module O(touched-rows); a dense geometry-proportional allocation
         silently reintroduces the scale ceiling), and ``kernel/mmu.py``
         must not call per-entry ``PageTableEntry.decode`` inside a loop —
         each frontier level decodes as one vectorized
         :func:`~repro.kernel.pagetable.decode_entries` batch (the
         sanctioned ``slow_reference`` walk carries per-line suppressions)
RL013    memoization-key determinism: modules under ``perf/memo`` must not
         read ambient entropy, clocks, or process identity into key material
         — no ``secrets`` / ``uuid`` imports, no ``os.urandom`` /
         ``time.time`` / ``time.time_ns`` / ``os.getpid`` / ``os.getppid`` /
         ``datetime.now`` / ``datetime.utcnow`` calls — and every value
         passed to a ``SegmentKey(...)`` call site must be a plain name /
         attribute or a direct ``digest_of`` / ``derive_seed`` call, so a
         cache key can only be assembled from content digests and derived
         seeds (a literal smuggled into a key field would silently fork the
         cache namespace)
=======  =====================================================================

A finding can be suppressed per line with ``# repro-lint: ignore`` (all
rules) or ``# repro-lint: ignore[RL002]`` (specific rules, comma-separated).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.obs import contract

#: Rule identifiers and their one-line descriptions (mirrored in README).
RULES: Dict[str, str] = {
    "RL001": "no direct random/numpy.random use outside repro.rng",
    "RL002": "no bare assert in library code (vanishes under python -O)",
    "RL003": "all raises must derive from ReproError",
    "RL004": "every *Attack class must be registered in attacks/registry.py",
    "RL005": "obs metric/trace names must match the frozen contract",
    "RL006": "repro.faults must stay deterministic (no ambient entropy/clock)",
    "RL007": "no per-bit read_bit/write_bit/obs.inc loops in repro.dram.rowhammer",
    "RL008": "no per-address translate/load/store/touch loops in attacks/ and perf/",
    "RL009": "attacks/ must hammer via compiled repro.payload programs",
    "RL010": "attacks/ must validate PayloadPrograms (validate_program/helpers)",
    "RL011": "service/ must spawn tasks via spawn_supervised, not create_task",
    "RL012": "no total_rows-sized numpy allocations in dram/; no per-entry PTE decode loops in kernel/mmu.py",
    "RL013": "perf/memo must build SegmentKeys from digests/derived seeds only (no ambient entropy/clock/pid)",
}

#: Module imports RL006 forbids inside :mod:`repro.faults`.
_RL006_FORBIDDEN_IMPORTS = ("secrets", "uuid")

#: Per-element DRAM accessors RL007 forbids inside loops in rowhammer.py.
_RL007_SCALAR_ACCESSORS = ("read_bit", "write_bit")

#: Per-address VM accessors RL008 forbids inside loops in attacks/ and perf/.
_RL008_SCALAR_ACCESSORS = ("translate", "load", "store", "touch")

#: Direct hammer entry points RL009 forbids anywhere in attacks/.
_RL009_HAMMER_CALLS = ("hammer", "hammer_double_sided")

#: Constructor RL010 requires to flow through validate_program in attacks/.
_RL010_PAYLOAD_CTOR = "PayloadProgram"

#: Bare task spawners RL011 forbids in service/ (supervision bypass).
_RL011_BARE_SPAWNERS = ("create_task", "ensure_future")

#: numpy allocators RL012 refuses to see sized by ``total_rows`` in dram/.
_RL012_NP_ALLOCATORS = ("zeros", "ones", "full", "empty", "arange")

#: Call names RL010 accepts as validating wrappers.
_RL010_VALIDATORS = ("validate_program",)

#: Module imports RL013 forbids inside :mod:`repro.perf.memo`.
_RL013_FORBIDDEN_IMPORTS = ("secrets", "uuid")

#: Dotted ambient-state reads RL013 forbids inside :mod:`repro.perf.memo`.
_RL013_FORBIDDEN_CALLS = (
    "os.urandom",
    "time.time",
    "time.time_ns",
    "os.getpid",
    "os.getppid",
    "datetime.now",
    "datetime.utcnow",
)

#: The only call expressions RL013 accepts as SegmentKey field values.
_RL013_KEY_BUILDERS = ("digest_of", "derive_seed")

_IGNORE_MARKER = "# repro-lint: ignore"

#: Helpers whose first argument is a contract-checked metric name.
_OBS_HELPERS = ("inc", "set_gauge", "observe", "trace")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        """``path:line: RULE: message`` — the CLI's output line."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def taxonomy_names() -> FrozenSet[str]:
    """Exception names RL003 accepts: the ReproError family + re-raise escapes."""
    import repro.errors as errors_module

    names = {
        name
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, errors_module.ReproError)
    }
    names.add("NotImplementedError")
    return frozenset(names)


def _ignores_by_line(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule set (None = every rule)."""
    ignores: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        index = text.find(_IGNORE_MARKER)
        if index < 0:
            continue
        rest = text[index + len(_IGNORE_MARKER):].strip()
        if rest.startswith("[") and "]" in rest:
            rules = {r.strip() for r in rest[1 : rest.index("]")].split(",")}
            ignores[lineno] = {r for r in rules if r}
        else:
            ignores[lineno] = None
    return ignores


class _FileLinter(ast.NodeVisitor):
    """Applies the per-file rules (RL001-03, RL05-10) to one module."""

    def __init__(
        self,
        path: str,
        allowed_raises: FrozenSet[str],
        check_rng: bool,
        check_fault_determinism: bool = False,
        check_hot_loops: bool = False,
        check_batched_vm: bool = False,
        check_payload_compiled: bool = False,
        check_payload_validated: bool = False,
        check_supervised_tasks: bool = False,
        check_sparse_dram: bool = False,
        check_frontier_decode: bool = False,
        check_memo_keys: bool = False,
    ):
        self.path = path
        self.allowed_raises = allowed_raises
        self.check_rng = check_rng
        self.check_fault_determinism = check_fault_determinism
        self.check_hot_loops = check_hot_loops
        self.check_batched_vm = check_batched_vm
        self.check_payload_compiled = check_payload_compiled
        self.check_payload_validated = check_payload_validated
        self.check_supervised_tasks = check_supervised_tasks
        self.check_sparse_dram = check_sparse_dram
        self.check_frontier_decode = check_frontier_decode
        self.check_memo_keys = check_memo_keys
        self.findings: List[LintFinding] = []
        #: ``*Attack`` classes defined in this file (collected for RL004).
        self.attack_classes: List[Tuple[str, int]] = []
        #: Current loop nesting depth (for/while/comprehensions), for RL007.
        self._loop_depth = 0
        #: ``PayloadProgram(...)`` call nodes wrapped in validate_program
        #: (sanctioned for RL010; outer calls visit before their args).
        self._sanctioned_payload_ctors: Set[int] = set()

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(rule=rule, path=self.path, line=getattr(node, "lineno", 0), message=message)
        )

    # -- RL001 + RL006: RNG / entropy discipline ---------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if self.check_rng:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random.") or (
                    alias.name == "numpy.random"
                ):
                    self._add(
                        "RL001",
                        node,
                        f"import of {alias.name!r}; route randomness through "
                        "repro.rng.make_rng",
                    )
        if self.check_fault_determinism:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _RL006_FORBIDDEN_IMPORTS:
                    self._add(
                        "RL006",
                        node,
                        f"import of {alias.name!r} in repro.faults; fault "
                        "schedules must derive from explicit seeds only",
                    )
        if self.check_memo_keys:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _RL013_FORBIDDEN_IMPORTS:
                    self._add(
                        "RL013",
                        node,
                        f"import of {alias.name!r} in repro.perf.memo; cache "
                        "keys must derive from content digests only",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.check_rng:
            module = node.module or ""
            if module in ("random", "numpy.random") or module.startswith("random."):
                self._add(
                    "RL001",
                    node,
                    f"import from {module!r}; route randomness through "
                    "repro.rng.make_rng",
                )
            elif module == "numpy" and any(a.name == "random" for a in node.names):
                self._add(
                    "RL001",
                    node,
                    "import of numpy.random; route randomness through "
                    "repro.rng.make_rng",
                )
        if self.check_fault_determinism:
            root = (node.module or "").split(".")[0]
            if root in _RL006_FORBIDDEN_IMPORTS:
                self._add(
                    "RL006",
                    node,
                    f"import from {node.module!r} in repro.faults; fault "
                    "schedules must derive from explicit seeds only",
                )
        if self.check_memo_keys:
            root = (node.module or "").split(".")[0]
            if root in _RL013_FORBIDDEN_IMPORTS:
                self._add(
                    "RL013",
                    node,
                    f"import from {node.module!r} in repro.perf.memo; cache "
                    "keys must derive from content digests only",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.check_rng
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            self._add(
                "RL001",
                node,
                "direct numpy.random access; route randomness through "
                "repro.rng.make_rng",
            )
        self.generic_visit(node)

    # -- RL007: loop-depth tracking ----------------------------------------
    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_loop(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_loop(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_loop(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_loop(node)

    # -- RL002: bare assert ------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._add(
            "RL002",
            node,
            "bare assert vanishes under python -O; raise a ReproError subclass",
        )
        self.generic_visit(node)

    # -- RL003: raise taxonomy ---------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if exc is not None:
            target = exc.func if isinstance(exc, ast.Call) else exc
            name: Optional[str] = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            # Lowercase names are re-raised exception *variables* (``raise
            # exc``); dynamic expressions are skipped — only literal class
            # names are judged.
            if name is not None and name[:1].isupper() and name not in self.allowed_raises:
                self._add(
                    "RL003",
                    node,
                    f"raise of {name}; use a repro.errors.ReproError subclass",
                )
        self.generic_visit(node)

    # -- RL004 collection + RL005: obs contract ----------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith("Attack") and not node.name.startswith("_"):
            self.attack_classes.append((node.name, node.lineno))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self.check_fault_determinism:
            self._check_rl006_call(node, func)
        if self.check_hot_loops and self._loop_depth > 0:
            self._check_rl007_call(node, func)
        if self.check_batched_vm and self._loop_depth > 0:
            self._check_rl008_call(node, func)
        if self.check_payload_compiled:
            self._check_rl009_call(node, func)
        if self.check_payload_validated:
            self._check_rl010_call(node, func)
        if self.check_supervised_tasks:
            self._check_rl011_call(node, func)
        if self.check_sparse_dram:
            self._check_rl012_allocation(node, func)
        if self.check_frontier_decode and self._loop_depth > 0:
            self._check_rl012_decode(node, func)
        if self.check_memo_keys:
            self._check_rl013_call(node, func)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "obs"
            and func.attr in _OBS_HELPERS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            name = node.args[0].value
            if func.attr == "trace":
                if name not in contract.TRACE_EVENTS:
                    self._add(
                        "RL005",
                        node,
                        f"trace event {name!r} is not in the frozen contract "
                        "(repro.obs.contract.TRACE_EVENTS)",
                    )
            else:
                expected_kind = contract.HELPER_KINDS[func.attr]
                actual_kind = contract.METRICS.get(name)
                if actual_kind is None:
                    self._add(
                        "RL005",
                        node,
                        f"metric {name!r} is not in the frozen contract "
                        "(repro.obs.contract.METRICS)",
                    )
                elif actual_kind != expected_kind:
                    self._add(
                        "RL005",
                        node,
                        f"obs.{func.attr} records a {expected_kind}, but "
                        f"{name!r} is bound to kind {actual_kind!r}",
                    )
        self.generic_visit(node)

    def _check_rl007_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL007: per-element DRAM/obs calls inside a loop on the hot path."""
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _RL007_SCALAR_ACCESSORS:
            self._add(
                "RL007",
                node,
                f"per-bit {func.attr}() inside a loop; use the batched "
                "DramModule primitives (read_bits / apply_bit_flips)",
            )
        elif (
            func.attr == "inc"
            and isinstance(func.value, ast.Name)
            and func.value.id == "obs"
        ):
            self._add(
                "RL007",
                node,
                "per-event obs.inc inside a loop; aggregate counts and emit "
                "one increment per (direction, cell) bucket",
            )

    def _check_rl008_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL008: per-address VM calls inside a loop on an attack/perf path."""
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _RL008_SCALAR_ACCESSORS:
            self._add(
                "RL008",
                node,
                f"per-address {func.attr}() inside a loop; use the batched "
                "VM pipeline (translate_many / load_many / store_many / "
                "touch_many / mmap_touch_many)",
            )

    def _check_rl009_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL009: direct hammer calls in an attack module (any depth)."""
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _RL009_HAMMER_CALLS:
            self._add(
                "RL009",
                node,
                f"direct {func.attr}() in an attack module; declare the "
                "hammer phase as a repro.payload program and consume it "
                "through iter_steps",
            )

    def _check_rl010_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL010: unvalidated PayloadProgram construction in attacks/.

        An outer ``validate_program(PayloadProgram(...))`` sanctions its
        direct constructor arguments — the visitor reaches the wrapper
        before descending into the arguments, so the sanction lands
        first. Programs built via the :mod:`repro.payload.programs`
        helpers never trip the rule (the helpers validate internally and
        no constructor appears at the call site).
        """
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _RL010_VALIDATORS:
            for arg in node.args:
                if (
                    isinstance(arg, ast.Call)
                    and isinstance(
                        arg.func, (ast.Name, ast.Attribute)
                    )
                    and (
                        arg.func.id
                        if isinstance(arg.func, ast.Name)
                        else arg.func.attr
                    )
                    == _RL010_PAYLOAD_CTOR
                ):
                    self._sanctioned_payload_ctors.add(id(arg))
            return
        if name == _RL010_PAYLOAD_CTOR and id(node) not in self._sanctioned_payload_ctors:
            self._add(
                "RL010",
                node,
                "PayloadProgram constructed without validation in an attack "
                "module; wrap it in validate_program(...) or build via the "
                "repro.payload.programs helpers",
            )

    def _check_rl011_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL011: bare task spawns in the service package.

        Catches both module-level spawns (``asyncio.create_task``,
        ``asyncio.ensure_future``) and loop-object spawns
        (``loop.create_task``): either way the task's eventual exception
        is only observed if someone awaits it, which is exactly the
        silent-death mode the supervisor exists to prevent. The single
        sanctioned call lives inside ``spawn_supervised`` under a
        per-line suppression.
        """
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _RL011_BARE_SPAWNERS:
            self._add(
                "RL011",
                node,
                f"bare {name}() in repro.service; spawn through "
                "spawn_supervised so a dying task is recorded, not lost",
            )

    def _check_rl012_allocation(self, node: ast.Call, func: ast.expr) -> None:
        """RL012 (dram/): a numpy allocation sized by ``total_rows``.

        Flags ``np.zeros/ones/full/empty/arange`` calls carrying
        ``total_rows`` (as an attribute or a bare name) anywhere in an
        argument subtree — the signature of a dense geometry-proportional
        buffer that would defeat the sparse multi-GB representation.
        Span-sized allocations (``np.arange(start, stop)``) never mention
        ``total_rows`` in their arguments and pass untouched.
        """
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _RL012_NP_ALLOCATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if (isinstance(sub, ast.Attribute) and sub.attr == "total_rows") or (
                    isinstance(sub, ast.Name) and sub.id == "total_rows"
                ):
                    self._add(
                        "RL012",
                        node,
                        f"np.{func.attr} sized by total_rows in dram/; the "
                        "sparse store keeps multi-GB modules O(touched-rows) "
                        "— evaluate procedurally or chunk over a bounded span",
                    )
                    return

    def _check_rl012_decode(self, node: ast.Call, func: ast.expr) -> None:
        """RL012 (kernel/mmu.py): per-entry PTE decode inside a loop."""
        if isinstance(func, ast.Attribute) and func.attr == "decode":
            self._add(
                "RL012",
                node,
                "per-entry PageTableEntry.decode inside a loop in the MMU; "
                "decode each frontier level as one decode_entries batch "
                "(the scalar reference walk carries per-line suppressions)",
            )

    def _check_rl013_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL013: ambient state and non-digest key material in perf/memo.

        Two checks. First, dotted reads of entropy/clock/pid
        (``os.urandom``, ``time.time``, ``datetime.now``, ...) are
        forbidden anywhere in a memo module — a key or store decision
        influenced by any of them could never replay. Second, every
        value at a ``SegmentKey(...)`` call site must be a plain name /
        attribute (a local already produced by the digest pipeline) or a
        direct ``digest_of`` / ``derive_seed`` call; literals or inline
        arithmetic smuggled into a key field would fork the cache
        namespace invisibly.
        """
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            dotted = f"{func.value.id}.{func.attr}"
            if dotted in _RL013_FORBIDDEN_CALLS:
                self._add(
                    "RL013",
                    node,
                    f"call to {dotted} in repro.perf.memo; ambient "
                    "entropy/clock/pid must never reach cache-key material",
                )
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "SegmentKey":
            return
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(value, (ast.Name, ast.Attribute)):
                continue
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, (ast.Name, ast.Attribute))
                and (
                    value.func.id
                    if isinstance(value.func, ast.Name)
                    else value.func.attr
                )
                in _RL013_KEY_BUILDERS
            ):
                continue
            self._add(
                "RL013",
                node,
                "SegmentKey field built from an inline expression; key "
                "material must be a named digest or a direct "
                "digest_of/derive_seed call",
            )
            return

    def _check_rl006_call(self, node: ast.Call, func: ast.expr) -> None:
        """RL006 call checks: ambient entropy/clock and implicit seeds."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            dotted = f"{func.value.id}.{func.attr}"
            if dotted in ("os.urandom", "time.time"):
                self._add(
                    "RL006",
                    node,
                    f"call to {dotted} in repro.faults; wall-clock/entropy "
                    "would make fault schedules unreplayable",
                )
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "make_rng":
            seed_arg: Optional[ast.expr] = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_arg = keyword.value
            if seed_arg is None or (
                isinstance(seed_arg, ast.Constant) and seed_arg.value is None
            ):
                self._add(
                    "RL006",
                    node,
                    "make_rng without an explicit seed in repro.faults; "
                    "fault schedules must replay from a recorded seed",
                )


def _filter_ignores(
    findings: Sequence[LintFinding], ignores: Dict[int, Optional[Set[str]]]
) -> List[LintFinding]:
    kept = []
    for finding in findings:
        suppressed = ignores.get(finding.line)
        if suppressed is None and finding.line in ignores:
            continue  # blanket ignore
        if suppressed is not None and finding.rule in suppressed:
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str = "<snippet>",
    allowed_raises: Optional[FrozenSet[str]] = None,
) -> Tuple[List[LintFinding], List[Tuple[str, int]]]:
    """Lint one module's source with the per-file rules.

    Returns ``(findings, attack_classes)``; the attack classes feed the
    cross-file RL004 check in :func:`run_lint`. ``path`` determines the
    RL001 exemption (``rng.py`` is the sanctioned numpy.random user),
    RL006 activation (modules under a ``faults`` package directory),
    RL007 activation (``rowhammer.py`` — the vectorized hot path),
    RL008 activation (modules under ``attacks`` or ``perf`` package
    directories — the batched-VM consumers), RL009/RL010 activation
    (modules under ``attacks`` — the payload-compiled, payload-validated
    consumers), RL011 activation (modules under ``service`` — the
    supervised-task consumers), RL012 activation (modules under
    ``dram`` for the dense-allocation check, ``mmu.py`` for the
    per-entry-decode check), and RL013 activation (modules under a
    ``memo`` package directory — the deterministic-key consumers).
    """
    if allowed_raises is None:
        allowed_raises = taxonomy_names()
    parts = Path(path).parts
    check_rng = Path(path).name != "rng.py"
    check_fault_determinism = "faults" in parts
    check_hot_loops = Path(path).name == "rowhammer.py"
    check_batched_vm = "attacks" in parts or "perf" in parts
    check_payload_compiled = "attacks" in parts
    check_payload_validated = "attacks" in parts
    check_supervised_tasks = "service" in parts
    check_sparse_dram = "dram" in parts
    check_frontier_decode = Path(path).name == "mmu.py"
    check_memo_keys = "memo" in parts
    tree = ast.parse(source, filename=path)
    linter = _FileLinter(
        path, allowed_raises, check_rng,
        check_fault_determinism=check_fault_determinism,
        check_hot_loops=check_hot_loops,
        check_batched_vm=check_batched_vm,
        check_payload_compiled=check_payload_compiled,
        check_payload_validated=check_payload_validated,
        check_supervised_tasks=check_supervised_tasks,
        check_sparse_dram=check_sparse_dram,
        check_frontier_decode=check_frontier_decode,
        check_memo_keys=check_memo_keys,
    )
    linter.visit(tree)
    findings = _filter_ignores(linter.findings, _ignores_by_line(source))
    return findings, linter.attack_classes


def default_target() -> Path:
    """The directory ``repro lint`` checks by default: the repro package."""
    import repro

    return Path(repro.__file__).resolve().parent


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def run_lint(paths: Optional[Sequence[str]] = None) -> List[LintFinding]:
    """Run every rule over ``paths`` (files or directories).

    With no paths, lints the installed ``repro`` package. The cross-file
    RL004 check runs when an ``attacks/registry.py`` is among the linted
    files; ``*Attack`` classes found in any ``attacks/`` module must then
    appear in one of the registry's string literals (the dotted
    ``ATTACK_IMPLEMENTATIONS`` / ``modeled_by`` paths).
    """
    targets = [Path(p) for p in paths] if paths else [default_target()]
    allowed = taxonomy_names()
    findings: List[LintFinding] = []
    attack_classes: List[Tuple[str, str, int]] = []
    registry_strings: Optional[Set[str]] = None
    for file_path in _collect_files(targets):
        source = file_path.read_text(encoding="utf-8")
        file_findings, file_attacks = lint_source(
            source, path=str(file_path), allowed_raises=allowed
        )
        findings.extend(file_findings)
        if "attacks" in file_path.parts:
            for name, line in file_attacks:
                attack_classes.append((str(file_path), name, line))
            if file_path.name == "registry.py":
                registry_strings = {
                    node.value
                    for node in ast.walk(ast.parse(source))
                    if isinstance(node, ast.Constant) and isinstance(node.value, str)
                }
    if registry_strings is not None:
        for path_str, name, line in attack_classes:
            if not any(name in literal for literal in registry_strings):
                findings.append(
                    LintFinding(
                        rule="RL004",
                        path=path_str,
                        line=line,
                        message=(
                            f"Attack class {name!r} is not referenced in "
                            "attacks/registry.py"
                        ),
                    )
                )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
