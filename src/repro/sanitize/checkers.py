"""The standard runtime checkers: buddy heap, CTA zones, monotonicity, NSR.

Each checker guards one of the invariants the paper's defense depends on.
They are registered by :func:`repro.sanitize.install` and receive the
mutation events emitted by the instrumented layers:

========================  ====================================================
event                     context fields
========================  ====================================================
``buddy.alloc``           ``allocator``, ``pfn`` (absolute head), ``order``
``buddy.free``            ``allocator``, ``pfn``, ``order``
``buddy.prepare_alloc``   ``allocator``, ``order`` (pre-commit; fault plane)
``kernel.page_alloc``     ``kernel``, ``pfn``, ``use``, ``order``,
                          ``pt_level``, ``downgraded``
``kernel.page_free``      ``kernel``, ``pfn``
``dram.bit_flip``         ``module``, ``address``, ``bit``, ``old``, ``new``
``rowhammer.hammer``      ``hammer``, ``module``, ``outcome``
``mmu.translate``         ``mmu``, ``pid``, ``pfn``, ``user``
``attack.campaign``       ``kernel``, ``hammer``, ``kind``, ``outcome``
========================  ====================================================

Checkers filter on object identity (``allocator is ...``, ``kernel is
...``) because the process-wide suite receives events from *every* live
kernel, and a checker must only judge the system it was installed for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from repro import obs
from repro.dram.cells import CellType
from repro.errors import KernelError, ZoneViolationError
from repro.kernel.page import PageUse
from repro.kernel.pagetable import PageTableEntry
from repro.obs.metrics import label_key
from repro.units import PAGE_SHIFT, PTE_SIZE, PTES_PER_PAGE

from repro.sanitize import Sanitizer

if TYPE_CHECKING:
    from repro.kernel.buddy import BuddyAllocator
    from repro.kernel.kernel import Kernel

#: PTE bits holding the frame pointer on x86-64 (bits 12..51 inclusive).
_PFN_FIELD_LOW = 12
_PFN_FIELD_HIGH = 51


class BuddyHeapSanitizer(Sanitizer):
    """Buddy-heap consistency: no double-free, no overlap, no drift.

    Keeps a shadow map of live blocks (seeded from the allocator's record
    at installation) so a block freed twice — or handed out twice — is
    caught at the faulting call even if the allocator's own bookkeeping
    has been corrupted into accepting it. Every event also gets cheap
    bounds/alignment/conservation checks plus a cross-check of the
    allocator's free count against the ``buddy.free_pages`` gauge in
    :mod:`repro.obs`; every ``full_every`` events the allocator's full
    overlap/conservation sweep runs too.
    """

    name = "buddy_heap"
    events = ("buddy.alloc", "buddy.free")

    def __init__(self, allocator: "BuddyAllocator", full_every: int = 64):
        self._allocator = allocator
        self._full_every = max(0, full_every)
        self._events_seen = 0
        # Shadow live-block map: relative head -> order.
        self._live: Dict[int, int] = dict(allocator._allocated)

    def handle(self, event: str, ctx: Mapping[str, object]) -> None:
        allocator = self._allocator
        if ctx.get("allocator") is not allocator:
            return
        pfn = int(ctx["pfn"])  # type: ignore[call-overload]
        order = int(ctx["order"])  # type: ignore[call-overload]
        relative = pfn - allocator.start_pfn
        span = 1 << order
        if relative < 0 or relative + span > allocator.total_pages:
            self.violation(
                f"block [{pfn}, {pfn + span}) outside zone "
                f"[{allocator.start_pfn}, {allocator.end_pfn})",
                event,
            )
        if relative % span:
            self.violation(
                f"block head pfn {pfn} misaligned for order {order}", event
            )
        if event == "buddy.alloc":
            if relative in self._live:
                self.violation(
                    f"allocator handed out pfn {pfn}, which is already live "
                    f"(order {self._live[relative]})",
                    event,
                )
            if relative not in allocator._allocated:
                self.violation(
                    f"allocated block at pfn {pfn} missing from the "
                    "allocation record",
                    event,
                )
            self._live[relative] = order
        else:
            if relative not in self._live:
                self.violation(f"double free of block at pfn {pfn}", event)
            if relative in allocator._allocated:
                self.violation(
                    f"freed block at pfn {pfn} still present in the "
                    "allocation record",
                    event,
                )
            del self._live[relative]
        free = allocator.free_pages
        if free + allocator.allocated_pages != allocator.total_pages:
            self.violation(
                f"page conservation violated in zone {allocator.name or '?'}: "
                f"{free} free + {allocator.allocated_pages} allocated != "
                f"{allocator.total_pages} total",
                event,
            )
        self._check_gauge(free, event)
        self._events_seen += 1
        if self._full_every and self._events_seen % self._full_every == 0:
            self.check_all()

    def _check_gauge(self, free: int, event: str) -> None:
        """Cross-check the allocator's free count against ``repro.obs``."""
        if not self._allocator.name:
            return
        registry = obs.get_registry()
        if not registry.enabled:
            return
        gauge = registry.gauge("buddy.free_pages")
        key = label_key({"zone": self._allocator.name})
        series = gauge.series()
        if key in series and series[key] != free:
            self.violation(
                f"free-page gauge drift in zone {self._allocator.name}: "
                f"obs records {series[key]:.0f}, allocator has {free}",
                event,
            )

    def check_all(self) -> None:
        allocator = self._allocator
        try:
            allocator.check_invariants()
        except KernelError as exc:
            self.violation(str(exc), "check_all")
        if set(self._live) != set(allocator._allocated):
            self.violation(
                "shadow live-block map diverged from the allocation record "
                f"in zone {allocator.name or '?'}",
                "check_all",
            )


class ZoneContainmentSanitizer(Sanitizer):
    """CTA Rules 1/2 on every allocation: PTP frames stay above the mark.

    Rule 1: a page-table frame below the low water mark means a PTP
    request leaked into an ordinary zone. Rule 2: any other allocation at
    or above the mark means attacker-reachable data entered ZONE_PTP.
    Inert on stock kernels (no policy, nothing to contain). The full
    sweep defers to :meth:`CtaPolicy.check_rules`, which also validates
    the invalid anti-cell ranges.
    """

    name = "zone_containment"
    events = ("kernel.page_alloc",)

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    def handle(self, event: str, ctx: Mapping[str, object]) -> None:
        if ctx.get("kernel") is not self._kernel:
            return
        policy = self._kernel.cta_policy
        if policy is None:
            return
        pfn = int(ctx["pfn"])  # type: ignore[call-overload]
        use = ctx["use"]
        mark_pfn = policy.low_water_mark_pfn
        if use is PageUse.PAGE_TABLE:
            if pfn < mark_pfn:
                if ctx.get("downgraded") or pfn in self._kernel.downgraded_pt_pfns:
                    self.acknowledge_downgrade()
                    return
                self.violation(
                    f"Rule 1 violated: page table allocated at pfn {pfn}, "
                    f"below the low water mark (pfn {mark_pfn})",
                    event,
                )
        elif use is not PageUse.RESERVED and pfn >= mark_pfn:
            self.violation(
                f"Rule 2 violated: {getattr(use, 'value', use)} frame "
                f"allocated at pfn {pfn}, inside ZONE_PTP (mark pfn {mark_pfn})",
                event,
            )

    def check_all(self) -> None:
        policy = self._kernel.cta_policy
        if policy is None:
            return
        try:
            policy.check_rules(
                self._kernel.page_db,
                acknowledged_downgrades=self._kernel.downgraded_pt_pfns,
            )
        except ZoneViolationError as exc:
            self.violation(str(exc), "check_all")


class MonotonicPointerSanitizer(Sanitizer):
    """No true-cell flip may *increase* a stored PTE pointer.

    The paper's core physical claim: true-cells leak ``1 -> 0`` only, so
    a flip in a page-table frame placed in true-cells can only move the
    PTE's frame pointer downward. A ``0 -> 1`` flip landing in the PFN
    field (bits 12..51) of a PTE stored in a true-cell page-table frame
    is exactly the event the defense assumes impossible — this checker
    turns it into an immediate violation. Covers both direct
    :meth:`DramModule.flip_bit` calls and the statistical hammer model's
    batched flips.
    """

    name = "monotonic_pointer"
    events = ("dram.bit_flip", "rowhammer.hammer")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    def handle(self, event: str, ctx: Mapping[str, object]) -> None:
        if ctx.get("module") is not self._kernel.module:
            return
        if self._kernel.cta_policy is None:
            return
        if event == "dram.bit_flip":
            self._check_flip(
                int(ctx["address"]),  # type: ignore[call-overload]
                int(ctx["bit"]),  # type: ignore[call-overload]
                int(ctx["old"]),  # type: ignore[call-overload]
                int(ctx["new"]),  # type: ignore[call-overload]
                event,
            )
            return
        outcome = ctx["outcome"]
        for flip in outcome.flips:  # type: ignore[attr-defined]
            self._check_flip(flip.address, flip.bit, flip.old, flip.new, event)

    def _check_flip(
        self, address: int, bit: int, old: int, new: int, event: str
    ) -> None:
        if new <= old:
            return  # 1 -> 0 (or no-op): monotone by definition
        kernel = self._kernel
        pfn = address >> PAGE_SHIFT
        if not kernel.is_page_table_pfn(pfn):
            return
        if pfn in kernel.downgraded_pt_pfns:
            # Screened-fallback frames sit outside ZONE_PTP's true-cell
            # guarantee; their exposure is the counted downgrade itself.
            self.acknowledge_downgrade()
            return
        module = kernel.module
        row = module.geometry.row_of_address(address)
        if module.cell_map is None:
            return
        if module.cell_map.type_of_row(row) is not CellType.TRUE:
            return
        entry_address = address & ~(PTE_SIZE - 1)
        word_bit = (address - entry_address) * 8 + bit
        if not _PFN_FIELD_LOW <= word_bit <= _PFN_FIELD_HIGH:
            return  # flag/ignored bits do not move the pointer
        raw_after = module.read_u64(entry_address)
        pfn_after = PageTableEntry.decode(raw_after).pfn
        pfn_before = PageTableEntry.decode(raw_after ^ (1 << word_bit)).pfn
        self.violation(
            f"monotonicity violated: 0->1 flip at PA {address:#x} bit {bit} "
            f"(PTE bit {word_bit}) raised the stored pointer "
            f"{pfn_before:#x} -> {pfn_after:#x} in a true-cell page-table frame",
            event,
        )

    def check_all(self) -> None:
        policy = self._kernel.cta_policy
        if policy is not None and not policy.ptes_are_monotonic():
            self.violation(
                "ZONE_PTP spans non-true-cell rows; stored PTE pointers are "
                "not monotonic under RowHammer",
                "check_all",
            )


class NoSelfReferenceSanitizer(Sanitizer):
    """The No-Self-Reference property: leaf PTEs never map page tables.

    After every hammer campaign (the ``attack.campaign`` event) the full
    sweep scans every present entry of every last-level page table; a
    pointer landing on *any* page-table frame would hand the owning
    process a writable window onto live page tables — the exposure every
    PTE-based privilege escalation needs. The ``mmu.translate`` event
    additionally catches the moment such a window is actually used: a
    user-mode translation must never resolve to a page-table frame.
    Intermediate (level >= 2) entries legitimately point at page tables
    and are exempt, matching the paper's theorem statement.
    """

    name = "no_self_reference"
    events = ("attack.campaign", "mmu.translate")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    def handle(self, event: str, ctx: Mapping[str, object]) -> None:
        kernel = self._kernel
        if event == "mmu.translate":
            if ctx.get("mmu") is not kernel.mmu or not ctx.get("user"):
                return
            pfn = int(ctx["pfn"])  # type: ignore[call-overload]
            if kernel.is_page_table_pfn(pfn):
                if pfn in kernel.downgraded_pt_pfns:
                    self.acknowledge_downgrade()
                    return
                self.violation(
                    f"user-mode translation resolved to page-table pfn {pfn}: "
                    "a PTE self-reference window is live",
                    event,
                )
            return
        if ctx.get("kernel") is not kernel:
            return
        self.check_all()

    def check_all(self) -> None:
        kernel = self._kernel
        module = kernel.module
        page_table_pfns = set(kernel.page_table_pfns())
        for frame in kernel.page_db.frames_with_use(PageUse.PAGE_TABLE):
            if frame.pt_level != 1:
                continue
            base = frame.pfn << PAGE_SHIFT
            for slot in range(PTES_PER_PAGE):
                raw = module.read_u64(base + slot * PTE_SIZE)
                if not raw & 1:
                    continue
                target = PageTableEntry.decode(raw).pfn
                if target in page_table_pfns:
                    if target in kernel.downgraded_pt_pfns:
                        self.acknowledge_downgrade()
                        continue
                    self.violation(
                        "No-Self-Reference violated: leaf PTE at "
                        f"{base + slot * PTE_SIZE:#x} points at page-table "
                        f"pfn {target}",
                        "attack.campaign",
                    )


#: The checkers :func:`repro.sanitize.install` wires up, for reference.
STANDARD_CHECKERS: Tuple[type, ...] = (
    BuddyHeapSanitizer,
    ZoneContainmentSanitizer,
    MonotonicPointerSanitizer,
    NoSelfReferenceSanitizer,
)
