"""Size and time units used throughout the simulator.

All sizes are in bytes, all times in seconds unless a name says otherwise.
The DRAM/OS literature mixes binary prefixes freely; this module pins down
one canonical set of constants so the rest of the codebase never hand-rolls
``1024 * 1024`` arithmetic.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Size of a regular (4 KiB) page on x86/x86-64.
PAGE_SIZE = 4 * KIB

#: Bits in a page offset (log2 of PAGE_SIZE).
PAGE_SHIFT = 12

#: Size of one page-table entry on x86-64.
PTE_SIZE = 8

#: Number of PTEs per 4 KiB page-table page.
PTES_PER_PAGE = PAGE_SIZE // PTE_SIZE

#: JEDEC-specified DRAM refresh interval (Section 2.1 of the paper).
REFRESH_INTERVAL_S = 64e-3

#: Typical DRAM row size used by the paper's timing analysis [37].
DEFAULT_ROW_SIZE = 128 * KIB

#: The paper's reported true/anti-cell alternation period, in DRAM rows.
DEFAULT_CELL_INTERLEAVE_ROWS = 512

NS = 1e-9
US = 1e-6
MS = 1e-3

SECONDS_PER_DAY = 86400.0
SECONDS_PER_HOUR = 3600.0

_SUFFIXES = {
    "b": 1,
    "kib": KIB,
    "kb": KIB,
    "k": KIB,
    "mib": MIB,
    "mb": MIB,
    "m": MIB,
    "gib": GIB,
    "gb": GIB,
    "g": GIB,
    "tib": TIB,
    "tb": TIB,
    "t": TIB,
}


def parse_size(text: str) -> int:
    """Parse a human-readable size like ``"32MB"`` or ``"8 GiB"`` into bytes.

    Accepts an optional binary/decimal suffix (treated identically, binary);
    a bare number is taken as bytes.

    >>> parse_size("32MB")
    33554432
    >>> parse_size("8GiB") == 8 * GIB
    True
    """
    cleaned = text.strip().lower().replace(" ", "")
    if not cleaned:
        raise ConfigurationError("empty size string")
    idx = len(cleaned)
    while idx > 0 and not cleaned[idx - 1].isdigit():
        idx -= 1
    number, suffix = cleaned[:idx], cleaned[idx:]
    if not number:
        raise ConfigurationError(f"no numeric part in size {text!r}")
    multiplier = _SUFFIXES.get(suffix or "b")
    if multiplier is None:
        raise ConfigurationError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(number) * multiplier


def format_size(num_bytes: int) -> str:
    """Format a byte count with the largest exact-or-rounded binary prefix.

    >>> format_size(32 * MIB)
    '32.0MiB'
    """
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0:
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    return f"{value:.1f}TiB"


def format_duration(seconds: float) -> str:
    """Format a duration using the unit the paper's tables use.

    Durations of at least a day render in days (Tables 2/3 use days);
    shorter spans fall back to hours, minutes, or seconds.

    >>> format_duration(2 * SECONDS_PER_DAY)
    '2.0 days'
    """
    if seconds >= SECONDS_PER_DAY:
        return f"{seconds / SECONDS_PER_DAY:.1f} days"
    if seconds >= SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_HOUR:.1f} hours"
    if seconds >= 60:
        return f"{seconds / 60:.1f} minutes"
    return f"{seconds:.3f} seconds"


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ConfigurationError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return align_down(value + alignment - 1, alignment)
