"""Monte-Carlo cross-check of the exploitability closed form.

The paper's formula models each PTP-indicator bit of each PTE location as
independently either flipping upward (probability ``Pf * P01``) or — when
already '1' — surviving (probability ``1 - Pf * P10``), and counts a
location exploitable when every bit ends at '1' via at least
``min_upward_flips`` upward flips. This module samples exactly that model
with vectorised numpy draws over millions of PTE slots, so the closed
form and the simulation must agree to sampling error — a strong check on
both implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.exploitability import p_exploitable
from repro.errors import AnalysisError
from repro.kernel.cta import ptp_indicator_bits
from repro.rng import SeedLike, make_rng
from repro.units import PTE_SIZE


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of one sampling run."""

    num_ptes: int
    exploitable_count: int
    analytic_probability: float
    trials: int

    @property
    def empirical_probability(self) -> float:
        """Fraction of sampled PTE-location trials that were exploitable."""
        return self.exploitable_count / (self.num_ptes * self.trials)

    @property
    def expected_per_system(self) -> float:
        """Empirical expected exploitable PTEs per system."""
        return self.exploitable_count / self.trials

    def agrees_with_analytic(self, tolerance_sigma: float = 5.0) -> bool:
        """Whether the empirical count lies within ``tolerance_sigma``
        standard deviations of the analytic expectation (Poisson stderr)."""
        expected = self.analytic_probability * self.num_ptes * self.trials
        stderr = max(np.sqrt(expected), 1.0)
        return abs(self.exploitable_count - expected) <= tolerance_sigma * stderr


def simulate_exploitable_ptes(
    total_bytes: int,
    ptp_bytes: int,
    p_vulnerable: float,
    p_up: float,
    p_down: Optional[float] = None,
    min_upward_flips: int = 1,
    trials: int = 1,
    seed: SeedLike = None,
) -> MonteCarloResult:
    """Sample the paper's per-bit model over every PTE slot of ZONE_PTP.

    ``trials`` repeats the experiment (independent systems); counts are
    aggregated so rare-event probabilities can be resolved by raising the
    trial count.
    """
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if p_down is None:
        p_down = 1.0 - p_up
    n = ptp_indicator_bits(total_bytes, ptp_bytes)
    num_ptes = ptp_bytes // PTE_SIZE
    rng = make_rng(seed)
    up_probability = p_vulnerable * p_up
    down_probability = p_vulnerable * p_down

    exploitable_total = 0
    for _ in range(trials):
        # For each PTE slot: number of bits that flip upward, and whether
        # the remaining bits all survive.
        up_flips = rng.binomial(n, up_probability, size=num_ptes)
        qualified = up_flips >= min_upward_flips
        if not qualified.any():
            continue
        survivors_needed = n - up_flips[qualified]
        survival_p = (1.0 - down_probability) ** survivors_needed
        survives = rng.random(survival_p.size) < survival_p
        exploitable_total += int(survives.sum())

    analytic = p_exploitable(n, p_vulnerable, p_up, p_down, min_upward_flips)
    return MonteCarloResult(
        num_ptes=num_ptes,
        exploitable_count=exploitable_total,
        analytic_probability=analytic,
        trials=trials,
    )
