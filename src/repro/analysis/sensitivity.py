"""Parameter-sensitivity analysis of the CTA security guarantee.

The paper evaluates two parameter points (Table 2's measured rates and
Table 3's pessimistic scaling). This module generalises the analysis into
full sweeps over ``Pf`` and ``P(0->1)`` so a deployment can ask: *at what
DRAM quality does the guarantee stop holding?* Two thresholds matter:

- the **unrestricted** design stays impractical while the expected attack
  time is far above interactive timescales;
- the **restricted** (>= 2 indicator zeros) design stays in the
  one-vulnerable-system-in-many regime while the expected exploitable
  count stays well below 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro.analysis.exploitability import expected_exploitable_ptes
from repro.attacks.timing import AttackTimingModel
from repro.errors import AnalysisError
from repro.units import GIB, MIB, SECONDS_PER_DAY


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep sample."""

    p_vulnerable: float
    p_up: float
    expected_exploitable: float
    attack_time_days: float
    restricted: bool


def sweep(
    p_vulnerable_values: Sequence[float],
    p_up_values: Sequence[float],
    total_bytes: int = 8 * GIB,
    ptp_bytes: int = 32 * MIB,
    restricted: bool = False,
    timing: AttackTimingModel = AttackTimingModel(),
) -> List[SensitivityPoint]:
    """Grid sweep over flip-rate parameters."""
    if not p_vulnerable_values or not p_up_values:
        raise AnalysisError("sweep needs at least one value per axis")
    points: List[SensitivityPoint] = []
    for p_vulnerable in p_vulnerable_values:
        for p_up in p_up_values:
            expected = expected_exploitable_ptes(
                total_bytes, ptp_bytes, p_vulnerable, p_up, restricted=restricted
            )
            if restricted:
                seconds = timing.expected_s_restricted(total_bytes, ptp_bytes)
            else:
                seconds = timing.expected_s_unrestricted(
                    total_bytes, ptp_bytes, expected
                )
            points.append(
                SensitivityPoint(
                    p_vulnerable=p_vulnerable,
                    p_up=p_up,
                    expected_exploitable=expected,
                    attack_time_days=seconds / SECONDS_PER_DAY,
                    restricted=restricted,
                )
            )
    return points


def breakeven_p_vulnerable(
    target_exploitable: float = 1.0,
    p_up: float = 0.002,
    total_bytes: int = 8 * GIB,
    ptp_bytes: int = 32 * MIB,
    restricted: bool = True,
) -> float:
    """The Pf at which the expected exploitable count reaches a target.

    Bisection over a wide Pf range; answers "how bad would DRAM have to
    get before the restricted design expects one exploitable PTE?".
    """
    if target_exploitable <= 0:
        raise AnalysisError("target_exploitable must be positive")
    low, high = 1e-9, 0.5

    def expected(p_vulnerable: float) -> float:
        return expected_exploitable_ptes(
            total_bytes, ptp_bytes, p_vulnerable, p_up, restricted=restricted
        )

    if expected(high) < target_exploitable:
        return high
    for _ in range(200):
        mid = (low * high) ** 0.5  # geometric bisection over decades
        if expected(mid) < target_exploitable:
            low = mid
        else:
            high = mid
        if high / low < 1.0001:
            break
    return (low * high) ** 0.5


def degradation_table(
    multipliers: Sequence[float] = (1, 2, 5, 10, 50, 100),
) -> List[Tuple[float, float, float]]:
    """Guarantee degradation as DRAM scales beyond today's quality.

    Rows of ``(Pf multiplier, unrestricted days, restricted exploitable)``
    anchored at the paper's base parameters (Pf=1e-4, P01=0.2%), with
    ``P(0->1)`` worsened alongside Pf the way Table 3 does (2.5x at 5x).
    """
    rows: List[Tuple[float, float, float]] = []
    timing = AttackTimingModel()
    for multiplier in multipliers:
        p_vulnerable = 1e-4 * multiplier
        p_up = min(0.002 * (multiplier ** 0.5), 1.0)
        unrestricted = expected_exploitable_ptes(
            8 * GIB, 32 * MIB, p_vulnerable, p_up, restricted=False
        )
        days = timing.expected_s_unrestricted(
            8 * GIB, 32 * MIB, unrestricted
        ) / SECONDS_PER_DAY
        restricted = expected_exploitable_ptes(
            8 * GIB, 32 * MIB, p_vulnerable, p_up, restricted=True
        )
        rows.append((multiplier, days, restricted))
    return rows


def format_heatmap(
    points: List[SensitivityPoint], value: str = "expected_exploitable"
) -> str:
    """ASCII heat-table of a sweep, rows = Pf, columns = P(0->1)."""
    pf_values = sorted({p.p_vulnerable for p in points})
    up_values = sorted({p.p_up for p in points})
    grid = {(p.p_vulnerable, p.p_up): getattr(p, value) for p in points}
    lines = ["Pf \\ P01 " + " ".join(f"{up:>10.3g}" for up in up_values)]
    for pf in pf_values:
        cells = " ".join(f"{grid[(pf, up)]:>10.3g}" for up in up_values)
        lines.append(f"{pf:>8.1e} {cells}")
    return "\n".join(lines)
