"""Analytical security model (paper Section 5).

Closed forms for the probability that a PTE location is exploitable, the
expected number of exploitable PTE locations, the per-system vulnerability
rate, and the expected attack time — plus a Monte-Carlo cross-check and
the effective-memory-capacity accounting of Section 6.2.
"""

from repro.analysis.exploitability import (
    expected_exploitable_ptes,
    p_exploitable,
    systems_per_vulnerable,
)
from repro.analysis.montecarlo import MonteCarloResult, simulate_exploitable_ptes
from repro.analysis.capacity import capacity_loss_report, CapacityReport
from repro.analysis.sensitivity import (
    SensitivityPoint,
    breakeven_p_vulnerable,
    degradation_table,
    sweep,
)
from repro.analysis.tables import (
    SecurityRow,
    anticell_ablation,
    paper_table2,
    paper_table3,
    security_table,
)

__all__ = [
    "CapacityReport",
    "MonteCarloResult",
    "SecurityRow",
    "SensitivityPoint",
    "breakeven_p_vulnerable",
    "degradation_table",
    "sweep",
    "anticell_ablation",
    "capacity_loss_report",
    "expected_exploitable_ptes",
    "p_exploitable",
    "paper_table2",
    "paper_table3",
    "security_table",
    "simulate_exploitable_ptes",
    "systems_per_vulnerable",
]
