"""Regeneration of the paper's security tables (Tables 2 and 3).

Each row reports, for a memory size x ZONE_PTP size x indicator policy:

- the expected number of exploitable PTE locations, and
- the expected attack time for Algorithm 1 (days).

``PAPER_TABLE2`` / ``PAPER_TABLE3`` record the published values so the
benchmarks (and EXPERIMENTS.md) can show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.exploitability import expected_exploitable_ptes, systems_per_vulnerable
from repro.attacks.timing import AttackTimingModel
from repro.units import GIB, MIB, SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class SecurityRow:
    """One (memory, PTP, policy) cell of Table 2/3."""

    memory_gib: int
    ptp_mib: int
    restricted: bool
    expected_exploitable: float
    attack_time_days: float

    @property
    def label(self) -> str:
        """Human-readable row key, e.g. ``8GB/32MB/unrestricted``."""
        policy = "restricted" if self.restricted else "unrestricted"
        return f"{self.memory_gib}GB/{self.ptp_mib}MB/{policy}"


def security_table(
    p_vulnerable: float,
    p_up: float,
    memory_gib: Tuple[int, ...] = (8, 16, 32),
    ptp_mib: Tuple[int, ...] = (32, 64),
    timing: AttackTimingModel = AttackTimingModel(),
) -> List[SecurityRow]:
    """Compute every row of a Table 2/3-style grid."""
    rows: List[SecurityRow] = []
    for mem in memory_gib:
        total = mem * GIB
        for ptp in ptp_mib:
            ptp_bytes = ptp * MIB
            for restricted in (False, True):
                expected = expected_exploitable_ptes(
                    total, ptp_bytes, p_vulnerable, p_up, restricted=restricted
                )
                if restricted:
                    seconds = timing.expected_s_restricted(total, ptp_bytes)
                else:
                    seconds = timing.expected_s_unrestricted(total, ptp_bytes, expected)
                rows.append(
                    SecurityRow(
                        memory_gib=mem,
                        ptp_mib=ptp,
                        restricted=restricted,
                        expected_exploitable=expected,
                        attack_time_days=seconds / SECONDS_PER_DAY,
                    )
                )
    return rows


def paper_table2(**kwargs) -> List[SecurityRow]:
    """Table 2: Pf = 1e-4, P(0->1) = 0.2%."""
    return security_table(1e-4, 0.002, **kwargs)


def paper_table3(**kwargs) -> List[SecurityRow]:
    """Table 3 (pessimistic): Pf = 5e-4, P(0->1) = 0.5%."""
    return security_table(5e-4, 0.005, **kwargs)


@dataclass(frozen=True)
class AntiCellAblation:
    """The Section 5 in-text ablation: a 32 MiB ZONE_PTP made of anti-cells.

    The low water mark alone (no cell awareness) can land ZONE_PTP on
    anti-cell rows, where the dominant flip direction is ``0 -> 1`` —
    pointers drift *upward*, toward the PTP region.
    """

    expected_exploitable: float
    attack_time_hours: float


def anticell_ablation(
    total_bytes: int = 8 * GIB,
    ptp_bytes: int = 32 * MIB,
    p_vulnerable: float = 1e-4,
    timing: AttackTimingModel = AttackTimingModel(),
) -> AntiCellAblation:
    """Expected exploitable PTEs / attack time with an anti-cell ZONE_PTP.

    Anti-cells invert the direction split: 99.8% of vulnerable bits flip
    ``0 -> 1``. The paper reports ~3354.7 exploitable PTEs and a 3.2 hour
    expected attack.
    """
    expected = expected_exploitable_ptes(
        total_bytes, ptp_bytes, p_vulnerable, p_up=0.998, p_down=0.002
    )
    seconds = timing.expected_s_unrestricted(total_bytes, ptp_bytes, expected)
    return AntiCellAblation(
        expected_exploitable=expected,
        attack_time_hours=seconds / SECONDS_PER_HOUR,
    )


def headline_numbers() -> Dict[str, float]:
    """The abstract's headline claims, recomputed.

    - one vulnerable system out of ~2e5 (restricted 8 GiB / 32 MiB), and
    - ~231-day expected attack time on that system, and
    - the slowdown factor versus the 20-second fastest published attack.
    """
    expected = expected_exploitable_ptes(8 * GIB, 32 * MIB, 1e-4, 0.002, restricted=True)
    timing = AttackTimingModel()
    attack_days = timing.expected_s_restricted(8 * GIB, 32 * MIB) / SECONDS_PER_DAY
    return {
        "systems_per_vulnerable": systems_per_vulnerable(expected),
        "attack_time_days": attack_days,
        "slowdown_vs_20s": attack_days * SECONDS_PER_DAY / 20.0,
    }


#: Published Table 2 values: label -> (expected exploitable, attack days).
PAPER_TABLE2: Dict[str, Tuple[float, float]] = {
    "8GB/32MB/unrestricted": (6.7, 57.6),
    "8GB/64MB/unrestricted": (11.73, 70.3),
    "8GB/32MB/restricted": (4.69e-6, 230.7),
    "8GB/64MB/restricted": (7.04e-6, 457.3),
    "16GB/32MB/unrestricted": (7.54, 102.7),
    "16GB/64MB/unrestricted": (13.41, 122.4),
    "16GB/32MB/restricted": (6.03e-6, 462.3),
    "16GB/64MB/restricted": (9.38e-6, 918.3),
    "32GB/32MB/unrestricted": (8.32, 185.1),
    "32GB/64MB/unrestricted": (15.08, 216.5),
    "32GB/32MB/restricted": (7.54e-6, 925.5),
    "32GB/64MB/restricted": (1.20e-5, 1840.3),
}

#: Published Table 3 values.
PAPER_TABLE3: Dict[str, Tuple[float, float]] = {
    "8GB/32MB/unrestricted": (83.59, 5.42),
    "8GB/64MB/unrestricted": (146.36, 6.18),
    "8GB/32MB/restricted": (7.3e-4, 230.7),
    "8GB/64MB/restricted": (1.09e-3, 457.3),
    "16GB/32MB/unrestricted": (93.99, 9.73),
    "16GB/64MB/unrestricted": (167.18, 10.86),
    "16GB/32MB/restricted": (9.40e-4, 462.3),
    "16GB/64MB/restricted": (1.46e-3, 918.3),
    "32GB/32MB/unrestricted": (104.38, 17.46),
    "32GB/64MB/unrestricted": (187.99, 19.47),
    "32GB/32MB/restricted": (1.17e-3, 925.5),
    "32GB/64MB/restricted": (1.88e-3, 1840.3),
}

#: Published in-text anti-cell ablation values.
PAPER_ANTICELL = AntiCellAblation(expected_exploitable=3354.7, attack_time_hours=3.2)
