"""Effective memory-capacity accounting (paper Section 6.2).

CTA leaves anti-cell sub-regions above the low water mark unused. With
the common 64 MiB alternation granularity (512 rows x 128 KiB) and a
<= 64 MiB ZONE_PTP, the worst case wastes one full anti-cell region —
0.78% of an 8 GiB system — and the best case wastes nothing (a true-cell
region tops the address space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.cells import CellType, CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.errors import AnalysisError
from repro.kernel.cta import CtaConfig, CtaPolicy
from repro.units import GIB, MIB


@dataclass(frozen=True)
class CapacityReport:
    """Capacity loss of one concrete CTA layout."""

    total_bytes: int
    ptp_bytes: int
    loss_bytes: int

    @property
    def loss_fraction(self) -> float:
        """Loss as a fraction of total memory."""
        return self.loss_bytes / self.total_bytes

    @property
    def loss_percent(self) -> float:
        """Loss in percent (the paper quotes 0.78% worst case)."""
        return 100.0 * self.loss_fraction


def capacity_loss_report(
    total_bytes: int = 8 * GIB,
    ptp_bytes: int = 32 * MIB,
    first_type: CellType = CellType.TRUE,
    period_rows: int = 512,
    row_bytes: int = 128 * 1024,
) -> CapacityReport:
    """Capacity loss for an interleaved module under a CTA layout.

    ``first_type`` controls which cell type occupies the lowest rows (and
    hence which type tops the address space): choosing it so an anti-cell
    region sits at the top produces the paper's worst case.
    """
    geometry = DramGeometry(total_bytes=total_bytes, row_bytes=row_bytes)
    cell_map = CellTypeMap.interleaved(geometry, period_rows=period_rows, first_type=first_type)
    policy = CtaPolicy(cell_map, CtaConfig(ptp_bytes=ptp_bytes))
    return CapacityReport(
        total_bytes=total_bytes,
        ptp_bytes=ptp_bytes,
        loss_bytes=policy.capacity_loss_bytes,
    )


def capacity_sweep(
    total_bytes: int = 8 * GIB,
    ptp_bytes: int = 32 * MIB,
) -> List[CapacityReport]:
    """Best and worst case layouts for one configuration.

    Returns [best, worst]: a true-cell region at the top of memory loses
    nothing; an anti-cell region there sacrifices the full region.
    """
    best = worst = None
    for first_type in (CellType.TRUE, CellType.ANTI):
        report = capacity_loss_report(total_bytes, ptp_bytes, first_type=first_type)
        if best is None or report.loss_bytes < best.loss_bytes:
            best = report
        if worst is None or report.loss_bytes > worst.loss_bytes:
            worst = report
    if best is None or worst is None:
        raise AnalysisError("capacity sweep produced no layout reports")
    return [best, worst]
