"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch the whole family with one clause while tests can assert
on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class DramError(ReproError):
    """Base class for DRAM-substrate errors."""


class AddressError(DramError):
    """A physical address is out of range or misaligned."""


class RowRemapError(DramError):
    """An invalid row-remapping was requested (e.g. cell-type mismatch)."""


class KernelError(ReproError):
    """Base class for OS-model errors."""


class OutOfMemoryError(KernelError):
    """The buddy allocator could not satisfy an allocation request."""


class ZoneViolationError(KernelError):
    """An allocation would violate a zone policy (e.g. CTA rules 1/2)."""


class PageTableError(KernelError):
    """Malformed page-table structure or walk failure."""


class PageFaultError(KernelError):
    """A virtual access could not be translated or lacked permission."""

    def __init__(self, message: str, virtual_address: int = 0):
        super().__init__(message)
        self.virtual_address = virtual_address


class ProcessError(KernelError):
    """Invalid process-level operation (bad mmap, double free, ...)."""


class AttackError(ReproError):
    """An attack harness was misused or hit an unexpected state."""


class DefenseError(ReproError):
    """A defense was configured or engaged incorrectly."""


class AnalysisError(ReproError):
    """Invalid parameters for the analytical security model."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/trace subsystem (kind mismatch, bad config)."""


class SanitizerError(ReproError):
    """A runtime sanitizer detected a violated simulator invariant.

    Carries the name of the checker that fired and the event that
    triggered it, so tests and CLI output can attribute the violation.
    """

    def __init__(self, message: str, checker: str = "", event: str = ""):
        super().__init__(message)
        self.checker = checker
        self.event = event
