"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch the whole family with one clause while tests can assert
on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class DramError(ReproError):
    """Base class for DRAM-substrate errors."""


class AddressError(DramError):
    """A physical address is out of range or misaligned."""


class RowRemapError(DramError):
    """An invalid row-remapping was requested (e.g. cell-type mismatch)."""


class KernelError(ReproError):
    """Base class for OS-model errors."""


class OutOfMemoryError(KernelError):
    """The buddy allocator could not satisfy an allocation request."""


class CapacityError(OutOfMemoryError):
    """A finite capacity pool is exhausted (ZONE_PTP, ZONE_HYPERVISOR, ...).

    Distinct from a transient allocation failure: the pool was sized at
    configuration time and demand outgrew it, so retrying without freeing
    or reconfiguring cannot succeed. Subclasses ``OutOfMemoryError`` so
    existing allocation-failure handling (sprays, reclaim paths) degrades
    gracefully, while the CLI can render capacity exhaustion specially.
    """

    def __init__(self, message: str, zone: str = ""):
        super().__init__(message)
        self.zone = zone


class ZoneViolationError(KernelError):
    """An allocation would violate a zone policy (e.g. CTA rules 1/2)."""


class PageTableError(KernelError):
    """Malformed page-table structure or walk failure."""


class PageFaultError(KernelError):
    """A virtual access could not be translated or lacked permission."""

    def __init__(self, message: str, virtual_address: int = 0):
        super().__init__(message)
        self.virtual_address = virtual_address


class ProcessError(KernelError):
    """Invalid process-level operation (bad mmap, double free, ...)."""


class AttackError(ReproError):
    """An attack harness was misused or hit an unexpected state."""


class PayloadError(ReproError):
    """A hammer-payload program is malformed or cannot be executed.

    Raised by the :mod:`repro.payload` validator (IR invariant broken),
    compiler (program lowers to more steps than the budget allows), and
    executors (a step needs a context piece — hammer, kernel, module —
    that the caller did not supply).
    """


class DefenseError(ReproError):
    """A defense was configured or engaged incorrectly."""


class AnalysisError(ReproError):
    """Invalid parameters for the analytical security model."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/trace subsystem (kind mismatch, bad config)."""


class FaultInjectionError(ReproError):
    """Misuse of the fault-injection plane (bad spec, missing target)."""


class TransientFaultError(FaultInjectionError):
    """An *injected* transient failure (e.g. a DRAM read error).

    Raised by fault injectors to abort the operation in flight; campaign
    runners treat it as retryable. ``fault`` names the injector spec that
    fired, for attribution in reports.
    """

    def __init__(self, message: str, fault: str = ""):
        super().__init__(message)
        self.fault = fault


class SanitizerError(ReproError):
    """A runtime sanitizer detected a violated simulator invariant.

    Carries the name of the checker that fired and the event that
    triggered it, so tests and CLI output can attribute the violation.
    """

    def __init__(self, message: str, checker: str = "", event: str = ""):
        super().__init__(message)
        self.checker = checker
        self.event = event
