"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch the whole family with one clause while tests can assert
on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class DramError(ReproError):
    """Base class for DRAM-substrate errors."""


class AddressError(DramError):
    """A physical address is out of range or misaligned."""


class RowRemapError(DramError):
    """An invalid row-remapping was requested (e.g. cell-type mismatch)."""


class KernelError(ReproError):
    """Base class for OS-model errors."""


class OutOfMemoryError(KernelError):
    """The buddy allocator could not satisfy an allocation request."""


class CapacityError(OutOfMemoryError):
    """A finite capacity pool is exhausted (ZONE_PTP, ZONE_HYPERVISOR, ...).

    Distinct from a transient allocation failure: the pool was sized at
    configuration time and demand outgrew it, so retrying without freeing
    or reconfiguring cannot succeed. Subclasses ``OutOfMemoryError`` so
    existing allocation-failure handling (sprays, reclaim paths) degrades
    gracefully, while the CLI can render capacity exhaustion specially.
    """

    def __init__(self, message: str, zone: str = ""):
        super().__init__(message)
        self.zone = zone


class ZoneViolationError(KernelError):
    """An allocation would violate a zone policy (e.g. CTA rules 1/2)."""


class PageTableError(KernelError):
    """Malformed page-table structure or walk failure."""


class PageFaultError(KernelError):
    """A virtual access could not be translated or lacked permission."""

    def __init__(self, message: str, virtual_address: int = 0):
        super().__init__(message)
        self.virtual_address = virtual_address


class ProcessError(KernelError):
    """Invalid process-level operation (bad mmap, double free, ...)."""


class AttackError(ReproError):
    """An attack harness was misused or hit an unexpected state."""


class PayloadError(ReproError):
    """A hammer-payload program is malformed or cannot be executed.

    Raised by the :mod:`repro.payload` validator (IR invariant broken),
    compiler (program lowers to more steps than the budget allows), and
    executors (a step needs a context piece — hammer, kernel, module —
    that the caller did not supply).
    """


class DefenseError(ReproError):
    """A defense was configured or engaged incorrectly."""


class AnalysisError(ReproError):
    """Invalid parameters for the analytical security model."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/trace subsystem (kind mismatch, bad config)."""


class FaultInjectionError(ReproError):
    """Misuse of the fault-injection plane (bad spec, missing target)."""


class TransientFaultError(FaultInjectionError):
    """An *injected* transient failure (e.g. a DRAM read error).

    Raised by fault injectors to abort the operation in flight; campaign
    runners treat it as retryable. ``fault`` names the injector spec that
    fired, for attribution in reports.
    """

    def __init__(self, message: str, fault: str = ""):
        super().__init__(message)
        self.fault = fault


class ServiceError(ReproError):
    """Misuse or failure inside the long-lived campaign service."""


class AdmissionError(ServiceError):
    """The campaign service refused a request at the front door.

    Typed rejection — never a hang or a crash. ``reason`` is a stable
    machine-readable tag (``queue-full``, ``tenant-cap``, ``deadline``,
    ``deadline-missed``, ``shed``, ``draining``) so clients and tests can
    branch on the admission decision without parsing prose.
    """

    def __init__(self, message: str, reason: str = ""):
        super().__init__(message)
        self.reason = reason


class WorkerCrashError(TransientFaultError):
    """A campaign worker died mid-segment (process death or injected).

    Subclasses :class:`TransientFaultError` so every retry taxonomy that
    already treats injected transients as retryable — the serial
    :class:`~repro.faults.campaign.CampaignRunner`, the parallel engine,
    and the service supervisor — classifies worker death the same way
    instead of propagating a raw executor exception.
    """


class WorkerHangError(WorkerCrashError):
    """A campaign worker stopped heartbeating (hang or injected stall).

    Detected by the supervisor's per-segment timeout; handled like a
    crash (kill, restart with backoff, re-enqueue the lost segment) but
    attributed separately in restart accounting.
    """


class SnapshotCorruptError(ServiceError):
    """A snapshot-library world failed to attach (corrupt or injected).

    Each occurrence is a circuit-breaker strike against the snapshot
    key; repeated strikes quarantine the snapshot and the service falls
    back to cold-booting segment worlds.
    """

    def __init__(self, message: str, key: str = ""):
        super().__init__(message)
        self.key = key


class MemoIntegrityError(ReproError):
    """A memoized segment result diverged from its recomputation.

    Raised by the ``--memo-verify`` sampling mode in
    :mod:`repro.perf.memo`: a cache hit whose stored bytes do not equal
    the freshly recomputed canonical serialization is a broken
    byte-identity contract — either the store was corrupted or a key
    component (config, seed, fault schedule, code version) failed to
    capture something the segment result depends on. ``key`` carries the
    hex digest of the offending :class:`~repro.perf.memo.SegmentKey`.
    """

    def __init__(self, message: str, key: str = ""):
        super().__init__(message)
        self.key = key


class SanitizerError(ReproError):
    """A runtime sanitizer detected a violated simulator invariant.

    Carries the name of the checker that fired and the event that
    triggered it, so tests and CLI output can attribute the violation.
    """

    def __init__(self, message: str, checker: str = "", event: str = ""):
        super().__init__(message)
        self.checker = checker
        self.event = event
