"""repro.faults — the deterministic, seeded fault-injection (chaos) plane.

The sanitizer fabric (:mod:`repro.sanitize`) proves invariants *hold*;
this package is its adversary: it perturbs the simulator through the very
same hook points — plus a few fault-only pre-hooks on hot paths — with
named, bounded, seeded fault schedules, so robustness claims (graceful
ZONE_PTP degradation, campaign resumability, sanitizer bite) can be
tested instead of assumed.

Design mirrors :mod:`repro.obs` / :mod:`repro.sanitize`: one process-wide
default :class:`FaultPlane`, module-level helpers resolving it at call
time, and a cheap disarmed path — a disarmed plane turns every hook into
one attribute check. Every firing is counted in :mod:`repro.obs` under
``faults.injected`` (labelled by fault name and event) and traced as
``faults.inject``, so injected chaos is always visible in ``repro stats``
output.

Hook events reaching the plane:

- forwarded by :func:`repro.sanitize.notify` (shared with sanitizers):
  ``buddy.alloc``, ``buddy.free``, ``buddy.prepare_alloc``,
  ``kernel.page_alloc``, ``kernel.page_free``, ``dram.bit_flip``,
  ``rowhammer.hammer``, ``mmu.translate``, ``attack.campaign``;
- fault-only pre-hooks (suppression points the sanitizers have no use
  for): ``dram.read``, ``tlb.invalidate``, ``refresh.sweep``;
- campaign-service hooks from :mod:`repro.service` (the supervisor
  offers every segment dispatch and snapshot attach to the plane so
  worker crashes, hangs, and snapshot corruption replay from a seed):
  ``service.segment``, ``service.snapshot_attach``.

Usage::

    from repro import faults

    plane = faults.install(
        ["ecc-miscorrect:p=0.2,max=3", "dram-read-error:p=1e-5"],
        seed=7, kernel=kernel,
    )
    ...  # run workloads; faults fire deterministically
    print(plane.counts)       # {spec name: fires}
    faults.uninstall()

Determinism: the plane seeds one :mod:`repro.rng` stream and splits a
child stream per spec, so each injector's schedule depends only on the
seed and the sequence of events *it* matches — rule ``RL006`` in
:mod:`repro.sanitize.lint` statically keeps wall-clock and ambient
entropy out of this package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro import obs
from repro.faults.injectors import (
    KINDS,
    FaultInjector,
    FaultSpec,
    PtpExhaustionInjector,
    build_injector,
)
from repro.rng import SeedLike, make_rng, split_rng

__all__ = [
    "KINDS",
    "FaultInjector",
    "FaultPlane",
    "FaultSpec",
    "get_plane",
    "set_plane",
    "reset",
    "arm",
    "disarm",
    "armed",
    "epoch",
    "notify",
    "install",
    "uninstall",
]

SpecLike = Union[str, FaultSpec]


class FaultPlane:
    """A set of armed fault injectors plus their dispatch fabric.

    Starts disarmed: :func:`notify` and the :func:`repro.sanitize.notify`
    forwarding path skip it entirely until :meth:`arm`. ``injected``
    totals firings across all injectors; :attr:`counts` breaks them down
    by spec name for campaign reports.
    """

    def __init__(self, seed: SeedLike = None):
        self._rng = make_rng(seed)
        #: The integer seed this plane's schedules derive from, when one
        #: was given; ``None`` for generator/implicit seeding, in which
        #: case :meth:`schedule_token` reports the schedule as
        #: non-reproducible (the segment memo then bypasses the cache).
        self.seed_token: Optional[int] = seed if isinstance(seed, int) else None
        self._injectors: List[FaultInjector] = []
        self._by_event: Dict[str, List[FaultInjector]] = {}
        self._armed = False
        # Guards against re-entrant dispatch: an injector's own mutations
        # (e.g. an ECC burst calling flip_bit) re-enter notify().
        self._in_dispatch = False
        #: Total faults injected through this plane.
        self.injected = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def armed(self) -> bool:
        """Whether events are dispatched to injectors."""
        return self._armed

    def arm(self) -> None:
        """Start injecting."""
        self._armed = True
        _bump_epoch()

    def disarm(self) -> None:
        """Stop injecting (hooks become no-ops; schedules freeze)."""
        self._armed = False
        _bump_epoch()

    @property
    def injectors(self) -> tuple:
        """Registered injectors, in registration order."""
        return tuple(self._injectors)

    def add(
        self,
        spec: SpecLike,
        kernel: Optional[object] = None,
        remapper: Optional[object] = None,
    ) -> FaultInjector:
        """Register an injector for ``spec`` with its own child rng stream."""
        if isinstance(spec, str):
            spec = FaultSpec.parse(spec)
        injector = build_injector(
            spec, split_rng(self._rng, spec.name), kernel=kernel, remapper=remapper
        )
        self._injectors.append(injector)
        for event in injector.events:
            self._by_event.setdefault(event, []).append(injector)
        return injector

    # -- dispatch ----------------------------------------------------------
    def dispatch(self, event: str, ctx: Mapping[str, object]) -> bool:
        """Offer one event to every subscribed injector.

        Returns True when any firing injector asked for the triggering
        operation to be suppressed. Raise-style injectors propagate their
        exception *after* the firing is counted, so aborted operations
        still show up in ``faults.injected``.
        """
        if self._in_dispatch:
            return False
        suppress = False
        self._in_dispatch = True
        try:
            for injector in self._by_event.get(event, ()):
                if not injector.matches(event, ctx):
                    continue
                if not injector.should_fire():
                    continue
                injector.fires += 1
                self.injected += 1
                obs.inc("faults.injected", fault=injector.spec.name, event=event)
                obs.trace(
                    "faults.inject",
                    fault=injector.spec.name,
                    kind=injector.spec.kind,
                    event=event,
                )
                if injector.fire(event, ctx):
                    suppress = True
        finally:
            self._in_dispatch = False
        return suppress

    def schedule_token(self) -> Optional[Dict[str, object]]:
        """JSON-able identity of this plane's injected-fault schedule.

        The token pins everything a replay needs: the installing seed
        plus every spec's full field set, in registration order (child
        rng streams split per spec name, so order + names + seed fix the
        schedules exactly). Returns ``None`` when the plane carries
        injectors but no recorded integer seed — such a schedule cannot
        be reproduced, so content-addressed caches must treat it as
        uncacheable rather than key on a lie.
        """
        from dataclasses import asdict

        if not self._injectors:
            return {"seed": self.seed_token, "specs": []}
        if self.seed_token is None:
            return None
        return {
            "seed": self.seed_token,
            "specs": [asdict(injector.spec) for injector in self._injectors],
        }

    # -- reporting ---------------------------------------------------------
    @property
    def counts(self) -> Dict[str, int]:
        """Firing counts by spec name (stable insertion order)."""
        return {injector.spec.name: injector.fires for injector in self._injectors}

    def release_held(self) -> int:
        """Release resources held by exhaustion-style injectors."""
        released = 0
        for injector in self._injectors:
            if isinstance(injector, PtpExhaustionInjector):
                released += injector.release()
        return released


_default_plane = FaultPlane()

# Monotonic counter bumped whenever the armed state of *any* plane (or the
# identity of the default plane) may have changed. Hot paths cache the
# result of :func:`armed` keyed by this epoch instead of probing the plane
# on every access — see ``DramModule.fault_plane_armed``.
_epoch = 0


def _bump_epoch() -> None:
    global _epoch
    _epoch += 1


def epoch() -> int:
    """Current armed-state epoch (see module comment on ``_epoch``)."""
    return _epoch


def get_plane() -> FaultPlane:
    """The process-wide default plane."""
    return _default_plane


def set_plane(plane: FaultPlane) -> FaultPlane:
    """Install ``plane`` as the default; returns it (for chaining)."""
    global _default_plane
    _default_plane = plane
    _bump_epoch()
    return plane


def reset() -> FaultPlane:
    """Replace the default plane with a fresh, disarmed, empty one."""
    return set_plane(FaultPlane())


def arm() -> None:
    """Arm the default plane."""
    _default_plane.arm()


def disarm() -> None:
    """Disarm the default plane."""
    _default_plane.disarm()


def armed() -> bool:
    """Whether the default plane is armed."""
    return _default_plane.armed


def notify(event: str, **ctx: object) -> bool:
    """Offer one event to the default plane from a fault-only pre-hook.

    Returns True when the triggering operation must be suppressed. Hot
    call sites may pre-check ``faults.get_plane().armed`` to skip kwargs
    construction on the common disarmed path.
    """
    plane = _default_plane
    if not plane._armed:
        return False
    return plane.dispatch(event, ctx)


def install(
    specs: Iterable[SpecLike],
    seed: SeedLike = None,
    kernel: Optional[object] = None,
    remapper: Optional[object] = None,
) -> FaultPlane:
    """Build, install and arm a fresh plane carrying ``specs``.

    ``kernel`` / ``remapper`` are handed to injectors that need a target
    (``ptp-exhaust`` / ``remap-corrupt``); target-less injectors ignore
    them. Returns the armed plane.
    """
    plane = FaultPlane(seed=seed)
    for spec in specs:
        plane.add(spec, kernel=kernel, remapper=remapper)
    set_plane(plane)
    plane.arm()
    return plane


def uninstall() -> FaultPlane:
    """Release held resources, then reset to a disarmed empty plane."""
    _default_plane.disarm()
    _default_plane.release_held()
    return reset()
