"""Built-in chaos segments for ``repro chaos`` / ``repro resume``.

A chaos campaign rotates three segment kinds, each a self-contained
world (fresh kernel, hammer, sanitizers, fault plane) so segments are
order-independent and resumable:

``probabilistic``
    The Drammer-style spray attack on a *stock* kernel under heavy fault
    pressure (ECC miscorrection bursts, transient read errors, allocator
    pressure, stale TLB entries, stalled refresh sweeps, remap-table
    corruption) with the buddy/zone sanitizers armed.
``algorithm1``
    The paper's Algorithm 1 on a *CTA* kernel whose ZONE_PTP gets drained
    mid-spray by the ``ptp-exhaust`` injector, exercising the configured
    exhaustion policy under the full sanitizer set (including
    monotonicity and no-self-reference).
``montecarlo``
    A batch of the Section 4 Monte Carlo security model — pure
    computation that demonstrates deterministic result merging across
    checkpoint/resume.

Every segment returns a plain dict (JSON-checkpointable) carrying its
outcome, per-fault firing counts, sanitizer accounting and any security
downgrades, so ``CampaignReport.fault_totals`` can aggregate them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro import faults, sanitize
from repro.analysis.montecarlo import simulate_exploitable_ptes
from repro.dram.refresh import RefreshScheduler
from repro.dram.remap import RowRemapper
from repro.dram.rowhammer import FlipStatistics, RowHammerModel
from repro.errors import OutOfMemoryError, TransientFaultError
from repro.faults.campaign import CampaignBudget, CampaignRunner
from repro.faults.injectors import FaultSpec
from repro.kernel.cta import CtaConfig
from repro.kernel.degrade import ExhaustionPolicy
from repro.kernel.kernel import Kernel, KernelConfig
from repro.rng import derive_seed
from repro.units import GIB, MIB

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.perf.memo.runtime import SegmentMemo

#: Segment rotation; ``index % 3`` picks the kind.
SEGMENT_KINDS = ("probabilistic", "algorithm1", "montecarlo")

#: Default segment count for a full chaos campaign (two full rotations).
DEFAULT_SEGMENTS = 6


def segment_kind(index: int) -> str:
    """Which scenario a segment index runs."""
    return SEGMENT_KINDS[index % len(SEGMENT_KINDS)]


def _stock_kernel() -> Kernel:
    return Kernel(
        KernelConfig(
            total_bytes=16 * MIB,
            row_bytes=16 * 1024,
            num_banks=2,
            cell_interleave_rows=32,
        )
    )


def _cta_kernel(policy: str) -> Kernel:
    return Kernel(
        KernelConfig(
            total_bytes=32 * MIB,
            row_bytes=16 * 1024,
            num_banks=2,
            cell_interleave_rows=32,
            cta=CtaConfig(ptp_bytes=2 * MIB),
            profile_cells=False,
            ptp_exhaustion_policy=policy,
        )
    )


def _segment_kernel(snapshot: Optional[str], factory) -> Kernel:
    """A segment's world: warm-started from a snapshot, or freshly booted.

    Segments boot their kernel *before* installing the fault plane and
    sanitizers, so attaching copy-on-write to a pre-boot snapshot (and
    merging its captured boot obs) is indistinguishable from the cold
    boot — reports, checkpoints, and metric totals stay byte-identical.
    """
    if snapshot is None:
        return factory()
    from repro.perf.snapshot import SimulatorSnapshot

    kernel, _ = SimulatorSnapshot.attach_cached(snapshot).materialize()
    return kernel


def _segment_verdicts(payloads, kernel) -> list:
    """Static verify verdicts for a segment's executed payloads.

    Plain JSON dicts (segments cross process boundaries under the
    parallel runner); deduplicated by digest inside the summary helper.
    """
    from repro.verify import payload_verdict_summary

    return payload_verdict_summary(payloads, kernel)


def _probabilistic_segment(
    seed: int, smoke: bool, snapshot: Optional[str] = None
) -> Dict[str, Any]:
    from repro.attacks.probabilistic import ProbabilisticPteAttack

    kernel = _segment_kernel(snapshot, _stock_kernel)
    hammer = RowHammerModel(
        kernel.module,
        FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5),
        seed=derive_seed(seed, "hammer"),
    )
    suite = sanitize.install(kernel, hammer=hammer)
    remapper = RowRemapper(kernel.module.cell_map)
    refresh = RefreshScheduler(total_rows=kernel.module.geometry.total_rows)
    plane = faults.install(
        [
            FaultSpec("ecc-miscorrect", probability=0.2, max_fires=3),
            FaultSpec("dram-read-error", probability=2e-6, max_fires=1),
            FaultSpec("buddy-oom", probability=0.01, max_fires=2),
            FaultSpec("tlb-stale", probability=0.05, max_fires=6),
            FaultSpec("refresh-stall", probability=0.5, max_fires=1),
            FaultSpec("remap-corrupt", probability=0.25, max_fires=2),
        ],
        seed=derive_seed(seed, "faults"),
        kernel=kernel,
        remapper=remapper,
    )
    attack = ProbabilisticPteAttack(kernel=kernel, hammer=hammer)
    result = attack.run(
        kernel.create_process(),
        spray_mappings=16 if smoke else 48,
        max_rounds=1 if smoke else 2,
    )
    for _ in range(2):
        refresh.advance(0.064)
        refresh.refresh_all()
    faults.disarm()
    suite.check_now()
    return {
        "outcome": result.outcome.value,
        "hammer_rounds": result.hammer_rounds,
        "flips": result.flips_induced,
        "faults": plane.counts,
        "remap_corruptions": len(remapper.remapped_rows),
        "stalled_rows_overdue": len(refresh.overdue_rows()),
        "sanitizer_checks": suite.checks,
        "sanitizer_violations": suite.violations,
        "payloads": [p.digest() for p in attack.executed_payloads],
        "payload_verdicts": _segment_verdicts(attack.executed_payloads, kernel),
    }


def _algorithm1_segment(
    seed: int, policy: str, smoke: bool, snapshot: Optional[str] = None
) -> Dict[str, Any]:
    from repro.attacks.algorithm1 import CtaBruteForceAttack

    kernel = _segment_kernel(snapshot, lambda: _cta_kernel(policy))
    # Idealized true-cells (p_with_leak=1.0): every flip is 1 -> 0, the
    # regime where the monotonicity sanitizer must stay silent.
    hammer = RowHammerModel(
        kernel.module,
        FlipStatistics(p_vulnerable=3e-2, p_with_leak=1.0),
        seed=derive_seed(seed, "hammer"),
    )
    suite = sanitize.install(kernel, hammer=hammer)
    plane = faults.install(
        [
            FaultSpec("ptp-exhaust", probability=1.0, max_fires=1, start_after=2),
            FaultSpec(
                "buddy-oom", probability=0.01, max_fires=2, target="ZONE_NORMAL"
            ),
            FaultSpec("tlb-stale", probability=0.03, max_fires=4),
        ],
        seed=derive_seed(seed, "faults"),
        kernel=kernel,
    )
    attack = CtaBruteForceAttack(kernel=kernel, hammer=hammer)
    result = attack.run(
        kernel.create_process(),
        max_target_pages=1,
        spray_mappings=12 if smoke else 24,
    )
    faults.disarm()
    kernel.verify_cta_rules()
    suite.check_now()
    return {
        "outcome": result.outcome.value,
        "hammer_rounds": result.hammer_rounds,
        "flips": result.flips_induced,
        "faults": plane.counts,
        "policy": policy,
        "capacity_exhaustions": kernel.stats.capacity_exhaustions,
        "security_downgrades": kernel.stats.security_downgrades,
        "pointer_observations": len(attack.observations),
        "sanitizer_checks": suite.checks,
        "sanitizer_violations": suite.violations,
        "payloads": [p.digest() for p in attack.executed_payloads],
        "payload_verdicts": _segment_verdicts(attack.executed_payloads, kernel),
    }


def _montecarlo_segment(seed: int, smoke: bool) -> Dict[str, Any]:
    result = simulate_exploitable_ptes(
        total_bytes=8 * GIB,
        ptp_bytes=32 * MIB,
        p_vulnerable=1e-4,
        p_up=0.5,
        trials=1 if smoke else 4,
        seed=derive_seed(seed, "montecarlo"),
    )
    return {
        "num_ptes": result.num_ptes,
        "exploitable": result.exploitable_count,
        "trials": result.trials,
        "faults": {},
        "sanitizer_checks": 0,
        "sanitizer_violations": 0,
    }


def run_chaos_segment(
    index: int,
    seed: int,
    policy: str = "fail-hard",
    smoke: bool = True,
    snapshot_names: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Run one chaos segment in a clean world; always tears chaos down.

    ``snapshot_names`` maps segment kinds to shared-memory snapshot names
    (see :func:`run_chaos_campaign`'s ``warm_start``); kinds without an
    entry boot cold.
    """
    kind = segment_kind(index)
    names = snapshot_names or {}
    sanitize.reset()
    faults.uninstall()
    try:
        if kind == "probabilistic":
            result = _probabilistic_segment(seed, smoke, snapshot=names.get(kind))
        elif kind == "algorithm1":
            result = _algorithm1_segment(
                seed, policy, smoke, snapshot=names.get(kind)
            )
        else:
            result = _montecarlo_segment(seed, smoke)
    finally:
        faults.uninstall()
        sanitize.reset()
    result["kind"] = kind
    return result


def run_chaos_campaign(
    seed: Optional[int],
    num_segments: int = DEFAULT_SEGMENTS,
    policy: Union[str, ExhaustionPolicy] = "fail-hard",
    smoke: bool = True,
    checkpoint_path: Optional[str] = None,
    budget: Optional[CampaignBudget] = None,
    workers: int = 1,
    resume: bool = False,
    warm_start: bool = False,
    memo: Optional["SegmentMemo"] = None,
):
    """Run the standard chaos rotation, serially or across processes.

    ``workers <= 1`` is the serial :func:`build_chaos_runner` path;
    ``workers > 1`` fans segments out via
    :func:`repro.perf.parallel.run_campaign_parallel` with the same
    retry protocol, so reports, checkpoints and obs totals are identical
    for the same seed (the parallel determinism contract).

    ``warm_start`` boots the stock and CTA worlds once into shared-memory
    snapshots; every probabilistic/algorithm1 segment then attaches
    copy-on-write instead of re-booting. The snapshot names travel in the
    segment kwargs only — never in ``config`` — so checkpoint files stay
    byte-identical to cold runs.

    ``memo`` threads a segment-result cache through either engine. The
    chaos segments are cacheable even though they inject faults: each
    installs its *own* plane seeded ``derive_seed(segment_seed,
    "faults")`` and always uninstalls it, so the whole fault schedule —
    down to the per-fault firing counts in the cached record — is a pure
    function of the segment seed already in the key.
    """
    policy_value = ExhaustionPolicy.coerce(policy).value
    snapshots = []
    snapshot_names: Optional[Dict[str, str]] = None
    if warm_start:
        from repro.perf.snapshot import SimulatorSnapshot

        snapshots = [
            SimulatorSnapshot.capture(_stock_kernel),
            SimulatorSnapshot.capture(lambda: _cta_kernel(policy_value)),
        ]
        snapshot_names = {
            "probabilistic": snapshots[0].name,
            "algorithm1": snapshots[1].name,
        }
    try:
        if workers <= 1:
            runner = build_chaos_runner(
                seed,
                num_segments=num_segments,
                policy=policy_value,
                smoke=smoke,
                checkpoint_path=checkpoint_path,
                budget=budget,
                snapshot_names=snapshot_names,
                memo=memo,
            )
            return runner.run(resume=resume)
        from repro.perf.parallel import run_campaign_parallel

        kwargs: Dict[str, Any] = {"policy": policy_value, "smoke": bool(smoke)}
        if snapshot_names is not None:
            kwargs["snapshot_names"] = snapshot_names
        return run_campaign_parallel(
            name="chaos",
            target="repro.faults.scenarios:run_chaos_segment",
            num_segments=num_segments,
            seed=seed,
            kwargs=kwargs,
            config={"policy": policy_value, "smoke": bool(smoke)},
            workers=workers,
            max_retries=2,
            backoff_base_s=0.25,
            retryable=(TransientFaultError, OutOfMemoryError),
            checkpoint_path=checkpoint_path,
            budget=budget,
            resume=resume,
            memo=memo,
        )
    finally:
        for snap in snapshots:
            snap.release()


def build_chaos_runner(
    seed: Optional[int],
    num_segments: int = DEFAULT_SEGMENTS,
    policy: Union[str, ExhaustionPolicy] = "fail-hard",
    smoke: bool = True,
    checkpoint_path: Optional[str] = None,
    budget: Optional[CampaignBudget] = None,
    max_retries: int = 2,
    sleep_fn: Optional[Any] = None,
    time_source: Optional[Any] = None,
    snapshot_names: Optional[Dict[str, str]] = None,
    memo: Optional["SegmentMemo"] = None,
) -> CampaignRunner:
    """A :class:`CampaignRunner` over the standard chaos rotation."""
    policy_value = ExhaustionPolicy.coerce(policy).value

    def segment_fn(index: int, segment_seed: int, attempt: int) -> Dict[str, Any]:
        return run_chaos_segment(
            index,
            segment_seed,
            policy=policy_value,
            smoke=smoke,
            snapshot_names=snapshot_names,
        )

    return CampaignRunner(
        name="chaos",
        segment_fn=segment_fn,
        num_segments=num_segments,
        seed=seed,
        config={"policy": policy_value, "smoke": bool(smoke)},
        budget=budget,
        checkpoint_path=checkpoint_path,
        max_retries=max_retries,
        backoff_base_s=0.25,
        retryable=(TransientFaultError, OutOfMemoryError),
        sleep_fn=sleep_fn,
        time_source=time_source,
        memo=memo,
    )
