"""Named fault specs and the injector classes that realise them.

Each injector subscribes to one or more of the hook events the sanitizers
already listen on (see :mod:`repro.faults` for the event table), draws its
firing schedule from a dedicated :mod:`repro.rng` stream, and perturbs the
simulator exactly the way real hardware or kernel pressure would:

==================  ========================  ================================
kind                hook event                effect when it fires
==================  ========================  ================================
``ecc-miscorrect``  ``rowhammer.hammer``      burst of extra bit flips in one
                                              64-bit word of a victim row (an
                                              ECC "correction" that made
                                              things worse, Section 2.3)
``refresh-stall``   ``refresh.sweep``         suppresses the sweep; rows stay
                                              overdue past their deadline
``remap-corrupt``   ``rowhammer.hammer``      writes a vendor remap-table
                                              entry bypassing the cell-type
                                              rule (needs a ``remapper``)
``dram-read-error`` ``dram.read``             raises ``TransientFaultError``
                                              aborting the access in flight
``buddy-oom``       ``buddy.prepare_alloc``   raises ``OutOfMemoryError``
                                              before the allocator commits
                                              (optional ``target`` zone-name
                                              prefix)
``tlb-stale``       ``tlb.invalidate``        suppresses the invlpg; the TLB
                                              serves a stale translation
``ptp-exhaust``     ``kernel.page_alloc``     drains every free ZONE_PTP
                                              block into a held list (needs
                                              a ``kernel``)
``worker-crash``    ``service.segment``       raises ``WorkerCrashError``;
                                              the service supervisor treats
                                              the worker as dead, restarts
                                              it and re-enqueues the segment
``worker-hang``     ``service.segment``       raises ``WorkerHangError``;
                                              models a heartbeat/timeout
                                              hang the supervisor must kill
``snapshot-corrupt`` ``service.snapshot_attach`` raises ``SnapshotCorruptError``
                                              for the attaching snapshot key
                                              (optional ``target`` key
                                              prefix); repeated strikes trip
                                              the library's circuit breaker
==================  ========================  ================================

Specs are parseable from compact strings (``kind:key=value,...``), e.g.
``"ecc-miscorrect:p=0.2,max=3,burst=3"`` — the format ``repro chaos``
documents in the README.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Type

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    OutOfMemoryError,
    SnapshotCorruptError,
    TransientFaultError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.kernel.page import PageUse
from repro.kernel.zones import ZoneId
from repro.rng import Rng, bernoulli

#: spec-string key aliases -> FaultSpec field.
_SPEC_KEYS: Dict[str, str] = {
    "p": "probability",
    "probability": "probability",
    "max": "max_fires",
    "max_fires": "max_fires",
    "after": "start_after",
    "start_after": "start_after",
    "target": "target",
    "burst": "burst_bits",
    "burst_bits": "burst_bits",
    "name": "name",
}


@dataclass(frozen=True)
class FaultSpec:
    """One named, bounded, probabilistic fault schedule.

    ``probability`` is the per-matched-event firing chance; ``start_after``
    skips the first N matched events; ``max_fires`` caps total firings
    (None = unbounded). ``target`` narrows matching (zone-name prefix for
    ``buddy-oom``); ``burst_bits`` sizes ``ecc-miscorrect`` bursts.
    """

    kind: str
    name: str = ""
    probability: float = 1.0
    max_fires: Optional[int] = None
    start_after: int = 0
    target: str = ""
    burst_bits: int = 3

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            known = ", ".join(sorted(KINDS))
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (known: {known})"
            )
        if not self.name:
            object.__setattr__(self, "name", self.kind)
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability {self.probability} outside [0, 1]"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigurationError(f"max_fires {self.max_fires} must be >= 1")
        if self.start_after < 0:
            raise ConfigurationError(f"start_after {self.start_after} must be >= 0")
        if not 1 <= self.burst_bits <= 64:
            raise ConfigurationError(
                f"burst_bits {self.burst_bits} outside [1, 64]"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a compact ``kind[:key=value[,key=value...]]`` spec string."""
        kind, _, rest = text.partition(":")
        kind = kind.strip()
        if not kind:
            raise ConfigurationError(f"empty fault kind in spec {text!r}")
        kwargs: Dict[str, object] = {}
        if rest.strip():
            for item in rest.split(","):
                key, sep, value = item.partition("=")
                key, value = key.strip(), value.strip()
                if not sep or not key or not value:
                    raise ConfigurationError(
                        f"malformed fault-spec item {item!r} in {text!r}"
                    )
                attr = _SPEC_KEYS.get(key)
                if attr is None:
                    known = ", ".join(sorted(set(_SPEC_KEYS)))
                    raise ConfigurationError(
                        f"unknown fault-spec key {key!r} (known: {known})"
                    )
                try:
                    if attr == "probability":
                        kwargs[attr] = float(value)
                    elif attr in ("max_fires", "start_after", "burst_bits"):
                        kwargs[attr] = int(value)
                    else:
                        kwargs[attr] = value
                except ValueError:
                    raise ConfigurationError(
                        f"fault-spec key {key!r} has non-numeric value {value!r}"
                    ) from None
        return cls(kind=kind, **kwargs)  # type: ignore[arg-type]


class FaultInjector:
    """Base class: schedule bookkeeping shared by every fault kind.

    ``matches`` filters events cheaply (no rng draw on a mismatch);
    ``should_fire`` consumes exactly one Bernoulli draw per matched event
    so schedules stay deterministic regardless of what other injectors do;
    ``fire`` perturbs the system and returns True when the triggering
    operation must be *suppressed* (stalled sweep, swallowed invlpg).
    """

    kind: str = ""
    events: Tuple[str, ...] = ()

    def __init__(
        self,
        spec: FaultSpec,
        rng: Rng,
        kernel: Optional[object] = None,
        remapper: Optional[object] = None,
    ):
        self.spec = spec
        self._rng = rng
        self._kernel = kernel
        self._remapper = remapper
        #: Times this injector actually fired.
        self.fires = 0
        #: Matched events seen (drives ``start_after``).
        self._seen = 0

    def matches(self, event: str, ctx: Mapping[str, object]) -> bool:
        """Whether this event is eligible (cheap; no rng use)."""
        return True

    def exhausted(self) -> bool:
        """Whether ``max_fires`` has been reached."""
        return self.spec.max_fires is not None and self.fires >= self.spec.max_fires

    def should_fire(self) -> bool:
        """Advance the schedule one matched event; True when it fires."""
        self._seen += 1
        if self._seen <= self.spec.start_after or self.exhausted():
            return False
        return bernoulli(self._rng, self.spec.probability)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        """Inject the fault; returns True to suppress the operation."""
        raise NotImplementedError


class EccMiscorrectionInjector(FaultInjector):
    """A multi-bit ECC miscorrection burst in a hammered victim row."""

    kind = "ecc-miscorrect"
    events = ("rowhammer.hammer",)

    def matches(self, event: str, ctx: Mapping[str, object]) -> bool:
        outcome = ctx.get("outcome")
        return outcome is not None and bool(getattr(outcome, "victim_rows", ()))

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        module = ctx["module"]
        outcome = ctx["outcome"]
        geometry = module.geometry  # type: ignore[attr-defined]
        rows = [
            int(row)
            for row in outcome.victim_rows  # type: ignore[attr-defined]
            if 0 <= row < geometry.total_rows
        ]
        if not rows:
            return False
        row = rows[int(self._rng.integers(0, len(rows)))]
        row_bytes = int(geometry.row_bytes)
        word_base = row * row_bytes + int(self._rng.integers(0, row_bytes // 8)) * 8
        burst = min(self.spec.burst_bits, 64)
        word_bits = self._rng.choice(64, size=burst, replace=False)
        for word_bit in sorted(int(b) for b in word_bits):
            module.flip_bit(  # type: ignore[attr-defined]
                word_base + word_bit // 8, word_bit % 8
            )
        return False


class RefreshStallInjector(FaultInjector):
    """A stalled refresh sweep: rows sail past their 64 ms deadline."""

    kind = "refresh-stall"
    events = ("refresh.sweep",)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        return True  # suppress the sweep


class RemapCorruptionInjector(FaultInjector):
    """Corrupts a vendor remap-table entry, ignoring the cell-type rule."""

    kind = "remap-corrupt"
    events = ("rowhammer.hammer",)

    def matches(self, event: str, ctx: Mapping[str, object]) -> bool:
        return self._remapper is not None

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        remapper = self._remapper
        if remapper is None:  # pragma: no cover - matches() guards this
            return False
        total = remapper.total_rows  # type: ignore[attr-defined]
        logical = int(self._rng.integers(0, total))
        physical = int(self._rng.integers(0, total))
        remapper.corrupt_entry(logical, physical)  # type: ignore[attr-defined]
        return False


class DramReadErrorInjector(FaultInjector):
    """A transient read failure: the access aborts with a counted error."""

    kind = "dram-read-error"
    events = ("dram.read",)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        address = int(ctx.get("address", 0))  # type: ignore[call-overload]
        raise TransientFaultError(
            f"injected transient DRAM read error at PA {address:#x}",
            fault=self.spec.name,
        )


class BuddyOomInjector(FaultInjector):
    """Allocator pressure: the buddy allocation fails before committing."""

    kind = "buddy-oom"
    events = ("buddy.prepare_alloc",)

    def matches(self, event: str, ctx: Mapping[str, object]) -> bool:
        allocator = ctx.get("allocator")
        if allocator is None:
            return False
        target = self.spec.target
        if not target:
            return True
        return str(getattr(allocator, "name", "")).startswith(target)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        allocator = ctx.get("allocator")
        name = str(getattr(allocator, "name", "")) or "?"
        raise OutOfMemoryError(
            f"injected allocator pressure in zone {name} "
            f"(fault {self.spec.name!r})"
        )


class TlbStalenessInjector(FaultInjector):
    """A swallowed invlpg: the TLB keeps serving a stale translation."""

    kind = "tlb-stale"
    events = ("tlb.invalidate",)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        return True  # suppress the invalidation


class PtpExhaustionInjector(FaultInjector):
    """Induced ZONE_PTP exhaustion: drains every free PTP block.

    Fires on a page-table allocation of the targeted kernel and grabs all
    remaining free blocks of every PTP sub-zone allocator directly (the
    page-frame database is untouched, so heap invariants stay clean — the
    zone is simply *full*). Held blocks can be released for recovery
    tests via :meth:`release`.
    """

    kind = "ptp-exhaust"
    events = ("kernel.page_alloc",)

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.held: List[Tuple[object, int]] = []

    def matches(self, event: str, ctx: Mapping[str, object]) -> bool:
        return (
            self._kernel is not None
            and ctx.get("kernel") is self._kernel
            and ctx.get("use") is PageUse.PAGE_TABLE
        )

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        kernel = self._kernel
        if kernel is None:  # pragma: no cover - matches() guards this
            return False
        for zone in kernel.layout.zones:  # type: ignore[attr-defined]
            if zone.zone_id is not ZoneId.PTP:
                continue
            allocator = kernel.allocator_for_zone(zone)  # type: ignore[attr-defined]
            while True:
                try:
                    pfn = allocator.alloc_pages(0)
                except OutOfMemoryError:
                    break
                self.held.append((allocator, pfn))
        return False

    def release(self) -> int:
        """Return every held block to its allocator; counts released blocks."""
        released = 0
        for allocator, pfn in self.held:
            allocator.free_pages_block(pfn)  # type: ignore[attr-defined]
            released += 1
        self.held.clear()
        return released


class WorkerCrashInjector(FaultInjector):
    """A dying campaign worker: the dispatched segment never completes.

    Raised *before* the segment executes, so nothing the lost worker
    would have recorded leaks into the merged campaign state — exactly
    like a real process death whose un-merged registry delta vanishes
    with it. The supervisor classifies the error as retryable, restarts
    the worker and re-enqueues the segment once.
    """

    kind = "worker-crash"
    events = ("service.segment",)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        index = int(ctx.get("index", -1))  # type: ignore[call-overload]
        raise WorkerCrashError(
            f"injected worker crash dispatching segment {index}",
            fault=self.spec.name,
        )


class WorkerHangInjector(FaultInjector):
    """A hung campaign worker: heartbeats stop, the segment stalls.

    The supervisor's per-segment deadline converts the stall into a
    :class:`WorkerHangError`; handling mirrors a crash (kill + restart +
    re-enqueue) with separate ``reason=hang`` restart accounting.
    """

    kind = "worker-hang"
    events = ("service.segment",)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        index = int(ctx.get("index", -1))  # type: ignore[call-overload]
        raise WorkerHangError(
            f"injected worker hang on segment {index} (heartbeat deadline)",
            fault=self.spec.name,
        )


class SnapshotCorruptInjector(FaultInjector):
    """A corrupt snapshot-library world that fails to attach.

    ``target`` narrows matching to snapshot keys with that prefix. Each
    firing is one circuit-breaker strike against the key; the library
    quarantines it after repeated strikes and falls back to cold boot.
    """

    kind = "snapshot-corrupt"
    events = ("service.snapshot_attach",)

    def matches(self, event: str, ctx: Mapping[str, object]) -> bool:
        if not self.spec.target:
            return True
        return str(ctx.get("key", "")).startswith(self.spec.target)

    def fire(self, event: str, ctx: Mapping[str, object]) -> bool:
        key = str(ctx.get("key", "?"))
        raise SnapshotCorruptError(
            f"injected snapshot corruption attaching {key!r}", key=key
        )


#: kind string -> injector class (the registry ``FaultSpec`` validates against).
KINDS: Dict[str, Type[FaultInjector]] = {
    cls.kind: cls
    for cls in (
        EccMiscorrectionInjector,
        RefreshStallInjector,
        RemapCorruptionInjector,
        DramReadErrorInjector,
        BuddyOomInjector,
        TlbStalenessInjector,
        PtpExhaustionInjector,
        WorkerCrashInjector,
        WorkerHangInjector,
        SnapshotCorruptInjector,
    )
}


def build_injector(
    spec: FaultSpec,
    rng: Rng,
    kernel: Optional[object] = None,
    remapper: Optional[object] = None,
) -> FaultInjector:
    """Instantiate the injector class for ``spec``, wiring its targets."""
    cls = KINDS.get(spec.kind)
    if cls is None:
        raise FaultInjectionError(f"no injector registered for kind {spec.kind!r}")
    return cls(spec, rng, kernel=kernel, remapper=remapper)
