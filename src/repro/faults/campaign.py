"""Crash-safe campaign running: budgets, checkpoints, backoff, resume.

Long campaigns (Algorithm 1 sweeps, probabilistic sprays, Monte Carlo
batches) are split into numbered *segments*. The runner executes them
under optional wall-clock / segment budgets, retries segments aborted by
transient injected faults with exponential backoff, checkpoints completed
work to JSON after every segment (atomic tmp-file + ``os.replace``), and
reports partial results when interrupted.

The determinism contract that makes resume trustworthy: segment ``index``
attempt ``attempt`` always runs with seed ``derive_seed(campaign_seed,
index, attempt)`` — independent of execution order or history — so a
killed-and-resumed campaign merges into *exactly* the result an
uninterrupted run would have produced (asserted by the resume tests).
Reports derive retry/backoff accounting from the recorded per-segment
attempt counts rather than live wall-clock, so they compare equal too.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Type, Union

from repro import obs
from repro.errors import ConfigurationError, TransientFaultError
from repro.rng import DEFAULT_SEED, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.perf.memo.runtime import SegmentMemo

CHECKPOINT_VERSION = 1

#: ``segment_fn(index, seed, attempt) -> result dict``.
SegmentFn = Callable[[int, int, int], Dict[str, Any]]


@dataclass(frozen=True)
class CampaignBudget:
    """Stop-early limits: segments per run() call and/or wall-clock."""

    max_segments: Optional[int] = None
    max_wall_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_segments is not None and self.max_segments < 1:
            raise ConfigurationError(
                f"max_segments {self.max_segments} must be >= 1"
            )
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise ConfigurationError(f"max_wall_s {self.max_wall_s} must be > 0")


def _attempt_backoff_s(attempts: int, base_s: float) -> float:
    """Total backoff slept before a segment that took ``attempts`` tries."""
    return sum(base_s * (2**retry) for retry in range(attempts - 1))


@dataclass
class CampaignReport:
    """Partial or complete campaign results plus retry accounting."""

    name: str
    seed: int
    num_segments: int
    config: Dict[str, Any]
    backoff_base_s: float
    completed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    failed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    interrupted: bool = False

    @property
    def remaining(self) -> int:
        """Segments neither completed nor terminally failed."""
        return self.num_segments - len(self.completed) - len(self.failed)

    @property
    def retries(self) -> int:
        """Total retry attempts across all recorded segments."""
        records = list(self.completed.values()) + list(self.failed.values())
        return sum(record["attempts"] - 1 for record in records)

    @property
    def backoff_wait_s(self) -> float:
        """Total exponential-backoff wait implied by the attempt counts."""
        records = list(self.completed.values()) + list(self.failed.values())
        return sum(
            _attempt_backoff_s(record["attempts"], self.backoff_base_s)
            for record in records
        )

    def results(self) -> list:
        """Per-index merged results: result dict, error record, or None."""
        out = []
        for index in range(self.num_segments):
            if index in self.completed:
                out.append(self.completed[index]["result"])
            elif index in self.failed:
                out.append({"error": self.failed[index]["error_type"]})
            else:
                out.append(None)
        return out

    def fault_totals(self) -> Dict[str, int]:
        """Injected-fault firings summed over completed segments."""
        totals: Dict[str, int] = {}
        for index in sorted(self.completed):
            faults = self.completed[index]["result"].get("faults", {})
            for name, count in faults.items():
                totals[name] = totals.get(name, 0) + int(count)
        return dict(sorted(totals.items()))

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready view (no wall-clock content)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "num_segments": self.num_segments,
            "config": self.config,
            "interrupted": self.interrupted,
            "segments": {
                "completed": len(self.completed),
                "failed": len(self.failed),
                "remaining": self.remaining,
            },
            "retries": self.retries,
            "backoff_wait_s": self.backoff_wait_s,
            "fault_totals": self.fault_totals(),
            "results": self.results(),
        }


def read_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate a checkpoint file.

    Raises :class:`ConfigurationError` on a missing, unparseable or
    wrong-version file.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read checkpoint {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from None
    if not isinstance(data, dict) or data.get("version") != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else '?'}"
        )
    for key in ("name", "seed", "num_segments", "config", "completed", "failed"):
        if key not in data:
            raise ConfigurationError(f"checkpoint {path} is missing {key!r}")
    return data


def write_checkpoint(
    path: Union[str, Path],
    *,
    name: str,
    seed: int,
    num_segments: int,
    config: Dict[str, Any],
    completed: Dict[int, Dict[str, Any]],
    failed: Dict[int, Dict[str, Any]],
) -> None:
    """Atomically persist campaign state (tmp file + ``os.replace``).

    Shared by :class:`CampaignRunner` and the parallel engine in
    :mod:`repro.perf.parallel`, so checkpoints written by either are
    byte-identical for the same recorded state.
    """
    path = Path(path)
    data = {
        "version": CHECKPOINT_VERSION,
        "name": name,
        "seed": seed,
        "num_segments": num_segments,
        "config": config,
        "completed": {str(k): v for k, v in sorted(completed.items())},
        "failed": {str(k): v for k, v in sorted(failed.items())},
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def load_checkpoint_state(
    path: Union[str, Path],
    *,
    name: str,
    seed: int,
    num_segments: int,
    config: Dict[str, Any],
) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, Dict[str, Any]]]:
    """Load a checkpoint and validate it belongs to this campaign.

    Returns ``(completed, failed)`` keyed by int segment index. Raises
    :class:`ConfigurationError` when the file's identity fields mismatch.
    """
    data = read_checkpoint(path)
    expected = {
        "name": name,
        "seed": seed,
        "num_segments": num_segments,
        "config": config,
    }
    for key, value in expected.items():
        if data[key] != value:
            raise ConfigurationError(
                f"checkpoint {path} does not match this campaign: "
                f"{key} is {data[key]!r}, expected {value!r}"
            )
    completed = {int(k): v for k, v in data["completed"].items()}
    failed = {int(k): v for k, v in data["failed"].items()}
    return completed, failed


class CampaignRunner:
    """Runs numbered segments crash-safely; see the module docstring.

    Parameters
    ----------
    name, num_segments, seed, config:
        Campaign identity; all four are recorded in checkpoints and
        validated on resume (a mismatch raises ConfigurationError).
    segment_fn:
        ``(index, seed, attempt) -> result dict``; the seed is already
        derived per (campaign seed, index, attempt).
    budget:
        Optional per-``run()`` limits; exceeding one stops cleanly with
        ``interrupted=True`` and the checkpoint holding completed work.
    checkpoint_path:
        When set, the campaign state is rewritten atomically after every
        segment.
    retryable:
        Exception types retried with exponential backoff (default: the
        injected :class:`TransientFaultError`); other ``ReproError``
        subclasses mark the segment failed immediately.
    sleep_fn / time_source:
        Injectable for tests and simulated time; ``sleep_fn=None`` (the
        default) accounts backoff without real sleeping.
    memo:
        Optional :class:`~repro.perf.memo.runtime.SegmentMemo`. When
        set, each segment is first looked up by its content address
        (campaign identity + derived seed + ambient fault schedule); a
        hit merges the cached outcome — record and exported obs state —
        byte-identically to recomputation, a miss computes the segment
        under an isolated registry (exactly the parallel engine's
        protocol) and publishes it. The key content-addresses the
        campaign *config*, so the config must capture everything
        ``segment_fn``'s behaviour depends on.
    """

    def __init__(
        self,
        name: str,
        segment_fn: SegmentFn,
        num_segments: int,
        seed: Optional[int] = None,
        config: Optional[Dict[str, Any]] = None,
        budget: Optional[CampaignBudget] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        max_retries: int = 3,
        backoff_base_s: float = 0.5,
        retryable: Tuple[Type[BaseException], ...] = (TransientFaultError,),
        sleep_fn: Optional[Callable[[float], None]] = None,
        time_source: Optional[Callable[[], float]] = None,
        memo: Optional["SegmentMemo"] = None,
    ):
        if num_segments < 1:
            raise ConfigurationError(f"num_segments {num_segments} must be >= 1")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries {max_retries} must be >= 0")
        if backoff_base_s < 0:
            raise ConfigurationError(f"backoff_base_s {backoff_base_s} must be >= 0")
        self._name = name
        self._segment_fn = segment_fn
        self._num_segments = num_segments
        self._seed = DEFAULT_SEED if seed is None else int(seed)
        self._config: Dict[str, Any] = dict(config or {})
        self._budget = budget
        self._checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s
        self._retryable = retryable
        self._sleep_fn = sleep_fn
        self._time_source = time_source or time.monotonic
        self._memo = memo

    @property
    def checkpoint_path(self) -> Optional[Path]:
        """Where state is persisted (None = in-memory only)."""
        return self._checkpoint_path

    # -- running -----------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignReport:
        """Execute pending segments; returns the (possibly partial) report."""
        completed: Dict[int, Dict[str, Any]] = {}
        failed: Dict[int, Dict[str, Any]] = {}
        if resume:
            completed, failed = self._load_state()
        started_at = self._time_source()
        processed = 0
        for index in range(self._num_segments):
            if index in completed or index in failed:
                continue
            if self._budget_exceeded(processed, started_at):
                break
            if self._memo is None:
                record, ok = self._run_segment(index)
            else:
                record, ok = self._run_segment_memoized(index, self._memo)
            if ok:
                completed[index] = record
                obs.inc("campaign.segments", campaign=self._name, status="completed")
            else:
                failed[index] = record
                obs.inc("campaign.segments", campaign=self._name, status="failed")
            processed += 1
            self._write_checkpoint(completed, failed)
        interrupted = (len(completed) + len(failed)) < self._num_segments
        return CampaignReport(
            name=self._name,
            seed=self._seed,
            num_segments=self._num_segments,
            config=dict(self._config),
            backoff_base_s=self._backoff_base_s,
            completed=completed,
            failed=failed,
            interrupted=interrupted,
        )

    def _budget_exceeded(self, processed: int, started_at: float) -> bool:
        budget = self._budget
        if budget is None:
            return False
        if budget.max_segments is not None and processed >= budget.max_segments:
            return True
        if (
            budget.max_wall_s is not None
            and self._time_source() - started_at >= budget.max_wall_s
        ):
            return True
        return False

    def _run_segment(self, index: int) -> Tuple[Dict[str, Any], bool]:
        attempt = 0
        while True:
            seed = derive_seed(self._seed, index, attempt)
            try:
                result = self._segment_fn(index, seed, attempt)
            except self._retryable as exc:
                attempt += 1
                if attempt > self._max_retries:
                    return (
                        {
                            "attempts": attempt,
                            "error": str(exc),
                            "error_type": type(exc).__name__,
                        },
                        False,
                    )
                obs.inc("campaign.retries", campaign=self._name)
                delay = self._backoff_base_s * (2 ** (attempt - 1))
                if self._sleep_fn is not None and delay > 0:
                    self._sleep_fn(delay)
                continue
            return {"attempts": attempt + 1, "result": result}, True

    # -- memoization -------------------------------------------------------
    def _isolated_outcome(self, index: int) -> Dict[str, Any]:
        """Run one segment under an isolated registry; full outcome dict.

        Exactly the parallel engine's worker protocol
        (:func:`repro.perf.parallel.run_segment_task`): retries and any
        segment-internal metrics land in a fresh registry whose exported
        state ships alongside the record, so merging it back — now or
        from a cache hit later — reproduces a direct run's registry.
        """
        previous = obs.get_registry()
        registry = obs.set_registry(obs.Registry())
        try:
            record, ok = self._run_segment(index)
        finally:
            obs.set_registry(previous)
        return {
            "index": index,
            "ok": ok,
            "record": record,
            "obs_state": registry.export_state(),
        }

    def _run_segment_memoized(
        self, index: int, memo: "SegmentMemo"
    ) -> Tuple[Dict[str, Any], bool]:
        key = memo.campaign_key(
            name=self._name,
            config=self._config,
            seed=self._seed,
            index=index,
            max_retries=self._max_retries,
            retryable=self._retryable,
        )
        outcome = memo.run(
            key,
            campaign=self._name,
            compute=lambda: self._isolated_outcome(index),
        )
        obs.get_registry().merge_state(outcome["obs_state"])
        return outcome["record"], outcome["ok"]

    # -- checkpointing -----------------------------------------------------
    def _write_checkpoint(
        self, completed: Dict[int, Dict[str, Any]], failed: Dict[int, Dict[str, Any]]
    ) -> None:
        path = self._checkpoint_path
        if path is None:
            return
        write_checkpoint(
            path,
            name=self._name,
            seed=self._seed,
            num_segments=self._num_segments,
            config=self._config,
            completed=completed,
            failed=failed,
        )

    def _load_state(
        self,
    ) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, Dict[str, Any]]]:
        path = self._checkpoint_path
        if path is None:
            raise ConfigurationError("resume requested without a checkpoint_path")
        return load_checkpoint_state(
            path,
            name=self._name,
            seed=self._seed,
            num_segments=self._num_segments,
            config=self._config,
        )
