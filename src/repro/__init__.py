"""repro — reproduction of "Protecting Page Tables from RowHammer Attacks
using Monotonic Pointers in DRAM True-Cells" (Wu et al., ASPLOS 2019).

The package is layered bottom-up:

- :mod:`repro.dram` — DRAM substrate: geometry, true/anti cells, the
  statistical RowHammer fault model, profiling, remapping.
- :mod:`repro.kernel` — OS model: zoned buddy allocator, 4-level paging,
  processes, and the paper's Cell-Type-Aware (CTA) allocation policy.
- :mod:`repro.attacks` — the PTE privilege-escalation attack families and
  the paper's Algorithm 1, runnable against simulated systems.
- :mod:`repro.analysis` — the Section 5 closed forms (Tables 2/3) and a
  Monte-Carlo cross-check.
- :mod:`repro.defenses` — comparators (refresh, PARA, ANVIL, CATT) and
  CTA itself through a common interface.
- :mod:`repro.extensions` — Section 8: permission vectors, coldboot
  canaries, directional hamming codes.
- :mod:`repro.perf` — the Table 4 performance harness.

Quickstart::

    from repro import build_protected_system, build_stock_system
    from repro.attacks import ProbabilisticPteAttack
    from repro.dram.rowhammer import RowHammerModel, FlipStatistics

    kernel = build_stock_system()
    hammer = RowHammerModel(kernel.module, FlipStatistics(3e-2, 0.5), seed=1)
    attacker = kernel.create_process()
    result = ProbabilisticPteAttack(kernel=kernel, hammer=hammer).run(attacker)
    assert result.succeeded  # stock kernels fall

    protected = build_protected_system()
    ...  # the same attack reports AttackOutcome.BLOCKED
"""

from repro.kernel.cta import CtaConfig
from repro.kernel.kernel import Kernel, KernelConfig
from repro.units import MIB

__version__ = "1.0.0"

__all__ = [
    "CtaConfig",
    "Kernel",
    "KernelConfig",
    "build_protected_system",
    "build_stock_system",
]


def build_stock_system(
    total_bytes: int = 32 * MIB,
    row_bytes: int = 16 * 1024,
    num_banks: int = 2,
    cell_interleave_rows: int = 32,
) -> Kernel:
    """Boot a scaled-down stock (undefended) system.

    The defaults give a fast live-simulation target on which the
    probabilistic PTE attack demonstrably succeeds.
    """
    return Kernel(
        KernelConfig(
            total_bytes=total_bytes,
            row_bytes=row_bytes,
            num_banks=num_banks,
            cell_interleave_rows=cell_interleave_rows,
        )
    )


def build_protected_system(
    total_bytes: int = 32 * MIB,
    row_bytes: int = 16 * 1024,
    num_banks: int = 2,
    cell_interleave_rows: int = 32,
    ptp_bytes: int = 2 * MIB,
    multilevel: bool = False,
    restrict_indicator_zeros: bool = False,
) -> Kernel:
    """Boot the same system with CTA memory allocation enabled.

    Runs the system-level cell-type profiler at boot (Section 2.2), plans
    ``ZONE_PTP`` from true-cell rows above the low water mark, and pins
    ``pte_alloc_one`` to it.
    """
    return Kernel(
        KernelConfig(
            total_bytes=total_bytes,
            row_bytes=row_bytes,
            num_banks=num_banks,
            cell_interleave_rows=cell_interleave_rows,
            cta=CtaConfig(
                ptp_bytes=ptp_bytes,
                multilevel=multilevel,
                restrict_indicator_zeros=restrict_indicator_zeros,
            ),
        )
    )
