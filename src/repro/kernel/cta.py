"""Cell-Type-Aware (CTA) memory allocation policy.

The paper's contribution (Section 4/6): place every page-table page (PTP)
in DRAM **true-cells** above a physical-address **low water mark**, so the
frame pointers inside PTEs are *monotonic* under RowHammer — bit flips can
only decrease them — and therefore can never point back up into the PTP
region. Two rules:

- **Rule 1** — PTP allocation requests are served from ``ZONE_PTP`` only,
  never falling back to lower zones.
- **Rule 2** — only page-table pages may reside in ``ZONE_PTP``.

:class:`CtaPolicy` turns a profiled cell-type map into the concrete
``ZONE_PTP`` sub-zone list (true-cell sub-zones ``ZONE_TC*``; anti-cell
gaps invalid — Figure 8), computes the low water mark, and exposes the
PTP-indicator arithmetic the security analysis uses. It also implements
the Section 7 extension: one PTP sub-zone group per page-table level,
higher levels at higher addresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.dram.cells import CellType, CellTypeMap
from repro.errors import ConfigurationError, ZoneViolationError
from repro.kernel.page import PageFrameDatabase, PageUse
from repro.kernel.zones import MemoryZone, ZoneId
from repro.units import PAGE_SIZE, PAGE_SHIFT, is_power_of_two


@dataclass(frozen=True)
class CtaConfig:
    """Tunables of the CTA deployment.

    Parameters
    ----------
    ptp_bytes:
        True-cell capacity of ``ZONE_PTP`` (the paper uses 32 MiB as the
        common-case size, 64 MiB as the larger variant). Only true-cell
        bytes count toward this target; interleaved anti-cell rows above
        the low water mark are invalid capacity on top of it.
    multilevel:
        Enable the Section 7 scheme: four per-level PTP zone groups, the
        zone for level L+1 strictly above the zone for level L.
    restrict_indicator_zeros:
        The Section 5 hardening: physical pages whose PTP indicator
        contains fewer than two '0' bits are reserved for the kernel and
        trusted processes, so an attacker PTE needs >= 2 upward flips.
    cell_aware:
        When False, the policy degrades to a *low-water-mark-only* defense:
        ZONE_PTP is simply the top ``ptp_bytes`` of memory with no regard
        for cell types. This is the paper's Section 5 ablation showing the
        mark alone is ineffective (an all-anti-cell ZONE_PTP yields 3354.7
        exploitable PTEs and a 3.2 hour attack).
    """

    ptp_bytes: int = 32 * 1024 * 1024
    multilevel: bool = False
    restrict_indicator_zeros: bool = False
    cell_aware: bool = True

    def __post_init__(self) -> None:
        if self.ptp_bytes <= 0 or self.ptp_bytes % PAGE_SIZE:
            raise ConfigurationError("ptp_bytes must be a positive multiple of PAGE_SIZE")


class CtaPolicy:
    """Concrete CTA layout for one machine.

    Built from the module's total size and a (profiled) cell-type map;
    see :class:`~repro.dram.profiler.CellTypeProfiler` for how deployments
    obtain that map without hardware support.
    """

    def __init__(self, cell_map: CellTypeMap, config: CtaConfig):
        self._cell_map = cell_map
        self._config = config
        self._total_bytes = cell_map.geometry.total_bytes
        (
            self._low_water_mark,
            self._true_cell_ranges,
            self._anti_cell_ranges,
        ) = self._plan_region()

    # -- region planning -----------------------------------------------------
    def _plan_region(self) -> Tuple[int, List[Tuple[int, int]], List[Tuple[int, int]]]:
        """Walk down from the top of memory collecting true-cell capacity.

        Returns (low_water_mark_address, true_ranges, anti_ranges) where the
        ranges partition [low_water_mark, total_bytes) by cell type.
        """
        needed = self._config.ptp_bytes
        if not self._config.cell_aware:
            # Low-water-mark-only ablation: take the literal top of memory,
            # whatever cells it is made of; nothing is invalidated.
            mark = self._total_bytes - needed
            if mark < 0:
                raise ConfigurationError("ZONE_PTP larger than memory")
            return mark, [(mark, self._total_bytes)], []
        regions = self._cell_map.regions()  # ascending (start_row, end_row, type)
        row_bytes = self._cell_map.geometry.row_bytes
        collected = 0
        true_ranges: List[Tuple[int, int]] = []
        anti_ranges: List[Tuple[int, int]] = []
        mark = self._total_bytes
        for start_row, end_row, cell_type in reversed(regions):
            if collected >= needed:
                break
            start, end = start_row * row_bytes, end_row * row_bytes
            if cell_type is CellType.TRUE:
                take = min(end - start, needed - collected)
                start = end - take  # take the top part of the region
                true_ranges.append((start, end))
                collected += take
            else:
                anti_ranges.append((start, end))
            mark = start
        if collected < needed:
            raise ConfigurationError(
                f"module has only {collected} true-cell bytes above any mark, "
                f"needed {needed} for ZONE_PTP"
            )
        true_ranges.reverse()
        anti_ranges.reverse()
        return mark, true_ranges, anti_ranges

    # -- basic properties -----------------------------------------------------
    @property
    def config(self) -> CtaConfig:
        """The deployment configuration."""
        return self._config

    @property
    def cell_map(self) -> CellTypeMap:
        """Cell-type map the layout was planned from."""
        return self._cell_map

    @property
    def low_water_mark(self) -> int:
        """Physical address below which all regular data must live."""
        return self._low_water_mark

    @property
    def low_water_mark_pfn(self) -> int:
        """Low water mark as a page-frame number."""
        return self._low_water_mark >> PAGE_SHIFT

    @property
    def true_cell_ranges(self) -> List[Tuple[int, int]]:
        """True-cell byte ranges forming ZONE_PTP capacity (ascending)."""
        return list(self._true_cell_ranges)

    @property
    def anti_cell_ranges(self) -> List[Tuple[int, int]]:
        """Anti-cell byte ranges above the mark, marked invalid (ascending)."""
        return list(self._anti_cell_ranges)

    @property
    def capacity_loss_bytes(self) -> int:
        """Bytes of anti-cell memory sacrificed above the low water mark.

        Section 6.2: worst case one full 64 MiB anti-cell region = 0.78%
        of an 8 GiB system; best case zero.
        """
        return sum(end - start for start, end in self._anti_cell_ranges)

    @property
    def capacity_loss_fraction(self) -> float:
        """Capacity loss as a fraction of total memory."""
        return self.capacity_loss_bytes / self._total_bytes

    # -- zone construction ------------------------------------------------------
    def build_subzones(self) -> List[MemoryZone]:
        """The ``ZONE_TC*`` sub-zones for the zone layout (Figure 8).

        With ``multilevel`` enabled the true-cell ranges are split into four
        groups serving PT levels 1..4, level 4 (PML4) at the highest
        addresses — the ordering the Section 7 proof needs.
        """
        if not self._config.multilevel:
            return [
                MemoryZone(
                    ZoneId.PTP,
                    start >> PAGE_SHIFT,
                    end >> PAGE_SHIFT,
                    sub_label=f"ZONE_TC{i}",
                )
                for i, (start, end) in enumerate(self._true_cell_ranges)
            ]
        return self._build_multilevel_subzones()

    def _build_multilevel_subzones(self) -> List[MemoryZone]:
        """Partition true-cell capacity into 4 level groups by address.

        Level 1 (last-level PTs) dominates real page-table footprint
        (~512x the next level), so the split is proportional: levels
        2..4 each get 1/64 of the capacity (minimum one page), level 1
        the rest. Higher levels take higher addresses.
        """
        total_pages = sum((end - start) >> PAGE_SHIFT for start, end in self._true_cell_ranges)
        share = max(1, total_pages // 64)
        wanted = {4: share, 3: share, 2: share, 1: total_pages - 3 * share}
        if wanted[1] <= 0:
            raise ConfigurationError("ZONE_PTP too small for multi-level sub-zones")
        zones: List[MemoryZone] = []
        level = 4
        remaining = wanted[level]
        counter = 0
        # Walk ranges from the top down so level 4 lands highest.
        for start, end in reversed(self._true_cell_ranges):
            cursor_end = end >> PAGE_SHIFT
            range_start = start >> PAGE_SHIFT
            while cursor_end > range_start:
                take = min(remaining, cursor_end - range_start)
                zones.append(
                    MemoryZone(
                        ZoneId.PTP,
                        cursor_end - take,
                        cursor_end,
                        sub_label=f"ZONE_TC_L{level}_{counter}",
                        pt_level=level,
                    )
                )
                counter += 1
                cursor_end -= take
                remaining -= take
                if remaining == 0 and level > 1:
                    level -= 1
                    remaining = wanted[level]
        return sorted(zones, key=lambda z: z.start_pfn)

    # -- PTP indicator arithmetic (Section 5) ------------------------------------
    def indicator_bits(self) -> int:
        """Number of PTP-indicator bits ``n``.

        The indicator is the set of high physical-address bits that must be
        all '1' for an address to lie in ZONE_PTP; with a power-of-two
        memory size and PTP span, ``n = log2(total / ptp)``.
        """
        return ptp_indicator_bits(self._total_bytes, self._config.ptp_bytes)

    def indicator_zero_count(self, physical_address: int) -> int:
        """Number of '0' bits in the PTP indicator field of an address."""
        n = self.indicator_bits()
        shift = int(math.log2(self._total_bytes)) - n
        field = (physical_address >> shift) & ((1 << n) - 1)
        return n - bin(field).count("1")

    def address_allowed_for_untrusted(self, physical_address: int) -> bool:
        """Whether an untrusted process may receive this physical page.

        Always true without the restriction; with it, pages whose indicator
        has fewer than two '0's are reserved (Section 5's hardening, which
        makes an exploitable PTE require >= 2 upward flips).
        """
        if not self._config.restrict_indicator_zeros:
            return True
        return self.indicator_zero_count(physical_address) >= 2

    # -- rule validation ----------------------------------------------------------
    def check_rules(
        self,
        page_db: PageFrameDatabase,
        acknowledged_downgrades: Optional[FrozenSet[int]] = None,
    ) -> None:
        """Validate Rules 1 and 2 over the live page-frame database.

        Raises :class:`ZoneViolationError` on the first violation:
        - a PAGE_TABLE frame below the low water mark (Rule 1 broken), or
        - a non-PAGE_TABLE allocated frame at or above it (Rule 2 broken),
        - any allocated frame inside an invalid anti-cell range.

        ``acknowledged_downgrades`` exempts specific page-table frames
        from the Rule 1 check: those served by the screened-fallback
        exhaustion policy as explicit, separately-counted security
        downgrades (see :mod:`repro.kernel.degrade`).
        """
        mark_pfn = self.low_water_mark_pfn
        downgraded = acknowledged_downgrades or frozenset()
        anti_pfn_ranges = [
            (start >> PAGE_SHIFT, end >> PAGE_SHIFT) for start, end in self._anti_cell_ranges
        ]
        for frame in page_db.allocated_frames():
            if (
                frame.use is PageUse.PAGE_TABLE
                and frame.pfn < mark_pfn
                and frame.pfn not in downgraded
            ):
                raise ZoneViolationError(
                    f"Rule 1 violated: page-table pfn {frame.pfn} below low water "
                    f"mark pfn {mark_pfn}"
                )
            if frame.use not in (PageUse.PAGE_TABLE, PageUse.RESERVED) and frame.pfn >= mark_pfn:
                raise ZoneViolationError(
                    f"Rule 2 violated: {frame.use.value} pfn {frame.pfn} above low "
                    f"water mark pfn {mark_pfn}"
                )
            for start, end in anti_pfn_ranges:
                if start <= frame.pfn < end and frame.use is not PageUse.RESERVED:
                    raise ZoneViolationError(
                        f"pfn {frame.pfn} allocated inside invalid anti-cell range "
                        f"[{start}, {end})"
                    )

    def ptes_are_monotonic(self) -> bool:
        """Whether every PTP row sits in true-cells (monotonicity holds).

        True for any cell-aware layout by construction; the low-water-mark
        ablation returns False whenever its span touches anti-cell rows.
        """
        row_bytes = self._cell_map.geometry.row_bytes
        for start, end in self._true_cell_ranges:
            for row in range(start // row_bytes, (end + row_bytes - 1) // row_bytes):
                if self._cell_map.type_of_row(row) is not CellType.TRUE:
                    return False
        return True


def ptp_indicator_bits(total_bytes: int, ptp_bytes: int) -> int:
    """``n = log2(total / ptp)`` — the paper's PTP-indicator width.

    For the paper's running example (8 GiB memory, 32 MiB ZONE_PTP) this is
    8 bits.
    """
    if not is_power_of_two(total_bytes) or not is_power_of_two(ptp_bytes):
        raise ConfigurationError("indicator math requires power-of-two sizes")
    if ptp_bytes >= total_bytes:
        raise ConfigurationError("ZONE_PTP must be smaller than memory")
    return int(math.log2(total_bytes // ptp_bytes))
