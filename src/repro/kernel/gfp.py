"""Get-Free-Pages (GFP) allocation flags.

Mirrors the Linux flag mechanism described in Section 6.1: every page
allocation carries a GFP mask whose zone bits select which zone the buddy
allocator tries first, with fallback governed by the zonelist. The paper's
patch adds one new modifier, ``__GFP_PTP``, which (a) directs the request
to ``ZONE_PTP`` and (b) forbids fallback to any other zone (Rule 1).
"""

from __future__ import annotations

import enum


class GfpFlags(enum.Flag):
    """Allocation-request flags.

    The zone-selection subset (``DMA``, ``DMA32``, ``HIGHMEM``, ``PTP``)
    mirrors Linux's ``__GFP_*`` zone modifiers; ``KERNEL`` and ``USER`` are
    the common composite request types.
    """

    NONE = 0
    #: Must be served from ZONE_DMA.
    DMA = enum.auto()
    #: Must be served at or below 4 GiB (ZONE_DMA32).
    DMA32 = enum.auto()
    #: May be served from high memory (32-bit layouts).
    HIGHMEM = enum.auto()
    #: The paper's new flag: serve from ZONE_PTP only, no fallback (Rule 1).
    PTP = enum.auto()
    #: Kernel-internal allocation.
    KERNEL = enum.auto()
    #: User-process page allocation.
    USER = enum.auto()
    #: Allow blocking reclaim when zones are tight.
    RECLAIM = enum.auto()

    @property
    def is_ptp_request(self) -> bool:
        """True when the request carries the paper's ``__GFP_PTP`` modifier."""
        return bool(self & GfpFlags.PTP)

    @property
    def forbids_fallback(self) -> bool:
        """PTP requests must never fall back to lower zones (Rule 1)."""
        return self.is_ptp_request


#: The composite flag used by ``pte_alloc_one`` after the paper's patch.
GFP_PTP = GfpFlags.PTP | GfpFlags.KERNEL

#: Ordinary kernel allocation.
GFP_KERNEL = GfpFlags.KERNEL | GfpFlags.RECLAIM

#: Ordinary user allocation.
GFP_USER = GfpFlags.USER | GfpFlags.RECLAIM
