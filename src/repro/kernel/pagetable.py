"""x86-64 4-level page-table entry encoding.

PTEs live *in simulated DRAM* (written through the
:class:`~repro.dram.module.DramModule`), so RowHammer flips applied to
page-table rows corrupt real translations — the property the whole paper
is about. This module defines the bit layout; the walk logic lives in
:mod:`repro.kernel.mmu`.

Layout (Intel SDM [14]):

====  ==========================================
bit   meaning
====  ==========================================
0     P — present
1     RW — writable
2     US — user accessible
7     PS — page size (huge page) at levels 2/3
12..  physical frame number (PFN)
63    NX — no-execute
====  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.errors import PageTableError
from repro.units import PAGE_SHIFT

#: Number of paging levels (PML4 = level 4 ... PT = level 1).
NUM_LEVELS = 4

#: Entries per 4 KiB table.
ENTRIES_PER_TABLE = 512

#: Bits of virtual address consumed per level.
BITS_PER_LEVEL = 9

#: Highest bit of the PFN field (bit 51 is the architectural limit).
PFN_HIGH_BIT = 51

_PFN_MASK = ((1 << (PFN_HIGH_BIT + 1)) - 1) & ~((1 << PAGE_SHIFT) - 1)


class PteFlags(enum.IntFlag):
    """PTE control bits (subset the model uses)."""

    NONE = 0
    PRESENT = 1 << 0
    WRITABLE = 1 << 1
    USER = 1 << 2
    PAGE_SIZE = 1 << 7
    NX = 1 << 63


@dataclass(frozen=True)
class PageTableEntry:
    """Decoded PTE: a frame pointer plus control flags."""

    pfn: int
    flags: PteFlags

    def __post_init__(self) -> None:
        if self.pfn < 0 or (self.pfn << PAGE_SHIFT) & ~_PFN_MASK & ((1 << 52) - 1):
            raise PageTableError(f"pfn {self.pfn:#x} does not fit the PTE frame field")

    # -- raw conversion ----------------------------------------------------
    def encode(self) -> int:
        """Pack into the raw 64-bit on-DRAM representation."""
        return ((self.pfn << PAGE_SHIFT) & _PFN_MASK) | int(self.flags)

    @classmethod
    def decode(cls, raw: int) -> "PageTableEntry":
        """Unpack a raw 64-bit word read from DRAM.

        Decoding never fails: a corrupted word still decodes to *some*
        (pfn, flags) pair, exactly as hardware would interpret it.
        Entries are frozen, so decoded values are shared through an LRU
        cache — a 4-level walk over warm tables costs four dict hits, not
        four dataclass constructions.
        """
        if not 0 <= raw < 2**64:
            raise PageTableError(f"raw PTE {raw:#x} outside 64 bits")
        return _decode_cached(raw)

    # -- convenience --------------------------------------------------------
    # Flag tests use `.real` (plain-int view of the IntFlag) with int
    # masks: enum `&` constructs a new flag instance per call, an order
    # of magnitude slower on the walk hot path.
    @property
    def present(self) -> bool:
        """P bit."""
        return bool(self.flags.real & 0x1)

    @property
    def writable(self) -> bool:
        """RW bit."""
        return bool(self.flags.real & 0x2)

    @property
    def user(self) -> bool:
        """US bit."""
        return bool(self.flags.real & 0x4)

    @property
    def huge(self) -> bool:
        """PS bit (meaningful at levels 2 and 3 only)."""
        return bool(self.flags.real & 0x80)

    @classmethod
    def make(
        cls, pfn: int, present: bool = True, writable: bool = True,
        user: bool = False, huge: bool = False,
    ) -> "PageTableEntry":
        """Build an entry from keyword flags."""
        flags = PteFlags.NONE
        if present:
            flags |= PteFlags.PRESENT
        if writable:
            flags |= PteFlags.WRITABLE
        if user:
            flags |= PteFlags.USER
        if huge:
            flags |= PteFlags.PAGE_SIZE
        return cls(pfn=pfn, flags=flags)

    @classmethod
    def empty(cls) -> "PageTableEntry":
        """A non-present zero entry."""
        return cls(pfn=0, flags=PteFlags.NONE)


#: Bit masks of the fields :func:`decode_entries` extracts, as u64 scalars
#: (kept module-level so the frontier walker pays no per-call conversions).
_PRESENT_U64 = np.uint64(int(PteFlags.PRESENT))
_WRITABLE_U64 = np.uint64(int(PteFlags.WRITABLE))
_USER_U64 = np.uint64(int(PteFlags.USER))
_PAGE_SIZE_U64 = np.uint64(int(PteFlags.PAGE_SIZE))
_PFN_MASK_U64 = np.uint64(_PFN_MASK)
_PAGE_SHIFT_U64 = np.uint64(PAGE_SHIFT)


def decode_entries(
    raw: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`PageTableEntry.decode` over a raw u64 word vector.

    Returns ``(present, writable, user, huge, pfn)`` arrays aligned with
    ``raw`` — four boolean masks plus an int64 frame-number array — with
    the exact bit semantics of the scalar decode: decoding never fails,
    a corrupted word still yields *some* (pfn, flags) interpretation,
    exactly as hardware would follow it. This is the frontier walker's
    per-level decoder: one numpy pass per field instead of one dataclass
    construction (or LRU hit) per entry.
    """
    words = np.asarray(raw, dtype=np.uint64)
    present = (words & _PRESENT_U64) != 0
    writable = (words & _WRITABLE_U64) != 0
    user = (words & _USER_U64) != 0
    huge = (words & _PAGE_SIZE_U64) != 0
    pfn = ((words & _PFN_MASK_U64) >> _PAGE_SHIFT_U64).astype(np.int64)
    return present, writable, user, huge, pfn


@lru_cache(maxsize=65536)
def _decode_cached(raw: int) -> PageTableEntry:
    pfn = (raw & _PFN_MASK) >> PAGE_SHIFT
    flags = PteFlags(raw & ~_PFN_MASK)
    return PageTableEntry(pfn=pfn, flags=flags)


def split_virtual_address(virtual_address: int) -> Tuple[int, int, int, int, int]:
    """Split a canonical VA into (pml4, pdpt, pd, pt, offset) indices."""
    if not 0 <= virtual_address < 2**48:
        raise PageTableError(
            f"virtual address {virtual_address:#x} outside the 48-bit model range"
        )
    offset = virtual_address & ((1 << PAGE_SHIFT) - 1)
    indices = []
    for level in range(NUM_LEVELS, 0, -1):
        shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
        indices.append((virtual_address >> shift) & (ENTRIES_PER_TABLE - 1))
    pml4, pdpt, pd, pt = indices
    return pml4, pdpt, pd, pt, offset


def join_virtual_address(pml4: int, pdpt: int, pd: int, pt: int, offset: int = 0) -> int:
    """Inverse of :func:`split_virtual_address`."""
    for index in (pml4, pdpt, pd, pt):
        if not 0 <= index < ENTRIES_PER_TABLE:
            raise PageTableError(f"table index {index} outside [0, {ENTRIES_PER_TABLE})")
    if not 0 <= offset < (1 << PAGE_SHIFT):
        raise PageTableError(f"offset {offset:#x} outside a page")
    value = offset
    for level, index in zip(range(NUM_LEVELS, 0, -1), (pml4, pdpt, pd, pt)):
        shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
        value |= index << shift
    return value


def entry_address(table_base_pa: int, index: int) -> int:
    """Physical address of entry ``index`` within the table at ``table_base_pa``."""
    if not 0 <= index < ENTRIES_PER_TABLE:
        raise PageTableError(f"table index {index} outside [0, {ENTRIES_PER_TABLE})")
    return table_base_pa + index * 8
