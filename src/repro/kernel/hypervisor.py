"""Virtual-machine support for CTA (paper Section 7).

In a virtualised deployment the *hypervisor* owns the physical true-cell
inventory: it reserves the highest true-cell addresses as
``ZONE_HYPERVISOR`` and hands each guest OS a slice of it to use as the
guest's ``ZONE_PTP``, while all regular guest memory is served from below
``ZONE_HYPERVISOR``. Guest page tables therefore live in host true-cells
above every guest data page, so PTE self-reference is impossible both
*within* a VM and *across* VMs.

Model: each guest sees a contiguous guest-physical window backed by two
host ranges — a data range (low host memory) and a PTP slice (inside
ZONE_HYPERVISOR). A :class:`GuestPhysicalWindow` translates guest
addresses to host addresses so guest kernels run unmodified over the
shared host module, and the cell types seen by the guest are the host's
real cell types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dram.cells import CellType, CellTypeMap
from repro.dram.module import DramModule
from repro.errors import CapacityError, ConfigurationError, ZoneViolationError
from repro.kernel.cta import CtaConfig, CtaPolicy
from repro.kernel.kernel import Kernel, KernelConfig
from repro.units import PAGE_SHIFT


class GuestPhysicalWindow(DramModule):
    """A guest-physical view stitched from host ranges.

    Guest addresses ``[0, data_size)`` map to the host data range; guest
    addresses ``[data_size, data_size + ptp_size)`` map to the host PTP
    slice inside ZONE_HYPERVISOR. Rows keep their host cell types, so a
    guest-side CTA policy sees the truth.
    """

    def __init__(
        self,
        host: DramModule,
        data_base: int,
        data_size: int,
        ptp_base: int,
        ptp_size: int,
    ):
        geometry = host.geometry
        row_bytes = geometry.row_bytes
        for name, value in (
            ("data_base", data_base), ("data_size", data_size),
            ("ptp_base", ptp_base), ("ptp_size", ptp_size),
        ):
            if value % row_bytes:
                raise ConfigurationError(f"{name} must be row aligned")
        geometry.check_address(data_base, data_size)
        geometry.check_address(ptp_base, ptp_size)
        self._host = host
        self._data_base = data_base
        self._data_size = data_size
        self._ptp_base = ptp_base
        self._ptp_size = ptp_size

        from repro.dram.geometry import DramGeometry

        guest_rows_data = data_size // row_bytes
        guest_rows_ptp = ptp_size // row_bytes
        guest_geometry = DramGeometry(
            total_bytes=data_size + ptp_size,
            row_bytes=row_bytes,
            num_banks=1,
        )
        host_map = host.cell_map
        if host_map is None:
            raise ConfigurationError("host module needs a cell map")
        row_types = [
            host_map.type_of_row(data_base // row_bytes + row)
            for row in range(guest_rows_data)
        ] + [
            host_map.type_of_row(ptp_base // row_bytes + row)
            for row in range(guest_rows_ptp)
        ]
        guest_map = CellTypeMap.from_rows(guest_geometry, row_types)
        super().__init__(guest_geometry, guest_map)

    # -- address translation ------------------------------------------------
    def host_address(self, guest_address: int) -> int:
        """Translate a guest-physical address to the host-physical one."""
        if guest_address < self._data_size:
            return self._data_base + guest_address
        offset = guest_address - self._data_size
        if offset < self._ptp_size:
            return self._ptp_base + offset
        raise ConfigurationError(
            f"guest address {guest_address:#x} outside the window"
        )

    @property
    def ptp_guest_base(self) -> int:
        """Guest-physical address where the PTP slice begins."""
        return self._data_size

    # -- forwarded storage ----------------------------------------------------
    def read(self, address: int, length: int) -> bytes:
        """Read through to host memory."""
        self.geometry.check_address(address, length)
        self.read_count += 1
        return self._host.read(self.host_address(address), length)

    def write(self, address: int, data: bytes) -> None:
        """Write through to host memory."""
        self.geometry.check_address(address, len(data))
        self.write_count += 1
        self._host.write(self.host_address(address), data)

    def fill_row(self, row: int, byte: int) -> None:
        """Fill a guest row via the host."""
        self.write(row * self.geometry.row_bytes, bytes([byte]) * self.geometry.row_bytes)

    def decay_row_fully(self, row: int) -> None:
        """Decay a guest row on the host (host cell type governs)."""
        host_row = self.host_address(row * self.geometry.row_bytes) // self.geometry.row_bytes
        self._host.decay_row_fully(host_row)

    def decay_bits(self, row: int, bit_positions) -> int:
        """Decay specific bits of a guest row on the host."""
        host_row = self.host_address(row * self.geometry.row_bytes) // self.geometry.row_bytes
        return self._host.decay_bits(host_row, bit_positions)

    # -- forwarded fast paths -------------------------------------------------
    # The base-class batched primitives operate in place on *this* module's
    # sparse rows; a window has no storage of its own, so every one of them
    # must forward to the host or guest writes would land in dead arrays.
    def _host_row(self, row: int) -> int:
        return self.host_address(row * self.geometry.row_bytes) // self.geometry.row_bytes

    @property
    def generation(self) -> int:
        """Host generation — the window aliases host storage."""
        return self._host.generation

    def write_bit(self, address: int, bit: int, value: int) -> None:
        """Set one bit via the host backing array."""
        self.geometry.check_address(address, 1)
        self.write_count += 1
        self._host.write_bit(self.host_address(address), bit, value)

    def read_bits(self, row: int, positions) -> "np.ndarray":
        """Batched bit read via the host row."""
        self.read_count += 1
        return self._host.read_bits(self._host_row(row), positions)

    def apply_bit_flips(self, row: int, positions, targets) -> int:
        """Batched bit write via the host row."""
        self.write_count += 1
        return self._host.apply_bit_flips(self._host_row(row), positions, targets)

    def row_u64_view(self, row: int) -> "np.ndarray":
        """u64 alias of the backing host row."""
        return self._host.row_u64_view(self._host_row(row))

    def u64_view(self, address: int, count: int):
        """Aliasing u64 view resolved against host storage (or ``None``)."""
        span = 8 * count
        if address < 0 or count < 0:
            return None
        in_data = address + span <= self._data_size
        in_ptp = address >= self._data_size and address + span <= self._data_size + self._ptp_size
        if not (in_data or in_ptp):
            return None
        return self._host.u64_view(self.host_address(address), count)


@dataclass
class GuestVm:
    """One provisioned guest."""

    vm_id: int
    kernel: Kernel
    window: GuestPhysicalWindow
    host_data_range: Tuple[int, int]
    host_ptp_range: Tuple[int, int]


class Hypervisor:
    """Plans ZONE_HYPERVISOR and provisions CTA guests from it.

    Parameters
    ----------
    module:
        Host physical memory (with a cell map).
    hypervisor_zone_bytes:
        True-cell capacity reserved at the top of host memory for guest
        PTP slices.
    """

    def __init__(self, module: DramModule, hypervisor_zone_bytes: int):
        if module.cell_map is None:
            raise ConfigurationError("hypervisor requires a module with a cell map")
        self._module = module
        # Reuse the CTA planner: ZONE_HYPERVISOR is exactly a CTA region
        # plan over the host map.
        self._plan = CtaPolicy(
            module.cell_map, CtaConfig(ptp_bytes=hypervisor_zone_bytes)
        )
        self._guests: Dict[int, GuestVm] = {}
        self._next_vm_id = 1
        # Free lists: true-cell host ranges for PTP slices; data cursor in
        # low host memory.
        self._ptp_free: List[Tuple[int, int]] = list(self._plan.true_cell_ranges)
        self._data_cursor = 0

    @property
    def zone_hypervisor_base(self) -> int:
        """Host address of the hypervisor zone's low water mark."""
        return self._plan.low_water_mark

    @property
    def guests(self) -> Dict[int, GuestVm]:
        """Provisioned guests by id."""
        return dict(self._guests)

    # -- provisioning --------------------------------------------------------
    def create_guest(
        self, data_bytes: int, ptp_bytes: int, cell_interleave_rows: int = 32
    ) -> GuestVm:
        """Provision a guest with its own data range and PTP slice."""
        row_bytes = self._module.geometry.row_bytes
        if data_bytes % row_bytes or ptp_bytes % row_bytes:
            raise ConfigurationError("guest sizes must be row aligned")
        data_base = self._allocate_data(data_bytes)
        ptp_base = self._allocate_ptp(ptp_bytes)
        window = GuestPhysicalWindow(
            self._module, data_base, data_bytes, ptp_base, ptp_bytes
        )
        guest_kernel = Kernel(
            KernelConfig(
                total_bytes=window.geometry.total_bytes,
                row_bytes=row_bytes,
                num_banks=1,
                cta=CtaConfig(ptp_bytes=ptp_bytes),
                profile_cells=False,
            ),
            module=window,
        )
        vm = GuestVm(
            vm_id=self._next_vm_id,
            kernel=guest_kernel,
            window=window,
            host_data_range=(data_base, data_base + data_bytes),
            host_ptp_range=(ptp_base, ptp_base + ptp_bytes),
        )
        self._guests[vm.vm_id] = vm
        self._next_vm_id += 1
        return vm

    def _allocate_data(self, size: int) -> int:
        base = self._data_cursor
        if base + size > self.zone_hypervisor_base:
            raise CapacityError("host out of guest data memory", zone="guest-data")
        self._data_cursor = base + size
        return base

    def _allocate_ptp(self, size: int) -> int:
        for index, (start, end) in enumerate(self._ptp_free):
            if end - start >= size:
                self._ptp_free[index] = (start + size, end)
                return start
        raise CapacityError("ZONE_HYPERVISOR exhausted", zone="ZONE_HYPERVISOR")

    # -- invariants ------------------------------------------------------------
    def verify_isolation(self) -> None:
        """Cross-VM CTA invariants (Section 7).

        - every guest PTP slice lies inside ZONE_HYPERVISOR true-cells;
        - every guest data range lies wholly below ZONE_HYPERVISOR;
        - no two guests share any host range;
        - within each guest, CTA Rules 1/2 hold.

        Raises :class:`ZoneViolationError` on the first violation.
        """
        claimed: List[Tuple[int, int, str]] = []
        for vm in self._guests.values():
            data_start, data_end = vm.host_data_range
            ptp_start, ptp_end = vm.host_ptp_range
            if data_end > self.zone_hypervisor_base:
                raise ZoneViolationError(
                    f"VM {vm.vm_id} data range reaches into ZONE_HYPERVISOR"
                )
            if ptp_start < self.zone_hypervisor_base:
                raise ZoneViolationError(
                    f"VM {vm.vm_id} PTP slice below ZONE_HYPERVISOR"
                )
            for start, end in ((data_start, data_end), (ptp_start, ptp_end)):
                for other_start, other_end, owner in claimed:
                    if start < other_end and other_start < end:
                        raise ZoneViolationError(
                            f"VM {vm.vm_id} overlaps host range of {owner}"
                        )
                claimed.append((start, end, f"VM {vm.vm_id}"))
            row_bytes = self._module.geometry.row_bytes
            host_map = self._module.cell_map
            for row in range(ptp_start // row_bytes, ptp_end // row_bytes):
                if host_map.type_of_row(row) is not CellType.TRUE:
                    raise ZoneViolationError(
                        f"VM {vm.vm_id} PTP slice includes anti-cell host row {row}"
                    )
            vm.kernel.verify_cta_rules()

    def host_page_tables(self) -> List[int]:
        """Host pfns of every guest's page tables (for audits)."""
        pfns = []
        for vm in self._guests.values():
            for guest_pfn in vm.kernel.page_table_pfns():
                host = vm.window.host_address(guest_pfn << PAGE_SHIFT)
                pfns.append(host >> PAGE_SHIFT)
        return sorted(pfns)
