"""OS kernel model: zoned buddy allocator, paging, processes, CTA policy.

This subpackage is a functional model of the Linux memory-management
pieces the paper's 18-line patch touches:

- :mod:`~repro.kernel.gfp` — allocation flags including the new ``GFP_PTP``
- :mod:`~repro.kernel.zones` — physical memory zones + ``ZONE_PTP``
- :mod:`~repro.kernel.buddy` — per-zone binary buddy allocator
- :mod:`~repro.kernel.pagetable` — x86-64 4-level page-table encoding
- :mod:`~repro.kernel.mmu` — table walks against simulated DRAM
- :mod:`~repro.kernel.process` — processes and ``mmap``
- :mod:`~repro.kernel.cta` — the paper's Cell-Type-Aware allocation policy
- :mod:`~repro.kernel.kernel` — the :class:`Kernel` facade tying it together
"""

from repro.kernel.gfp import GfpFlags
from repro.kernel.zones import MemoryZone, ZoneId, ZoneLayout
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.page import PageFrame, PageUse
from repro.kernel.pagetable import PageTableEntry, PteFlags
from repro.kernel.tlb import Tlb
from repro.kernel.mmu import Mmu
from repro.kernel.cta import CtaConfig, CtaPolicy
from repro.kernel.process import Process, VmArea
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.hypervisor import GuestPhysicalWindow, GuestVm, Hypervisor
from repro.kernel.screening import install_ps_screening, screen_ps_vulnerable_frames

__all__ = [
    "BuddyAllocator",
    "CtaConfig",
    "CtaPolicy",
    "GfpFlags",
    "GuestPhysicalWindow",
    "GuestVm",
    "Hypervisor",
    "Kernel",
    "KernelConfig",
    "install_ps_screening",
    "screen_ps_vulnerable_frames",
    "MemoryZone",
    "Mmu",
    "PageFrame",
    "PageTableEntry",
    "PageUse",
    "Process",
    "PteFlags",
    "Tlb",
    "VmArea",
    "ZoneId",
    "ZoneLayout",
]
