"""Page-frame database (the struct-page analogue).

One :class:`PageFrame` record per physical page tracks allocation state,
what the page is used for, and which process owns it. The CTA policy's
Rule 2 check ("only page-table pages reside in ZONE_PTP") and the attack
harness's ground-truth validation both read this database.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import KernelError
from repro.units import PAGE_SHIFT, PAGE_SIZE


class PageUse(enum.Enum):
    """What an allocated page frame holds."""

    FREE = "free"
    USER_DATA = "user-data"
    KERNEL_DATA = "kernel-data"
    PAGE_TABLE = "page-table"
    FILE_CACHE = "file-cache"
    RESERVED = "reserved"


@dataclass
class PageFrame:
    """State of one physical page frame."""

    pfn: int
    use: PageUse = PageUse.FREE
    owner_pid: Optional[int] = None
    #: Page-table level (1 = last-level PT, 4 = PML4) when use is PAGE_TABLE.
    pt_level: int = 0
    #: Buddy order this frame was allocated at (head frame only).
    order: int = 0

    @property
    def address(self) -> int:
        """First byte address of the frame."""
        return self.pfn << PAGE_SHIFT

    @property
    def is_free(self) -> bool:
        """Whether the frame is unallocated."""
        return self.use is PageUse.FREE


class PageFrameDatabase:
    """Sparse pfn -> :class:`PageFrame` map over physical memory."""

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise KernelError("total_pages must be positive")
        self._total_pages = total_pages
        self._frames: Dict[int, PageFrame] = {}

    @property
    def total_pages(self) -> int:
        """Physical page frames in the system."""
        return self._total_pages

    def frame(self, pfn: int) -> PageFrame:
        """The frame record for ``pfn`` (created lazily as FREE)."""
        if not 0 <= pfn < self._total_pages:
            raise KernelError(f"pfn {pfn} outside [0, {self._total_pages})")
        existing = self._frames.get(pfn)
        if existing is None:
            existing = PageFrame(pfn=pfn)
            self._frames[pfn] = existing
        return existing

    def mark_allocated(
        self,
        pfn: int,
        use: PageUse,
        owner_pid: Optional[int] = None,
        pt_level: int = 0,
        order: int = 0,
    ) -> PageFrame:
        """Transition a frame from FREE to an allocated use."""
        record = self.frame(pfn)
        if not record.is_free:
            raise KernelError(f"pfn {pfn} already allocated as {record.use.value}")
        record.use = use
        record.owner_pid = owner_pid
        record.pt_level = pt_level
        record.order = order
        return record

    def mark_free(self, pfn: int) -> None:
        """Return a frame to the FREE state."""
        record = self.frame(pfn)
        if record.is_free:
            raise KernelError(f"double free of pfn {pfn}")
        record.use = PageUse.FREE
        record.owner_pid = None
        record.pt_level = 0
        record.order = 0

    def allocated_frames(self) -> Iterator[PageFrame]:
        """Iterate currently allocated frames."""
        return (f for f in self._frames.values() if not f.is_free)

    def frames_with_use(self, use: PageUse) -> Iterator[PageFrame]:
        """Iterate allocated frames of a given use."""
        return (f for f in self._frames.values() if f.use is use)

    def count_use(self, use: PageUse) -> int:
        """Number of frames currently holding ``use``."""
        return sum(1 for _ in self.frames_with_use(use))

    def bytes_used_by(self, use: PageUse) -> int:
        """Bytes of physical memory holding ``use``."""
        return self.count_use(use) * PAGE_SIZE
