"""Binary buddy allocator over a contiguous page-frame range.

A faithful model of the Linux zoned buddy system (Section 6.1, [4, 8, 24]):
free blocks are kept in per-order free lists; allocation splits larger
blocks downward; freeing coalesces with the buddy block recursively. Each
:class:`~repro.kernel.zones.MemoryZone` gets its own allocator instance.

Buddy arithmetic is done on pfns relative to the zone base so that zones
need not start at power-of-two-aligned pfns.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro import obs, sanitize
from repro.errors import ConfigurationError, OutOfMemoryError, KernelError

#: Largest allocation order supported (matches Linux's historical MAX_ORDER-1).
MAX_ORDER = 10


class BuddyAllocator:
    """Per-zone buddy allocator.

    Parameters
    ----------
    start_pfn, end_pfn:
        Page-frame range managed (end exclusive).
    name:
        Zone label attached to this allocator's metrics (e.g. "Normal",
        "PTP0"); empty for standalone allocators.
    """

    def __init__(self, start_pfn: int, end_pfn: int, name: str = ""):
        if end_pfn <= start_pfn:
            raise ConfigurationError(f"empty pfn range [{start_pfn}, {end_pfn})")
        self._start_pfn = start_pfn
        self._end_pfn = end_pfn
        self.name = name
        # free_lists[order] = set of relative block starts. Per-order block
        # counts and the total free-page count are maintained incrementally
        # alongside (the obs gauge reads free_pages on every alloc/free and
        # sanitizer sweeps poll free_blocks_by_order repeatedly).
        self._free_lists: Dict[int, Set[int]] = {order: set() for order in range(MAX_ORDER + 1)}
        self._free_counts: Dict[int, int] = {order: 0 for order in range(MAX_ORDER + 1)}
        self._free_pages = 0
        self._allocated: Dict[int, int] = {}  # relative start -> order
        self._seed_free_blocks()
        #: Allocation-path statistics for the perf harness.
        self.alloc_calls = 0
        self.split_count = 0
        self.coalesce_count = 0
        self.failed_allocs = 0

    def _seed_free_blocks(self) -> None:
        """Carve the range into maximal aligned power-of-two free blocks."""
        size = self._end_pfn - self._start_pfn
        cursor = 0
        while cursor < size:
            order = MAX_ORDER
            while order > 0 and (
                cursor % (1 << order) != 0 or cursor + (1 << order) > size
            ):
                order -= 1
            self._add_free(order, cursor)
            cursor += 1 << order

    def _add_free(self, order: int, block: int) -> None:
        self._free_lists[order].add(block)
        self._free_counts[order] += 1
        self._free_pages += 1 << order

    def _take_free(self, order: int, block: int) -> None:
        self._free_lists[order].discard(block)
        self._free_counts[order] -= 1
        self._free_pages -= 1 << order

    # -- properties ----------------------------------------------------------
    @property
    def start_pfn(self) -> int:
        """First pfn managed."""
        return self._start_pfn

    @property
    def end_pfn(self) -> int:
        """One past the last pfn managed."""
        return self._end_pfn

    @property
    def total_pages(self) -> int:
        """Page frames managed."""
        return self._end_pfn - self._start_pfn

    @property
    def free_pages(self) -> int:
        """Currently free page frames (maintained incrementally, O(1))."""
        return self._free_pages

    @property
    def allocated_pages(self) -> int:
        """Currently allocated page frames."""
        return sum(1 << order for order in self._allocated.values())

    def free_blocks_by_order(self) -> Dict[int, int]:
        """Free-list occupancy, order -> block count (``/proc/buddyinfo``).

        Served from the incrementally maintained counts — O(orders), not
        O(free blocks) — since sanitizer sweeps call this repeatedly.
        """
        return dict(self._free_counts)

    # -- allocation -------------------------------------------------------------
    def alloc_pages(self, order: int = 0) -> int:
        """Allocate a 2**order-page block; returns its first (absolute) pfn.

        Raises :class:`OutOfMemoryError` when no block of sufficient order
        is free — or immediately when an armed ``buddy-oom`` fault targets
        this zone (the ``buddy.prepare_alloc`` hook fires before any free
        list is touched, so injected pressure never leaks blocks).
        """
        self._check_order(order)
        sanitize.notify("buddy.prepare_alloc", allocator=self, order=order)
        self.alloc_calls += 1
        found_order = None
        for candidate in range(order, MAX_ORDER + 1):
            if self._free_lists[candidate]:
                found_order = candidate
                break
        if found_order is None:
            self.failed_allocs += 1
            obs.inc("buddy.failed_allocs", zone=self.name, order=order)
            raise OutOfMemoryError(
                f"no free block of order >= {order} in pfn range "
                f"[{self._start_pfn}, {self._end_pfn})"
            )
        block = min(self._free_lists[found_order])
        self._take_free(found_order, block)
        # Split down to the requested order, freeing the upper halves.
        while found_order > order:
            found_order -= 1
            self.split_count += 1
            obs.inc("buddy.splits", zone=self.name)
            buddy = block + (1 << found_order)
            self._add_free(found_order, buddy)
        self._allocated[block] = order
        obs.inc("buddy.allocs", zone=self.name, order=order)
        obs.set_gauge("buddy.free_pages", self.free_pages, zone=self.name)
        sanitize.notify(
            "buddy.alloc", allocator=self, pfn=self._start_pfn + block, order=order
        )
        return self._start_pfn + block

    def free_pages_block(self, pfn: int, order: Optional[int] = None) -> None:
        """Free the block starting at absolute ``pfn``.

        ``order`` may be omitted (looked up from the allocation record) or
        provided and validated. Coalesces with free buddies upward.
        """
        relative = pfn - self._start_pfn
        recorded = self._allocated.get(relative)
        if recorded is None:
            raise KernelError(f"pfn {pfn} is not the head of an allocated block")
        if order is not None and order != recorded:
            raise KernelError(
                f"pfn {pfn} was allocated at order {recorded}, freed at {order}"
            )
        del self._allocated[relative]
        block, current = relative, recorded
        while current < MAX_ORDER:
            buddy = block ^ (1 << current)
            if buddy not in self._free_lists[current]:
                break
            if buddy + (1 << current) > self.total_pages:
                break
            self._take_free(current, buddy)
            self.coalesce_count += 1
            obs.inc("buddy.merges", zone=self.name)
            block = min(block, buddy)
            current += 1
        self._add_free(current, block)
        obs.inc("buddy.frees", zone=self.name, order=recorded)
        obs.set_gauge("buddy.free_pages", self.free_pages, zone=self.name)
        sanitize.notify("buddy.free", allocator=self, pfn=pfn, order=recorded)

    def contains(self, pfn: int) -> bool:
        """Whether ``pfn`` is managed by this allocator."""
        return self._start_pfn <= pfn < self._end_pfn

    def is_allocated(self, pfn: int) -> bool:
        """Whether ``pfn`` lies inside any currently allocated block."""
        relative = pfn - self._start_pfn
        for block, order in self._allocated.items():
            if block <= relative < block + (1 << order):
                return True
        return False

    def check_invariants(self) -> None:
        """Assert conservation and non-overlap; used by property tests.

        Raises :class:`KernelError` on any violation.
        """
        covered: Set[int] = set()
        for order, blocks in self._free_lists.items():
            for block in blocks:
                pages = set(range(block, block + (1 << order)))
                if covered & pages:
                    raise KernelError("free blocks overlap")
                covered |= pages
        for block, order in self._allocated.items():
            pages = set(range(block, block + (1 << order)))
            if covered & pages:
                raise KernelError("allocated block overlaps a free block")
            covered |= pages
        if len(covered) != self.total_pages:
            raise KernelError(
                f"page conservation violated: covered {len(covered)} of "
                f"{self.total_pages} pages"
            )

    def _check_order(self, order: int) -> None:
        if not 0 <= order <= MAX_ORDER:
            raise ConfigurationError(f"order {order} outside [0, {MAX_ORDER}]")
