"""The kernel facade: boots zones over simulated DRAM and runs processes.

This is the integration point the paper's 18-line patch targets. The
kernel owns:

- the physical substrate (a :class:`~repro.dram.module.DramModule`),
- the zone layout and one buddy allocator per (sub-)zone,
- the page-frame database,
- an MMU + TLB,
- processes, their page tables (stored *in* simulated DRAM), and demand
  paging.

With a :class:`~repro.kernel.cta.CtaConfig` supplied, booting runs the
cell-type profiler, plans ``ZONE_PTP`` out of true-cell rows above the low
water mark, and routes every ``pte_alloc_one`` through ``GFP_PTP`` — the
complete CTA deployment. Without it, the kernel behaves like the stock
allocator the attacks exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs, sanitize
from repro.dram.cells import CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.profiler import CellTypeProfiler
from repro.errors import (
    AddressError,
    CapacityError,
    ConfigurationError,
    OutOfMemoryError,
    PageFaultError,
    ProcessError,
    ZoneViolationError,
)
from repro.kernel.buddy import BuddyAllocator
from repro.kernel.cta import CtaConfig, CtaPolicy
from repro.kernel.degrade import (
    RECLAIM_RETRY_ROUNDS,
    ExhaustionPolicy,
    screened_fallback_alloc,
)
from repro.kernel.gfp import GFP_KERNEL, GFP_PTP, GFP_USER, GfpFlags
from repro.kernel.mmu import Mmu
from repro.kernel.page import PageFrameDatabase, PageUse
from repro.kernel.pagetable import (
    BITS_PER_LEVEL,
    ENTRIES_PER_TABLE,
    NUM_LEVELS,
    PageTableEntry,
    entry_address,
    split_virtual_address,
)
from repro.kernel.process import MappedFile, Process, VmArea
from repro.kernel.tlb import Tlb
from repro.kernel.zones import MemoryZone, ZoneId, ZoneLayout
from repro.units import PAGE_SHIFT, PAGE_SIZE


@dataclass
class KernelConfig:
    """Boot-time configuration.

    ``cell_interleave_rows`` controls the simulated module's true/anti
    alternation period; ``cta`` enables the paper's defense. When ``cta``
    is set, ``profile_cells`` chooses between running the system-level
    profiler (realistic; default) and trusting the ground-truth map
    directly (faster for big sweeps), and ``ptp_exhaustion_policy``
    selects what ``pte_alloc_one`` does when ZONE_PTP runs dry after
    reclaim (see :mod:`repro.kernel.degrade`).
    """

    total_bytes: int = 64 * 1024 * 1024
    row_bytes: int = 64 * 1024
    num_banks: int = 4
    cell_interleave_rows: int = 16
    cta: Optional[CtaConfig] = None
    profile_cells: bool = True
    tlb_capacity: int = 1536
    arch: str = "x86_64"
    ptp_exhaustion_policy: Union[ExhaustionPolicy, str] = ExhaustionPolicy.FAIL_HARD

    def __post_init__(self) -> None:
        if self.arch not in ("x86_64", "x86_32"):
            raise ConfigurationError(f"unknown arch {self.arch!r}")
        self.ptp_exhaustion_policy = ExhaustionPolicy.coerce(
            self.ptp_exhaustion_policy
        )


@dataclass
class KernelStats:
    """Aggregate counters for the perf harness."""

    page_allocs: int = 0
    page_frees: int = 0
    pte_allocs: int = 0
    demand_faults: int = 0
    ptp_fallback_denied: int = 0
    indicator_rejections: int = 0
    screening_rejections: int = 0
    huge_mappings: int = 0
    ptp_reclaims: int = 0
    capacity_exhaustions: int = 0
    security_downgrades: int = 0
    fallback_screen_rejections: int = 0


class Kernel:
    """A booted system instance."""

    def __init__(
        self,
        config: KernelConfig = KernelConfig(),
        module: Optional[DramModule] = None,
        cell_map: Optional[CellTypeMap] = None,
    ):
        self.config = config
        if module is not None:
            self._module = module
            self._cell_map = module.cell_map
            geometry = module.geometry
        else:
            geometry = DramGeometry(
                total_bytes=config.total_bytes,
                row_bytes=config.row_bytes,
                num_banks=config.num_banks,
            )
            self._cell_map = cell_map or CellTypeMap.interleaved(
                geometry, period_rows=config.cell_interleave_rows
            )
            self._module = DramModule(geometry, self._cell_map)
        if self._cell_map is None:
            raise ConfigurationError("kernel requires a module with a cell map")

        self.stats = KernelStats()
        self._cta_policy: Optional[CtaPolicy] = None
        self._layout = self._build_layout(geometry)
        self._allocators: List[Tuple[MemoryZone, BuddyAllocator]] = [
            (zone, BuddyAllocator(zone.start_pfn, zone.end_pfn, name=zone.name))
            for zone in self._layout.zones
        ]
        self._page_db = PageFrameDatabase(self._layout.total_pages)
        self._tlb = Tlb(capacity=config.tlb_capacity)
        self._mmu = Mmu(self._module, self._tlb)
        self._processes: Dict[int, Process] = {}
        self._files: Dict[int, MappedFile] = {}
        self._next_pid = 1
        self._next_file_id = 1
        #: Frames the Section 7 page-size-bit screening forbids for
        #: high-level page tables (see :mod:`repro.kernel.screening`).
        self._screened_ptp_frames: set = set()
        #: Page-table frames served below the low water mark by the
        #: screened-fallback exhaustion policy — each one an acknowledged
        #: Rule 1 exception (see :mod:`repro.kernel.degrade`).
        self._downgraded_pt_pfns: set = set()

    # -- boot helpers ------------------------------------------------------
    def _build_layout(self, geometry: DramGeometry) -> ZoneLayout:
        if self.config.cta is None:
            if self.config.arch == "x86_32":
                return ZoneLayout.x86_32(geometry.total_bytes)
            return ZoneLayout.x86_64(geometry.total_bytes)
        observed_map = self._cell_map
        if self.config.profile_cells:
            observed_map = CellTypeProfiler(self._module).profile().inferred_map
        self._cta_policy = CtaPolicy(observed_map, self.config.cta)
        subzones = self._cta_policy.build_subzones()
        ptp_span = geometry.total_bytes - self._cta_policy.low_water_mark
        if self.config.arch == "x86_32":
            # 32-bit layouts share the x86_64 builder's PTP carving logic via
            # explicit subzones being above the computed mark.
            layout = ZoneLayout.x86_32(geometry.total_bytes, ptp_bytes=ptp_span)
            zones = [z for z in layout.zones if z.zone_id is not ZoneId.PTP]
            return ZoneLayout(list(zones) + subzones, layout.total_pages)
        return ZoneLayout.x86_64(
            geometry.total_bytes, ptp_bytes=ptp_span, ptp_subzones=subzones
        )

    # -- basic accessors -----------------------------------------------------
    @property
    def module(self) -> DramModule:
        """Simulated physical memory."""
        return self._module

    @property
    def layout(self) -> ZoneLayout:
        """Zone layout in force."""
        return self._layout

    @property
    def page_db(self) -> PageFrameDatabase:
        """Page-frame database."""
        return self._page_db

    @property
    def mmu(self) -> Mmu:
        """The MMU (and its TLB)."""
        return self._mmu

    @property
    def tlb(self) -> Tlb:
        """The TLB."""
        return self._tlb

    @property
    def cta_policy(self) -> Optional[CtaPolicy]:
        """The CTA layout, when the defense is enabled."""
        return self._cta_policy

    @property
    def cta_enabled(self) -> bool:
        """Whether CTA allocation is active."""
        return self._cta_policy is not None

    @property
    def processes(self) -> Dict[int, Process]:
        """Live processes by pid."""
        return dict(self._processes)

    def allocator_for_zone(self, zone: MemoryZone) -> BuddyAllocator:
        """The buddy allocator managing ``zone``."""
        for candidate, allocator in self._allocators:
            if candidate is zone:
                return allocator
        raise ConfigurationError(f"zone {zone.name} not managed by this kernel")

    def allocator_of_pfn(self, pfn: int) -> Optional[BuddyAllocator]:
        """The allocator whose range contains ``pfn`` (None in zone holes)."""
        for _, allocator in self._allocators:
            if allocator.contains(pfn):
                return allocator
        return None

    # -- page allocation -----------------------------------------------------
    def alloc_page(
        self,
        flags: GfpFlags,
        use: PageUse,
        owner_pid: Optional[int] = None,
        pt_level: int = 0,
        untrusted: bool = False,
        order: int = 0,
        frame_filter: Optional[Callable[[int], bool]] = None,
        downgraded: bool = False,
    ) -> int:
        """Allocate and zero a 2**order-page block according to ``flags``.

        Enforces CTA Rules 1/2: PTP requests only touch PTP sub-zones (no
        fallback), and non-PTP requests never see ZONE_PTP because it is
        absent from their zonelists. With the indicator-zeros hardening,
        untrusted allocations skip pages whose PTP indicator has fewer
        than two '0' bits. Frames on the Section 7 page-size-bit screening
        list are never used for high-level page tables.

        ``frame_filter`` rejects candidate head frames (used by the
        screened-fallback path); ``downgraded`` records the surviving
        frame as an acknowledged security downgrade before sanitizers see
        its ``kernel.page_alloc`` event.
        """
        if flags.is_ptp_request and use is not PageUse.PAGE_TABLE:
            raise ZoneViolationError(
                f"GFP_PTP used for {use.value}; only page tables allowed (Rule 2)"
            )
        zonelist = self._layout.zonelist_for(flags, pt_level)
        rejected: List[Tuple[BuddyAllocator, int]] = []
        try:
            for zone in zonelist:
                allocator = self.allocator_for_zone(zone)
                while True:
                    try:
                        pfn = allocator.alloc_pages(order=order)
                    except OutOfMemoryError:
                        break
                    if untrusted and self._cta_policy is not None:
                        address = pfn << PAGE_SHIFT
                        if not self._cta_policy.address_allowed_for_untrusted(address):
                            rejected.append((allocator, pfn))
                            self.stats.indicator_rejections += 1
                            obs.inc("kernel.indicator_rejections")
                            continue
                    if (
                        use is PageUse.PAGE_TABLE
                        and pt_level >= 2
                        and pfn in self._screened_ptp_frames
                    ):
                        rejected.append((allocator, pfn))
                        self.stats.screening_rejections += 1
                        obs.inc("kernel.screening_rejections")
                        continue
                    if frame_filter is not None and not frame_filter(pfn):
                        rejected.append((allocator, pfn))
                        self.stats.fallback_screen_rejections += 1
                        obs.inc("kernel.fallback_screen_rejections")
                        continue
                    for offset in range(1 << order):
                        self._page_db.mark_allocated(
                            pfn + offset, use, owner_pid=owner_pid,
                            pt_level=pt_level, order=order if offset == 0 else 0,
                        )
                    self._module.write(
                        pfn << PAGE_SHIFT, b"\x00" * (PAGE_SIZE << order)
                    )
                    self.stats.page_allocs += 1
                    obs.inc("kernel.page_allocs", use=use.value, zone=zone.name)
                    if downgraded:
                        self._register_downgrade(pfn, pt_level)
                    sanitize.notify(
                        "kernel.page_alloc", kernel=self, pfn=pfn, use=use,
                        order=order, pt_level=pt_level, downgraded=downgraded,
                    )
                    return pfn
            if flags.forbids_fallback:
                self.stats.ptp_fallback_denied += 1
                obs.inc("kernel.ptp_fallback_denied")
            raise OutOfMemoryError(
                f"no free page for {use.value} in zonelist "
                f"{[z.name for z in zonelist]}"
            )
        finally:
            for allocator, pfn in rejected:
                allocator.free_pages_block(pfn)

    def free_page(self, pfn: int) -> None:
        """Free the block whose head frame is ``pfn``."""
        allocator = self.allocator_of_pfn(pfn)
        if allocator is None:
            raise ConfigurationError(f"pfn {pfn} lies in a zone hole")
        head = self._page_db.frame(pfn)
        order = head.order
        was_page_table = head.use is PageUse.PAGE_TABLE
        for offset in range(1 << order):
            self._page_db.mark_free(pfn + offset)
        if was_page_table:
            # The MMU may hold an aliasing entry view of this table; once
            # the frame is reused for data that view must not be consulted.
            for offset in range(1 << order):
                self._mmu.forget_table((pfn + offset) << PAGE_SHIFT)
        allocator.free_pages_block(pfn)
        self._downgraded_pt_pfns.discard(pfn)
        self.stats.page_frees += 1
        obs.inc("kernel.page_frees")
        sanitize.notify("kernel.page_free", kernel=self, pfn=pfn)

    def set_screened_ptp_frames(self, frames) -> None:
        """Install the page-size-bit screening list (Section 7).

        Frames listed here are never used for level >= 2 page tables; see
        :func:`repro.kernel.screening.screen_ps_vulnerable_frames`.
        """
        self._screened_ptp_frames = set(frames)

    @property
    def screened_ptp_frames(self) -> set:
        """Currently screened-out frames."""
        return set(self._screened_ptp_frames)

    def pte_alloc_one(self, owner_pid: int, table_level: int) -> int:
        """Allocate one page-table page — the function the patch rewires.

        With CTA enabled the request carries ``__GFP_PTP`` (Rule 1: PTP
        zones only, no fallback); otherwise it is a normal kernel
        allocation served from any ordinary zone. When ZONE_PTP is full
        the configured exhaustion policy takes over (see
        :meth:`_pte_alloc_degraded`): at least one kswapd-style reclaim
        pass — the "swap daemon is awakened" behaviour of Section 6.1 —
        then either a :class:`CapacityError` or the screened fallback.
        """
        flags = GFP_PTP if self.cta_enabled else GFP_KERNEL
        level = table_level if (self._cta_policy and self._cta_policy.config.multilevel) else 0
        effective_level = table_level if level == 0 else level
        try:
            pfn = self.alloc_page(
                flags, PageUse.PAGE_TABLE, owner_pid=owner_pid, pt_level=effective_level
            )
        except OutOfMemoryError:
            if not self.cta_enabled:
                raise
            pfn = self._pte_alloc_degraded(owner_pid, effective_level)
        self.stats.pte_allocs += 1
        obs.inc("kernel.pte_allocs", level=table_level)
        obs.trace("kernel.pte_alloc", pid=owner_pid, level=table_level, pfn=pfn)
        return pfn

    def _pte_alloc_degraded(self, owner_pid: int, pt_level: int) -> int:
        """ZONE_PTP is exhausted: reclaim, then apply the configured policy.

        All policies reclaim first (``reclaim-retry`` keeps at it for
        :data:`~repro.kernel.degrade.RECLAIM_RETRY_ROUNDS` rounds); when
        reclaim cannot satisfy the request, ``screened-fallback`` serves
        the table from an ordinary zone as a counted security downgrade
        and the other policies raise :class:`CapacityError`.
        """
        policy = ExhaustionPolicy.coerce(self.config.ptp_exhaustion_policy)
        self.stats.capacity_exhaustions += 1
        obs.inc("kernel.capacity_exhaustions", policy=policy.value)
        rounds = (
            RECLAIM_RETRY_ROUNDS if policy is ExhaustionPolicy.RECLAIM_RETRY else 1
        )
        for _ in range(rounds):
            if self.reclaim_empty_page_tables() == 0:
                break
            try:
                return self.alloc_page(
                    GFP_PTP, PageUse.PAGE_TABLE, owner_pid=owner_pid,
                    pt_level=pt_level,
                )
            except OutOfMemoryError:
                continue
        if policy is ExhaustionPolicy.SCREENED_FALLBACK:
            return screened_fallback_alloc(self, owner_pid, pt_level)
        raise CapacityError(
            f"ZONE_PTP exhausted under the {policy.value} policy "
            "(Rule 1 forbids ordinary-zone fallback)",
            zone="ZONE_PTP",
        )

    def _register_downgrade(self, pfn: int, pt_level: int) -> None:
        policy = ExhaustionPolicy.coerce(self.config.ptp_exhaustion_policy)
        self._downgraded_pt_pfns.add(pfn)
        self.stats.security_downgrades += 1
        obs.inc("kernel.security_downgrades", policy=policy.value)
        obs.trace("kernel.downgrade", pfn=pfn, level=pt_level)

    @property
    def downgraded_pt_pfns(self) -> frozenset:
        """Live page-table frames granted as explicit security downgrades."""
        return frozenset(self._downgraded_pt_pfns)

    def reclaim_empty_page_tables(self) -> int:
        """Free last-level page tables that map nothing (kswapd-lite).

        ``munmap`` clears PTEs but leaves the tables themselves in place;
        under PTP pressure this reclaimer walks every level-1 table, frees
        those with no present entries, and clears their parent pointers.
        Returns the number of tables reclaimed.
        """
        leaf_tables = [
            frame.pfn
            for frame in self._page_db.frames_with_use(PageUse.PAGE_TABLE)
            if frame.pt_level == 1
        ]
        parents = [
            frame.pfn
            for frame in self._page_db.frames_with_use(PageUse.PAGE_TABLE)
            if frame.pt_level >= 2
        ]
        reclaimed = 0
        # Armed chaos needs the per-entry read path so dram.read fault
        # schedules stay identical; otherwise scan whole tables with one
        # aliasing u64 view each.
        use_views = not self._module.fault_plane_armed
        for pt_pfn in leaf_tables:
            base = pt_pfn << PAGE_SHIFT
            view = self._module.u64_view(base, ENTRIES_PER_TABLE) if use_views else None
            if view is not None:
                if bool((view & np.uint64(1)).any()):
                    continue
            elif any(
                self._module.read_u64(base + slot * 8) & 1 for slot in range(512)
            ):
                continue
            # Only tables attached to a paging tree are reclaimable; a
            # table with no parent reference may be mid-construction.
            parent_refs = []
            for parent_pfn in parents:
                parent_base = parent_pfn << PAGE_SHIFT
                parent_view = (
                    self._module.u64_view(parent_base, ENTRIES_PER_TABLE)
                    if use_views
                    else None
                )
                if parent_view is not None:
                    present_slots = np.nonzero(parent_view & np.uint64(1))[0]
                    for slot in present_slots.tolist():
                        raw = int(parent_view[slot])
                        if PageTableEntry.decode(raw).pfn == pt_pfn:
                            parent_refs.append(parent_base + slot * 8)
                    continue
                for slot in range(512):
                    address = parent_base + slot * 8
                    raw = self._module.read_u64(address)
                    if raw & 1 and PageTableEntry.decode(raw).pfn == pt_pfn:
                        parent_refs.append(address)
            if not parent_refs:
                continue
            for address in parent_refs:
                self._module.write_u64(address, 0)
            self.free_page(pt_pfn)
            reclaimed += 1
        if reclaimed:
            self._tlb.flush()
            self.stats.ptp_reclaims += reclaimed
            obs.inc("kernel.ptp_reclaims", reclaimed)
        return reclaimed

    # -- processes ------------------------------------------------------------
    def create_process(self, trusted: bool = False) -> Process:
        """Spawn a process with an empty PML4."""
        pid = self._next_pid
        self._next_pid += 1
        pml4_pfn = self.pte_alloc_one(pid, table_level=NUM_LEVELS)
        process = Process(pid=pid, cr3=pml4_pfn << PAGE_SHIFT, trusted=trusted)
        self._processes[pid] = process
        return process

    def create_file(self, size_bytes: int) -> MappedFile:
        """Create a shareable file object (for mmap-based spraying)."""
        file = MappedFile(file_id=self._next_file_id, size_bytes=size_bytes)
        self._next_file_id += 1
        self._files[file.file_id] = file
        return file

    def mmap(
        self,
        process: Process,
        length: int,
        writable: bool = True,
        backing: Optional[MappedFile] = None,
        file_page_offset: int = 0,
        address: Optional[int] = None,
    ) -> VmArea:
        """Map ``length`` bytes into ``process``; returns the new VMA."""
        start = address if address is not None else process.reserve_va_range(length)
        vma = VmArea(
            start=start,
            end=start + length,
            writable=writable,
            user=True,
            backing=backing,
            file_page_offset=file_page_offset,
        )
        return process.add_vma(vma)

    def munmap(self, process: Process, vma: VmArea) -> None:
        """Unmap a VMA, clearing PTEs and freeing anonymous frames."""
        for page_index in range(vma.num_pages):
            va = vma.start + page_index * PAGE_SIZE
            leaf = self._leaf_entry_address(process, va)
            if leaf is None:
                continue
            entry = PageTableEntry.decode(self._module.read_u64(leaf))
            if entry.present:
                self._module.write_u64(leaf, PageTableEntry.empty().encode())
                self._tlb.invalidate(process.pid, va >> PAGE_SHIFT)
                if vma.backing is None:
                    self.free_page(entry.pfn)
        process.remove_vma(vma)

    # -- paging --------------------------------------------------------------
    def touch(self, process: Process, virtual_address: int, write: bool = False) -> int:
        """Ensure ``virtual_address`` is mapped; returns the physical address.

        Implements demand paging: a fault on a mapped VMA allocates the
        frame (or reuses the shared file frame) and builds any missing
        page-table levels via :meth:`pte_alloc_one`.
        """
        try:
            return self._mmu.translate(
                process.cr3, virtual_address, pid=process.pid, write=write, user=True
            )
        except PageFaultError:
            pass
        vma = process.find_vma(virtual_address)
        if vma is None:
            raise PageFaultError(
                f"segfault: VA {virtual_address:#x} not mapped", virtual_address
            )
        if write and not vma.writable:
            raise PageFaultError(
                f"write to read-only mapping at {virtual_address:#x}", virtual_address
            )
        self.stats.demand_faults += 1
        obs.inc("kernel.demand_faults")
        # Mirror Linux's fault path: page tables are allocated (pte_alloc)
        # before the data frame itself — the ordering Drammer's memory
        # massaging depends on.
        pt_base = self._walk_alloc_tables(process, virtual_address)
        pfn = self._frame_for(process, vma, virtual_address)
        self._set_leaf(process, pt_base, virtual_address, pfn, vma.writable)
        return self._mmu.translate(
            process.cr3, virtual_address, pid=process.pid, write=write, user=True
        )

    def touch_many(
        self,
        process: Process,
        virtual_addresses: "np.ndarray | List[int]",
        write: bool = False,
        slow_reference: bool = False,
    ) -> List[int]:
        """Batched :meth:`touch`: demand-map an address vector in order.

        Observationally equivalent to calling ``touch`` per address in
        sequence — identical buddy allocation order, TLB state, obs
        counters, and the same exception raised at the same access — but
        already-walked pages are classified in one vectorized pass and
        page-table chains are descended once per 2 MiB region. On
        :class:`OutOfMemoryError` the physical addresses of the completed
        prefix are attached to the exception as ``exc.touched``. Degrades
        to the scalar loop when ``slow_reference`` is set or the fault
        plane is armed.
        """
        vas = np.asarray(virtual_addresses, dtype=np.int64)
        results: List[int] = []
        if slow_reference or self._module.fault_plane_armed:
            try:
                for va in vas:
                    results.append(self.touch(process, int(va), write=write))
            except OutOfMemoryError as exc:
                exc.touched = results  # type: ignore[attr-defined]
                raise
            return results
        mmu = self._mmu
        walked = mmu._walk_many(process.cr3, np.unique(vas >> PAGE_SHIFT))
        pt_bases: Dict[int, int] = {}
        try:
            for va in vas:
                results.append(
                    self._touch_one_prewalked(process, int(va), write, walked, pt_bases)
                )
        except OutOfMemoryError as exc:
            exc.touched = results  # type: ignore[attr-defined]
            raise
        return results

    def _touch_one_prewalked(
        self,
        process: Process,
        va: int,
        write: bool,
        walked: Dict[int, tuple],
        pt_bases: Dict[int, int],
    ) -> int:
        """One :meth:`touch`, using pre-walked page classifications.

        Replays the exact scalar sequence (translate attempt, demand
        fault, final translate) with the expensive hardware walks served
        from ``walked``; newly mapped pages refresh their entry so later
        accesses in the batch see them.
        """
        vpn = va >> PAGE_SHIFT
        try:
            return self._translate_prewalked(process, va, write, walked)
        except PageFaultError:
            pass
        vma = process.find_vma(va)
        if vma is None:
            raise PageFaultError(f"segfault: VA {va:#x} not mapped", va)
        if write and not vma.writable:
            raise PageFaultError(
                f"write to read-only mapping at {va:#x}", va
            )
        self.stats.demand_faults += 1
        obs.inc("kernel.demand_faults")
        region = vpn >> BITS_PER_LEVEL
        pt_base = pt_bases.get(region)
        if pt_base is None:
            pt_base = self._walk_alloc_tables(process, va)
            pt_bases[region] = pt_base
        pfn = self._frame_for(process, vma, va)
        self._set_leaf(process, pt_base, va, pfn, vma.writable)
        walked.pop(vpn, None)
        return self._translate_prewalked(process, va, write, walked)

    def _translate_prewalked(
        self, process: Process, va: int, write: bool, walked: Dict[int, tuple]
    ) -> int:
        """Scalar-equivalent ``mmu.translate`` served from a prewalk map.

        Applies the same TLB/obs accounting and raises the same faults as
        :meth:`Mmu.translate`; a vpn absent from ``walked`` (newly mapped
        or evicted mid-batch) is walked quietly and memoised.
        """
        mmu = self._mmu
        tlb = self._tlb
        pid = process.pid
        vpn = va >> PAGE_SHIFT
        offset = va & (PAGE_SIZE - 1)
        cached = tlb.lookup(pid, vpn)
        if cached is not None:
            pfn, writable, user_ok = cached
            mmu._check_permissions(va, writable, user_ok, write, True)
            return (pfn << PAGE_SHIFT) | offset
        res = walked.get(vpn)
        if res is None:
            # Newly mapped (or evicted) mid-batch: a scalar walk is far
            # cheaper than a single-element batched walk, and walk() does
            # its own walk/fault accounting.
            result = mmu.walk(process.cr3, va)
            writable = all(step.entry.writable for step in result.steps)
            user_ok = all(step.entry.user for step in result.steps)
            mmu._check_permissions(va, writable, user_ok, write, True)
            pfn = result.physical_address >> PAGE_SHIFT
            tlb.insert(pid, vpn, pfn, writable, user_ok)
            sanitize.notify(
                "mmu.translate", mmu=mmu, pid=pid, pfn=pfn, user=True,
            )
            return result.physical_address
        mmu.walk_count += 1
        obs.inc("mmu.walks")
        if res[0] == "not_present":
            obs.inc("mmu.faults", kind="not_present")
            raise PageFaultError(
                f"non-present level-{res[1]} entry for VA {va:#x}", va
            )
        if res[0] == "bus_error":
            obs.inc("mmu.faults", kind="bus_error")
            raise PageFaultError(
                f"bus error: level-{res[1]} table at {res[2]:#x} outside "
                f"physical memory (VA {va:#x})",
                va,
            )
        _, frame_pa, writable, user_ok = res
        mmu._check_permissions(va, writable, user_ok, write, True)
        tlb.insert(pid, vpn, frame_pa >> PAGE_SHIFT, writable, user_ok)
        sanitize.notify(
            "mmu.translate", mmu=mmu, pid=pid,
            pfn=frame_pa >> PAGE_SHIFT, user=True,
        )
        return frame_pa | offset

    def mmap_touch_many(
        self,
        process: Process,
        length: int,
        writable: bool = True,
        backing: Optional[MappedFile] = None,
        file_page_offset: int = 0,
        address: Optional[int] = None,
        write: bool = False,
    ) -> Tuple[VmArea, List[int]]:
        """Map a region and demand-fault every page in one batched call.

        Equivalent to :meth:`mmap` followed by a scalar :meth:`touch`
        loop over each page. On :class:`OutOfMemoryError` the VMA stays
        mapped (as after a partial scalar loop), the completed physical
        addresses ride on ``exc.touched``, and the VMA on ``exc.vma``.
        """
        vma = self.mmap(
            process, length, writable=writable, backing=backing,
            file_page_offset=file_page_offset, address=address,
        )
        vas = vma.start + PAGE_SIZE * np.arange(vma.num_pages, dtype=np.int64)
        try:
            pas = self.touch_many(process, vas, write=write)
        except OutOfMemoryError as exc:
            exc.vma = vma  # type: ignore[attr-defined]
            raise
        return vma, pas

    def _frame_for(self, process: Process, vma: VmArea, virtual_address: int) -> int:
        untrusted = not process.trusted
        if vma.backing is None:
            return self.alloc_page(
                GFP_USER, PageUse.USER_DATA, owner_pid=process.pid, untrusted=untrusted
            )
        file_page = vma.file_page_for(virtual_address)
        if file_page >= vma.backing.num_pages:
            raise PageFaultError(
                f"file mapping past EOF at {virtual_address:#x}", virtual_address
            )
        existing = vma.backing.frames.get(file_page)
        if existing is not None:
            return existing
        pfn = self.alloc_page(
            GFP_USER, PageUse.FILE_CACHE, owner_pid=process.pid, untrusted=untrusted
        )
        vma.backing.frames[file_page] = pfn
        return pfn

    def _set_leaf(
        self, process: Process, pt_base: int, virtual_address: int, pfn: int,
        writable: bool,
    ) -> None:
        indices = split_virtual_address(virtual_address)
        leaf_address = entry_address(pt_base, indices[3])
        entry = PageTableEntry.make(pfn, writable=writable, user=True)
        try:
            self._module.write_u64(leaf_address, entry.encode())
        except AddressError:
            raise PageFaultError(
                f"bus error: page table for VA {virtual_address:#x} lies "
                "outside physical memory",
                virtual_address,
            ) from None
        self._tlb.invalidate(process.pid, virtual_address >> PAGE_SHIFT)

    def _walk_alloc_tables(self, process: Process, virtual_address: int) -> int:
        """Descend PML4 -> PT, allocating missing tables; returns PT base PA.

        A corrupted intermediate entry pointing outside physical memory
        raises :class:`PageFaultError` (machine-check semantics), exactly
        like the hardware walk in :class:`~repro.kernel.mmu.Mmu`.
        """
        indices = split_virtual_address(virtual_address)
        table_pa = process.cr3
        for position, table_level in zip(range(3), (3, 2, 1)):
            # The entry at this position points to a table of `table_level`.
            address = entry_address(table_pa, indices[position])
            try:
                entry = PageTableEntry.decode(
                    self._mmu.read_entry(table_pa, indices[position])
                )
            except AddressError:
                raise PageFaultError(
                    f"bus error: corrupted level-{table_level + 1} table for "
                    f"VA {virtual_address:#x}",
                    virtual_address,
                ) from None
            if not entry.present:
                new_pfn = self.pte_alloc_one(process.pid, table_level=table_level)
                entry = PageTableEntry.make(new_pfn, writable=True, user=True)
                self._module.write_u64(address, entry.encode())
            table_pa = entry.pfn << PAGE_SHIFT
        return table_pa

    def _leaf_entry_address(self, process: Process, virtual_address: int) -> Optional[int]:
        """PA of the last-level PTE for ``virtual_address`` (None if absent).

        Returns None when an intermediate entry is corrupted to point
        outside physical memory (the hardware walk would bus-error).
        """
        indices = split_virtual_address(virtual_address)
        table_pa = process.cr3
        for position in range(3):
            try:
                entry = PageTableEntry.decode(
                    self._mmu.read_entry(table_pa, indices[position])
                )
            except AddressError:
                return None
            if not entry.present:
                return None
            table_pa = entry.pfn << PAGE_SHIFT
        leaf = entry_address(table_pa, indices[3])
        try:
            self._module.geometry.check_address(leaf, 8)
        except AddressError:
            return None
        return leaf

    def leaf_pte_address(self, process: Process, virtual_address: int) -> Optional[int]:
        """Public wrapper: physical address of the last-level PTE, if built."""
        return self._leaf_entry_address(process, virtual_address)

    # -- huge pages (Section 7: multiple page sizes) ---------------------------
    def map_huge_page(
        self, process: Process, virtual_address: int, writable: bool = True
    ) -> int:
        """Map a 2 MiB huge page at a 2 MiB-aligned VA; returns its head pfn.

        Allocates an order-9 data block and installs a PS-bit leaf in the
        PD entry — the Section 7 scenario where a high-level PTE points
        directly at (attacker-writable) user data, so a ``1 -> 0`` flip of
        the PS bit would reinterpret that data as a page table.
        """
        huge_span = PAGE_SIZE << 9
        if virtual_address % huge_span:
            raise ProcessError("huge mappings must be 2 MiB aligned")
        indices = split_virtual_address(virtual_address)
        # Build PML4 -> PDPT only; the PD entry becomes the leaf.
        table_pa = process.cr3
        for position, table_level in zip(range(2), (3, 2)):
            address = entry_address(table_pa, indices[position])
            entry = PageTableEntry.decode(
                self._mmu.read_entry(table_pa, indices[position])
            )
            if not entry.present:
                new_pfn = self.pte_alloc_one(process.pid, table_level=table_level)
                entry = PageTableEntry.make(new_pfn, writable=True, user=True)
                self._module.write_u64(address, entry.encode())
            table_pa = entry.pfn << PAGE_SHIFT
        data_pfn = self.alloc_page(
            GFP_USER, PageUse.USER_DATA, owner_pid=process.pid,
            untrusted=not process.trusted, order=9,
        )
        pd_entry_address = entry_address(table_pa, indices[2])
        leaf = PageTableEntry.make(data_pfn, writable=writable, user=True, huge=True)
        self._module.write_u64(pd_entry_address, leaf.encode())
        process.add_vma(
            VmArea(start=virtual_address, end=virtual_address + huge_span,
                   writable=writable)
        )
        self.stats.huge_mappings += 1
        obs.inc("kernel.huge_mappings")
        return data_pfn

    def pd_entry_address(self, process: Process, virtual_address: int) -> Optional[int]:
        """Physical address of the PD (level-2) entry covering a VA."""
        indices = split_virtual_address(virtual_address)
        table_pa = process.cr3
        for position in range(2):
            try:
                entry = PageTableEntry.decode(
                    self._mmu.read_entry(table_pa, indices[position])
                )
            except AddressError:
                return None
            if not entry.present:
                return None
            table_pa = entry.pfn << PAGE_SHIFT
        return entry_address(table_pa, indices[2])

    # -- user-visible memory access ----------------------------------------------
    def read_virtual(self, process: Process, virtual_address: int, length: int) -> bytes:
        """Read process memory, demand-paging as needed (may span pages)."""
        out = bytearray()
        cursor = 0
        while cursor < length:
            va = virtual_address + cursor
            chunk = min(length - cursor, PAGE_SIZE - (va % PAGE_SIZE))
            pa = self.touch(process, va, write=False)
            out += self._module.read(pa, chunk)
            cursor += chunk
        return bytes(out)

    def write_virtual(self, process: Process, virtual_address: int, data: bytes) -> None:
        """Write process memory, demand-paging as needed (may span pages)."""
        cursor = 0
        while cursor < len(data):
            va = virtual_address + cursor
            chunk = min(len(data) - cursor, PAGE_SIZE - (va % PAGE_SIZE))
            pa = self.touch(process, va, write=True)
            self._module.write(pa, data[cursor : cursor + chunk])
            cursor += chunk

    # -- introspection --------------------------------------------------------
    def page_table_pfns(self, pid: Optional[int] = None) -> List[int]:
        """All page-table frames (optionally of one process)."""
        return [
            frame.pfn
            for frame in self._page_db.frames_with_use(PageUse.PAGE_TABLE)
            if pid is None or frame.owner_pid == pid
        ]

    def is_page_table_pfn(self, pfn: int) -> bool:
        """Whether ``pfn`` currently holds a page table."""
        try:
            return self._page_db.frame(pfn).use is PageUse.PAGE_TABLE
        except Exception:
            return False

    def page_table_bytes(self, pid: Optional[int] = None) -> int:
        """Bytes of physical memory holding page tables."""
        return len(self.page_table_pfns(pid)) * PAGE_SIZE

    def verify_cta_rules(self) -> None:
        """Assert CTA Rules 1/2 over the live system (no-op without CTA).

        Frames in :attr:`downgraded_pt_pfns` are exempt from Rule 1 — they
        were served below the mark deliberately, and are accounted under
        ``kernel.security_downgrades`` instead of raised as violations.
        """
        if self._cta_policy is not None:
            self._cta_policy.check_rules(
                self._page_db, acknowledged_downgrades=self._downgraded_pt_pfns
            )

    def zone_usage(self) -> Dict[str, Tuple[int, int]]:
        """Per-zone (free_pages, total_pages) snapshot."""
        return {
            zone.name: (allocator.free_pages, allocator.total_pages)
            for zone, allocator in self._allocators
        }
