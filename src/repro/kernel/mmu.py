"""Hardware page-table walker.

Walks the 4-level hierarchy *by reading simulated DRAM*, exactly as an
x86-64 MMU would: starting from CR3, each level's entry is an 8-byte load
from physical memory. Consequently a RowHammer flip in a page-table row
changes what this walker returns — the attack's entire mechanism.

The walker deliberately performs **no sanity checks** beyond what hardware
does (present bit, permission bits): a corrupted PFN that happens to point
at another page table is followed without complaint. That is the PTE
self-reference behaviour the paper's defense must make unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs, sanitize
from repro.dram.module import DramModule
from repro.errors import AddressError, PageFaultError, PageTableError
from repro.kernel.pagetable import (
    BITS_PER_LEVEL,
    ENTRIES_PER_TABLE,
    NUM_LEVELS,
    PageTableEntry,
    entry_address,
    split_virtual_address,
)
from repro.kernel.tlb import Tlb
from repro.units import PAGE_SHIFT


@dataclass(frozen=True)
class WalkStep:
    """One level of a completed walk: where the entry was and what it said."""

    level: int  # 4 = PML4 ... 1 = PT
    entry_physical_address: int
    entry: PageTableEntry


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a successful translation."""

    physical_address: int
    pfn: int
    steps: Tuple[WalkStep, ...]
    huge_level: int = 0  # 0 = 4 KiB page, 2 = 2 MiB, 3 = 1 GiB

    @property
    def leaf(self) -> WalkStep:
        """The final (leaf) step."""
        return self.steps[-1]


class Mmu:
    """Page-table walker + TLB front-end over one DRAM module."""

    def __init__(self, dram: DramModule, tlb: Optional[Tlb] = None, pt_cache: bool = True):
        self._dram = dram
        self._tlb = tlb or Tlb()
        # Page-table entry cache: table base PA -> aliasing u64 view of the
        # whole table (or None when the table isn't view-addressable). The
        # views share storage with DRAM, so PTE writes and RowHammer flips
        # are visible without invalidation; only forget_row() re-binds
        # arrays, which the generation stamp detects.
        self._pt_cache_enabled = bool(pt_cache)
        self._pt_views: Dict[int, Optional[np.ndarray]] = {}
        self._pt_generation = -1
        #: Count of full walks performed (perf harness signal).
        self.walk_count = 0

    @property
    def tlb(self) -> Tlb:
        """The TLB consulted before walking."""
        return self._tlb

    @property
    def dram(self) -> DramModule:
        """Physical memory the walker reads."""
        return self._dram

    # -- page-table entry cache -------------------------------------------
    @property
    def pt_cache_enabled(self) -> bool:
        """Whether walks index cached table views instead of full reads."""
        return self._pt_cache_enabled

    @pt_cache_enabled.setter
    def pt_cache_enabled(self, enabled: bool) -> None:
        self._pt_cache_enabled = bool(enabled)
        self._pt_views.clear()

    def forget_table(self, table_base: int) -> None:
        """Drop the cached view of the table at physical ``table_base``.

        Called by the kernel when a page-table frame is freed, so a frame
        later reused for data can't serve stale entry views.
        """
        self._pt_views.pop(table_base, None)

    def read_entry(self, table_base: int, index: int) -> int:
        """Raw 64-bit entry ``index`` of the table at ``table_base``.

        Fast path: one cached numpy index per level. Falls back to the
        full :meth:`DramModule.read_u64` path (chunking, fault-plane
        hooks) when the cache is disabled, the fault plane is armed —
        per-read fault schedules must see every access — or the table
        doesn't fit a single aligned row span.
        """
        dram = self._dram
        if not self._pt_cache_enabled or dram.fault_plane_armed:
            return dram.read_u64(entry_address(table_base, index))
        generation = dram.generation
        if generation != self._pt_generation:
            self._pt_views.clear()
            self._pt_generation = generation
        try:
            view = self._pt_views[table_base]
        except KeyError:
            view = dram.u64_view(table_base, ENTRIES_PER_TABLE)
            self._pt_views[table_base] = view
        if view is None:
            return dram.read_u64(entry_address(table_base, index))
        dram.read_count += 1
        return int(view[index])

    # -- translation ------------------------------------------------------
    def translate(
        self,
        cr3: int,
        virtual_address: int,
        pid: int = 0,
        write: bool = False,
        user: bool = True,
        use_tlb: bool = True,
    ) -> int:
        """Translate ``virtual_address``; returns the physical address.

        Raises :class:`PageFaultError` on a non-present entry or a
        permission violation (write to read-only, user access to
        supervisor page).
        """
        vpn = virtual_address >> PAGE_SHIFT
        offset = virtual_address & ((1 << PAGE_SHIFT) - 1)
        if use_tlb:
            cached = self._tlb.lookup(pid, vpn)
            if cached is not None:
                pfn, writable, user_ok = cached
                self._check_permissions(virtual_address, writable, user_ok, write, user)
                return (pfn << PAGE_SHIFT) | offset
        result = self.walk(cr3, virtual_address)
        writable = all(step.entry.writable for step in result.steps)
        user_ok = all(step.entry.user for step in result.steps)
        self._check_permissions(virtual_address, writable, user_ok, write, user)
        if use_tlb:
            # Cache the 4 KiB frame actually backing this vpn — for huge
            # pages that is an interior frame of the block, not the leaf's
            # head pfn.
            self._tlb.insert(
                pid, vpn, result.physical_address >> PAGE_SHIFT, writable, user_ok
            )
        sanitize.notify(
            "mmu.translate", mmu=self, pid=pid,
            pfn=result.physical_address >> PAGE_SHIFT, user=user,
        )
        return result.physical_address

    def walk(self, cr3: int, virtual_address: int) -> WalkResult:
        """Perform the 4-level walk, returning every step.

        Honors the PS (huge page) bit at levels 3 and 2, terminating the
        walk early with a 1 GiB / 2 MiB leaf (Section 7's multi-page-size
        discussion).
        """
        self.walk_count += 1
        obs.inc("mmu.walks")
        indices = split_virtual_address(virtual_address)[:NUM_LEVELS]
        offset_bits = PAGE_SHIFT
        table_base = cr3
        steps: List[WalkStep] = []
        for position, level in enumerate(range(NUM_LEVELS, 0, -1)):
            index = indices[position]
            address = entry_address(table_base, index)
            try:
                entry = PageTableEntry.decode(self.read_entry(table_base, index))
            except AddressError:
                # A corrupted upper-level entry pointed outside physical
                # memory; hardware raises a machine check / bus error.
                obs.inc("mmu.faults", kind="bus_error")
                raise PageFaultError(
                    f"bus error: level-{level} table at {table_base:#x} outside "
                    f"physical memory (VA {virtual_address:#x})",
                    virtual_address,
                ) from None
            steps.append(WalkStep(level=level, entry_physical_address=address, entry=entry))
            if not entry.present:
                obs.inc("mmu.faults", kind="not_present")
                raise PageFaultError(
                    f"non-present level-{level} entry for VA {virtual_address:#x}",
                    virtual_address,
                )
            if level in (3, 2) and entry.huge:
                huge_shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
                huge_offset = virtual_address & ((1 << huge_shift) - 1)
                base = (entry.pfn << PAGE_SHIFT) & ~((1 << huge_shift) - 1)
                return WalkResult(
                    physical_address=base | huge_offset,
                    pfn=entry.pfn,
                    steps=tuple(steps),
                    huge_level=level,
                )
            if level == 1:
                physical = (entry.pfn << PAGE_SHIFT) | (
                    virtual_address & ((1 << offset_bits) - 1)
                )
                return WalkResult(
                    physical_address=physical, pfn=entry.pfn, steps=tuple(steps)
                )
            table_base = entry.pfn << PAGE_SHIFT
        raise PageTableError(
            f"walk for VA {virtual_address:#x} descended past level 1 without "
            "reaching a leaf"
        )

    # -- memory access through translation ----------------------------------
    def load(
        self, cr3: int, virtual_address: int, length: int, pid: int = 0, user: bool = True
    ) -> bytes:
        """Read virtual memory (single-page spans only)."""
        physical = self.translate(cr3, virtual_address, pid=pid, write=False, user=user)
        try:
            return self._dram.read(physical, length)
        except AddressError:
            raise PageFaultError(
                f"bus error reading PA {physical:#x}", virtual_address
            ) from None

    def store(
        self, cr3: int, virtual_address: int, data: bytes, pid: int = 0, user: bool = True
    ) -> None:
        """Write virtual memory (single-page spans only)."""
        physical = self.translate(cr3, virtual_address, pid=pid, write=True, user=user)
        try:
            self._dram.write(physical, data)
        except AddressError:
            raise PageFaultError(
                f"bus error writing PA {physical:#x}", virtual_address
            ) from None

    @staticmethod
    def _check_permissions(
        virtual_address: int, writable: bool, user_ok: bool, write: bool, user: bool
    ) -> None:
        if write and not writable:
            obs.inc("mmu.faults", kind="write_protect")
            raise PageFaultError(
                f"write to read-only VA {virtual_address:#x}", virtual_address
            )
        if user and not user_ok:
            obs.inc("mmu.faults", kind="privilege")
            raise PageFaultError(
                f"user access to supervisor VA {virtual_address:#x}", virtual_address
            )
