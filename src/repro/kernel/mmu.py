"""Hardware page-table walker.

Walks the 4-level hierarchy *by reading simulated DRAM*, exactly as an
x86-64 MMU would: starting from CR3, each level's entry is an 8-byte load
from physical memory. Consequently a RowHammer flip in a page-table row
changes what this walker returns — the attack's entire mechanism.

The walker deliberately performs **no sanity checks** beyond what hardware
does (present bit, permission bits): a corrupted PFN that happens to point
at another page table is followed without complaint. That is the PTE
self-reference behaviour the paper's defense must make unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs, sanitize
from repro.dram.module import DramModule
from repro.errors import AddressError, PageFaultError, PageTableError
from repro.kernel.pagetable import (
    BITS_PER_LEVEL,
    ENTRIES_PER_TABLE,
    NUM_LEVELS,
    PageTableEntry,
    decode_entries,
    entry_address,
    split_virtual_address,
)
from repro.kernel.tlb import Tlb
from repro.units import PAGE_SHIFT


@dataclass(frozen=True)
class WalkStep:
    """One level of a completed walk: where the entry was and what it said."""

    level: int  # 4 = PML4 ... 1 = PT
    entry_physical_address: int
    entry: PageTableEntry


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a successful translation."""

    physical_address: int
    pfn: int
    steps: Tuple[WalkStep, ...]
    huge_level: int = 0  # 0 = 4 KiB page, 2 = 2 MiB, 3 = 1 GiB

    @property
    def leaf(self) -> WalkStep:
        """The final (leaf) step."""
        return self.steps[-1]


class Mmu:
    """Page-table walker + TLB front-end over one DRAM module."""

    def __init__(self, dram: DramModule, tlb: Optional[Tlb] = None, pt_cache: bool = True):
        self._dram = dram
        self._tlb = tlb or Tlb()
        # Page-table entry cache: table base PA -> aliasing u64 view of the
        # whole table (or None when the table isn't view-addressable). The
        # views share storage with DRAM, so PTE writes and RowHammer flips
        # are visible without invalidation; only forget_row() re-binds
        # arrays, which the generation stamp detects.
        self._pt_cache_enabled = bool(pt_cache)
        self._pt_views: Dict[int, Optional[np.ndarray]] = {}
        self._pt_generation = -1
        #: Count of full walks performed (perf harness signal).
        self.walk_count = 0

    @property
    def tlb(self) -> Tlb:
        """The TLB consulted before walking."""
        return self._tlb

    @property
    def dram(self) -> DramModule:
        """Physical memory the walker reads."""
        return self._dram

    # -- page-table entry cache -------------------------------------------
    @property
    def pt_cache_enabled(self) -> bool:
        """Whether walks index cached table views instead of full reads."""
        return self._pt_cache_enabled

    @pt_cache_enabled.setter
    def pt_cache_enabled(self, enabled: bool) -> None:
        self._pt_cache_enabled = bool(enabled)
        self._pt_views.clear()

    def forget_table(self, table_base: int) -> None:
        """Drop the cached view of the table at physical ``table_base``.

        Called by the kernel when a page-table frame is freed, so a frame
        later reused for data can't serve stale entry views.
        """
        self._pt_views.pop(table_base, None)

    def read_entry(self, table_base: int, index: int) -> int:
        """Raw 64-bit entry ``index`` of the table at ``table_base``.

        Fast path: one cached numpy index per level. Falls back to the
        full :meth:`DramModule.read_u64` path (chunking, fault-plane
        hooks) when the cache is disabled, the fault plane is armed —
        per-read fault schedules must see every access — or the table
        doesn't fit a single aligned row span.
        """
        dram = self._dram
        if not self._pt_cache_enabled or dram.fault_plane_armed:
            return dram.read_u64(entry_address(table_base, index))
        view = self._table_view(table_base)
        if view is None:
            return dram.read_u64(entry_address(table_base, index))
        dram.read_count += 1
        return int(view[index])

    def _table_view(self, table_base: int) -> Optional[np.ndarray]:
        """Cached aliasing u64 view of the whole table, or ``None``."""
        dram = self._dram
        generation = dram.generation
        if generation != self._pt_generation:
            self._pt_views.clear()
            self._pt_generation = generation
        try:
            return self._pt_views[table_base]
        except KeyError:
            view = dram.u64_view(table_base, ENTRIES_PER_TABLE)
            self._pt_views[table_base] = view
            return view

    # -- translation ------------------------------------------------------
    def translate(
        self,
        cr3: int,
        virtual_address: int,
        pid: int = 0,
        write: bool = False,
        user: bool = True,
        use_tlb: bool = True,
    ) -> int:
        """Translate ``virtual_address``; returns the physical address.

        Raises :class:`PageFaultError` on a non-present entry or a
        permission violation (write to read-only, user access to
        supervisor page).
        """
        vpn = virtual_address >> PAGE_SHIFT
        offset = virtual_address & ((1 << PAGE_SHIFT) - 1)
        if use_tlb:
            cached = self._tlb.lookup(pid, vpn)
            if cached is not None:
                pfn, writable, user_ok = cached
                self._check_permissions(virtual_address, writable, user_ok, write, user)
                return (pfn << PAGE_SHIFT) | offset
        result = self.walk(cr3, virtual_address)
        writable = all(step.entry.writable for step in result.steps)
        user_ok = all(step.entry.user for step in result.steps)
        self._check_permissions(virtual_address, writable, user_ok, write, user)
        if use_tlb:
            # Cache the 4 KiB frame actually backing this vpn — for huge
            # pages that is an interior frame of the block, not the leaf's
            # head pfn.
            self._tlb.insert(
                pid, vpn, result.physical_address >> PAGE_SHIFT, writable, user_ok
            )
        sanitize.notify(
            "mmu.translate", mmu=self, pid=pid,
            pfn=result.physical_address >> PAGE_SHIFT, user=user,
        )
        return result.physical_address

    def walk(self, cr3: int, virtual_address: int) -> WalkResult:
        """Perform the 4-level walk, returning every step.

        Honors the PS (huge page) bit at levels 3 and 2, terminating the
        walk early with a 1 GiB / 2 MiB leaf (Section 7's multi-page-size
        discussion).
        """
        self.walk_count += 1
        obs.inc("mmu.walks")
        indices = split_virtual_address(virtual_address)[:NUM_LEVELS]
        offset_bits = PAGE_SHIFT
        table_base = cr3
        steps: List[WalkStep] = []
        for position, level in enumerate(range(NUM_LEVELS, 0, -1)):
            index = indices[position]
            address = entry_address(table_base, index)
            try:
                entry = PageTableEntry.decode(self.read_entry(table_base, index))  # repro-lint: ignore[RL012] — the scalar reference walk decodes per level by contract
            except AddressError:
                # A corrupted upper-level entry pointed outside physical
                # memory; hardware raises a machine check / bus error.
                obs.inc("mmu.faults", kind="bus_error")
                raise PageFaultError(
                    f"bus error: level-{level} table at {table_base:#x} outside "
                    f"physical memory (VA {virtual_address:#x})",
                    virtual_address,
                ) from None
            steps.append(WalkStep(level=level, entry_physical_address=address, entry=entry))
            if not entry.present:
                obs.inc("mmu.faults", kind="not_present")
                raise PageFaultError(
                    f"non-present level-{level} entry for VA {virtual_address:#x}",
                    virtual_address,
                )
            if level in (3, 2) and entry.huge:
                huge_shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
                huge_offset = virtual_address & ((1 << huge_shift) - 1)
                base = (entry.pfn << PAGE_SHIFT) & ~((1 << huge_shift) - 1)
                return WalkResult(
                    physical_address=base | huge_offset,
                    pfn=entry.pfn,
                    steps=tuple(steps),
                    huge_level=level,
                )
            if level == 1:
                physical = (entry.pfn << PAGE_SHIFT) | (
                    virtual_address & ((1 << offset_bits) - 1)
                )
                return WalkResult(
                    physical_address=physical, pfn=entry.pfn, steps=tuple(steps)
                )
            table_base = entry.pfn << PAGE_SHIFT
        raise PageTableError(
            f"walk for VA {virtual_address:#x} descended past level 1 without "
            "reaching a leaf"
        )

    # -- batched translation ----------------------------------------------
    def translate_many(
        self,
        cr3: int,
        virtual_addresses: "np.ndarray | List[int]",
        pid: int = 0,
        write: bool = False,
        user: bool = True,
        use_tlb: bool = True,
        slow_reference: bool = False,
    ) -> np.ndarray:
        """Translate an address vector; returns int64 physical addresses.

        Observationally equivalent to calling :meth:`translate` per
        address in order — same results, TLB hit/miss/eviction state, obs
        counters, and the same fault raised at the same access — but after
        the single TLB-probe pass every missing VPN advances through the
        radix tree as one numpy frontier per level (:meth:`_walk_many`):
        shared interior nodes are deduplicated and each level is gathered
        with one batched DRAM read, so a thousand-page miss storm costs
        four gathers, not four thousand entry reads. Automatically
        degrades to the scalar loop when ``slow_reference`` is set or the
        fault plane is armed, so per-access fault schedules
        (``tlb-stale``, ``dram-read-error``) replay exactly as in a
        scalar run. The frontier-only instrumentation
        (``mmu.walk.frontier_batches``, ``mmu.walk.levels``,
        ``dram.resident_rows``) is outside that equivalence contract.

        Stores in the same batch must not modify page tables consulted by
        later addresses (data pages only); the batched walk reads tables
        once up front.
        """
        vas = np.asarray(virtual_addresses, dtype=np.int64)
        if slow_reference or self._dram.fault_plane_armed:
            return np.array(
                [
                    self.translate(
                        cr3, int(va), pid=pid, write=write, user=user, use_tlb=use_tlb
                    )
                    for va in vas
                ],
                dtype=np.int64,
            )
        n = int(vas.size)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        vpns = vas >> PAGE_SHIFT
        offsets = vas & ((1 << PAGE_SHIFT) - 1)
        tlb = self._tlb
        if use_tlb:
            found, hit_pfns, hit_w, hit_u = tlb.probe_many(pid, vpns)
            need = np.unique(vpns[~found])
        else:
            found = np.zeros(n, dtype=bool)
            hit_pfns = np.zeros(n, dtype=np.int64)
            hit_w = np.zeros(n, dtype=bool)
            hit_u = np.zeros(n, dtype=bool)
            need = np.unique(vpns)
        walked = self._walk_many(cr3, need)
        # Distinct-page walk outcomes, aligned with the sorted `need`.
        ok_arr = np.zeros(need.size, dtype=bool)
        frame_arr = np.zeros(need.size, dtype=np.int64)
        w_arr = np.zeros(need.size, dtype=bool)
        u_arr = np.zeros(need.size, dtype=bool)
        all_ok = True
        for k in range(need.size):
            res = walked[int(need[k])]
            if res[0] == "ok":
                ok_arr[k] = True
                frame_arr[k] = res[1]
                w_arr[k] = res[2]
                u_arr[k] = res[3]
            else:
                all_ok = False
        fast = all_ok
        if fast and use_tlb and tlb.size + need.size > tlb.capacity:
            fast = False  # evictions possible: replay access order exactly
        if fast:
            miss_pos = np.searchsorted(need, vpns[~found])
            if write and not (
                bool(w_arr[miss_pos].all()) and bool(hit_w[found].all())
            ):
                fast = False
            if user and not (
                bool(u_arr[miss_pos].all()) and bool(hit_u[found].all())
            ):
                fast = False
        if fast:
            return self._commit_fast(
                pid, vpns, offsets, found, hit_pfns, need, frame_arr, w_arr, u_arr,
                use_tlb, user,
            )
        return self._commit_ordered(
            cr3, vas, vpns, offsets, walked, pid, write, user, use_tlb
        )

    def _commit_fast(
        self,
        pid: int,
        vpns: np.ndarray,
        offsets: np.ndarray,
        found: np.ndarray,
        hit_pfns: np.ndarray,
        need: np.ndarray,
        frame_arr: np.ndarray,
        w_arr: np.ndarray,
        u_arr: np.ndarray,
        use_tlb: bool,
        user: bool,
    ) -> np.ndarray:
        """Vectorized commit for a fault-free, eviction-free batch."""
        n = int(vpns.size)
        frames = np.empty(n, dtype=np.int64)
        if use_tlb:
            frames[found] = hit_pfns[found] << PAGE_SHIFT
        miss_mask = ~found
        miss_pos = np.searchsorted(need, vpns[miss_mask])
        frames[miss_mask] = frame_arr[miss_pos]
        physical = frames | offsets
        miss_indices = np.flatnonzero(miss_mask)
        if use_tlb:
            # First access of each distinct missing vpn is the true miss
            # (walk + insert); later accesses of it hit the fresh entry.
            _, first_of = np.unique(vpns[miss_indices], return_index=True)
            true_miss = miss_indices[np.sort(first_of)]
            walks = int(true_miss.size)
            hits = n - walks
            tlb = self._tlb
            if hits:
                tlb.hits += hits
                obs.inc("tlb.hits", amount=float(hits))
            if walks:
                tlb.misses += walks
                obs.inc("tlb.misses", amount=float(walks))
            need_pos = np.searchsorted(need, vpns[true_miss])
            tlb.commit_many(
                pid,
                vpns,
                vpns[true_miss],
                frame_arr[need_pos] >> PAGE_SHIFT,
                w_arr[need_pos],
                u_arr[need_pos],
            )
            notify_frames = frames[true_miss]
        else:
            walks = n
            notify_frames = frames
        if walks:
            self.walk_count += walks
            obs.inc("mmu.walks", amount=float(walks))
        if sanitize.enabled():
            for frame in notify_frames:
                sanitize.notify(
                    "mmu.translate", mmu=self, pid=pid,
                    pfn=int(frame) >> PAGE_SHIFT, user=user,
                )
        return physical

    def _commit_ordered(
        self,
        cr3: int,
        vas: np.ndarray,
        vpns: np.ndarray,
        offsets: np.ndarray,
        walked: Dict[int, tuple],
        pid: int,
        write: bool,
        user: bool,
        use_tlb: bool,
    ) -> np.ndarray:
        """Per-access commit with pre-walked results (faults, permission
        violations, or possible evictions): replays the exact scalar
        counter/TLB/raise sequence."""
        n = int(vas.size)
        physical = np.empty(n, dtype=np.int64)
        tlb = self._tlb
        for i in range(n):
            va = int(vas[i])
            vpn = int(vpns[i])
            offset = int(offsets[i])
            if use_tlb:
                cached = tlb.lookup(pid, vpn)
                if cached is not None:
                    pfn, writable, user_ok = cached
                    self._check_permissions(va, writable, user_ok, write, user)
                    physical[i] = (pfn << PAGE_SHIFT) | offset
                    continue
            res = walked.get(vpn)
            if res is None:
                # Evicted mid-batch and re-missed: walk now (walk() does
                # its own walk/obs accounting).
                result = self.walk(cr3, va)
                writable = all(step.entry.writable for step in result.steps)
                user_ok = all(step.entry.user for step in result.steps)
                self._check_permissions(va, writable, user_ok, write, user)
                if use_tlb:
                    tlb.insert(
                        pid, vpn, result.physical_address >> PAGE_SHIFT,
                        writable, user_ok,
                    )
                sanitize.notify(
                    "mmu.translate", mmu=self, pid=pid,
                    pfn=result.physical_address >> PAGE_SHIFT, user=user,
                )
                physical[i] = result.physical_address
                continue
            self.walk_count += 1
            obs.inc("mmu.walks")
            if res[0] == "not_present":
                obs.inc("mmu.faults", kind="not_present")
                raise PageFaultError(
                    f"non-present level-{res[1]} entry for VA {va:#x}", va
                )
            if res[0] == "bus_error":
                obs.inc("mmu.faults", kind="bus_error")
                raise PageFaultError(
                    f"bus error: level-{res[1]} table at {res[2]:#x} outside "
                    f"physical memory (VA {va:#x})",
                    va,
                ) from None
            _, frame_pa, writable, user_ok = res
            self._check_permissions(va, writable, user_ok, write, user)
            if use_tlb:
                tlb.insert(pid, vpn, frame_pa >> PAGE_SHIFT, writable, user_ok)
            sanitize.notify(
                "mmu.translate", mmu=self, pid=pid,
                pfn=frame_pa >> PAGE_SHIFT, user=user,
            )
            physical[i] = frame_pa | offset
        return physical

    def _walk_many(self, cr3: int, vpns: np.ndarray) -> Dict[int, tuple]:
        """Walk each distinct VPN once as a level-at-a-time numpy frontier.

        Every missing VPN advances through the radix tree together: per
        level the frontier's entry addresses are deduplicated (an interior
        node shared by many VPNs is read exactly once no matter how wide
        the fan-in), gathered with one batched
        :meth:`~repro.dram.module.DramModule.read_u64_many`, decoded with
        the vectorized :func:`~repro.kernel.pagetable.decode_entries`
        batch decoder, and terminal outcomes scattered back per VPN.

        Returns a map ``vpn -> ("ok", frame_pa, writable, user_ok)`` or
        ``("not_present", level)`` or ``("bus_error", level, table_base)``.
        No walk/fault counters or obs metrics of the equivalence contract
        move here: the commit loops charge walks and faults per access,
        exactly as scalar walks would. The walker's own instrumentation —
        ``mmu.walk.frontier_batches``, ``mmu.walk.levels`` and the
        ``dram.resident_rows`` gauge — is documented as outside that
        contract (it only exists on the frontier path).
        """
        dram = self._dram
        total_bytes = dram.geometry.total_bytes
        results: Dict[int, tuple] = {}
        vpn_a = np.asarray(vpns, dtype=np.int64)
        if vpn_a.size == 0:
            return results
        obs.inc("mmu.walk.frontier_batches")
        table_a = np.full(vpn_a.size, int(cr3), dtype=np.int64)
        w_a = np.ones(vpn_a.size, dtype=bool)
        u_a = np.ones(vpn_a.size, dtype=bool)
        levels_walked = 0
        for position, level in enumerate(range(NUM_LEVELS, 0, -1)):
            if vpn_a.size == 0:
                break
            levels_walked += 1
            shift = BITS_PER_LEVEL * (NUM_LEVELS - 1 - position)
            idx = (vpn_a >> shift) & (ENTRIES_PER_TABLE - 1)
            addrs = table_a + idx * 8
            bad = (table_a < 0) | (addrs < 0) | (addrs + 8 > total_bytes)
            entries = np.zeros(vpn_a.size, dtype=np.uint64)
            readable = ~bad
            if readable.any():
                # Dedup shared interior nodes across the whole frontier,
                # then one batched DRAM gather over the distinct entries.
                uniq_addrs, inverse = np.unique(
                    addrs[readable], return_inverse=True
                )
                entries[readable] = dram.read_u64_many(uniq_addrs)[inverse]
            present, w_bit, u_bit, huge_bit, pfn = decode_entries(entries)
            present &= readable
            if bad.any():
                for vpn, base in zip(vpn_a[bad].tolist(), table_a[bad].tolist()):
                    results[vpn] = ("bus_error", level, base)
            absent = ~present & readable
            if absent.any():
                for vpn in vpn_a[absent].tolist():
                    results[vpn] = ("not_present", level)
            w_a = w_a & w_bit
            u_a = u_a & u_bit
            if level in (3, 2):
                huge = present & huge_bit
                if huge.any():
                    huge_shift = PAGE_SHIFT + BITS_PER_LEVEL * (level - 1)
                    mask = (1 << huge_shift) - 1
                    base_pa = (pfn[huge] << PAGE_SHIFT) & ~mask
                    frame_pa = base_pa | ((vpn_a[huge] << PAGE_SHIFT) & mask)
                    for vpn, frame, w, u in zip(
                        vpn_a[huge].tolist(), frame_pa.tolist(),
                        w_a[huge].tolist(), u_a[huge].tolist(),
                    ):
                        results[vpn] = ("ok", frame, w, u)
                cont = present & ~huge
            elif level == 1:
                if present.any():
                    frame_pa = pfn[present] << PAGE_SHIFT
                    for vpn, frame, w, u in zip(
                        vpn_a[present].tolist(), frame_pa.tolist(),
                        w_a[present].tolist(), u_a[present].tolist(),
                    ):
                        results[vpn] = ("ok", frame, w, u)
                cont = np.zeros(vpn_a.size, dtype=bool)
            else:
                cont = present
            vpn_a = vpn_a[cont]
            table_a = pfn[cont] << PAGE_SHIFT
            w_a = w_a[cont]
            u_a = u_a[cont]
        obs.inc("mmu.walk.levels", amount=float(levels_walked))
        obs.set_gauge("dram.resident_rows", float(dram.resident_rows))
        return results

    # -- memory access through translation ----------------------------------
    def load(
        self, cr3: int, virtual_address: int, length: int, pid: int = 0, user: bool = True
    ) -> bytes:
        """Read virtual memory (single-page spans only)."""
        physical = self.translate(cr3, virtual_address, pid=pid, write=False, user=user)
        try:
            return self._dram.read(physical, length)
        except AddressError:
            raise PageFaultError(
                f"bus error reading PA {physical:#x}", virtual_address
            ) from None

    def store(
        self, cr3: int, virtual_address: int, data: bytes, pid: int = 0, user: bool = True
    ) -> None:
        """Write virtual memory (single-page spans only)."""
        physical = self.translate(cr3, virtual_address, pid=pid, write=True, user=user)
        try:
            self._dram.write(physical, data)
        except AddressError:
            raise PageFaultError(
                f"bus error writing PA {physical:#x}", virtual_address
            ) from None

    def load_many(
        self,
        cr3: int,
        virtual_addresses: "np.ndarray | List[int]",
        length: int,
        pid: int = 0,
        user: bool = True,
        slow_reference: bool = False,
    ) -> List[bytes]:
        """Batched :meth:`load`: one translation pass, then row reads.

        Equivalent to a per-address ``load`` loop (same results, counters,
        and faults); degrades to the scalar loop when ``slow_reference``
        is set or the fault plane is armed.
        """
        vas = np.asarray(virtual_addresses, dtype=np.int64)
        if slow_reference or self._dram.fault_plane_armed:
            return [
                self.load(cr3, int(va), length, pid=pid, user=user) for va in vas
            ]
        physical = self.translate_many(cr3, vas, pid=pid, write=False, user=user)
        try:
            return self._dram.read_many(physical, length)
        except AddressError:
            # read_many's scalar fallback raised at the first out-of-range
            # element (after counting the prior reads, like a scalar loop);
            # re-identify it to name the faulting virtual address.
            total = self._dram.geometry.total_bytes
            bad = int(
                np.flatnonzero((physical < 0) | (physical + length > total))[0]
            )
            raise PageFaultError(
                f"bus error reading PA {int(physical[bad]):#x}", int(vas[bad])
            ) from None

    def store_many(
        self,
        cr3: int,
        virtual_addresses: "np.ndarray | List[int]",
        data: "List[bytes] | bytes",
        pid: int = 0,
        user: bool = True,
        slow_reference: bool = False,
    ) -> None:
        """Batched :meth:`store`: one translation pass, then row writes.

        ``data`` is either one payload per address or a single payload
        written at every address. The batch must target data pages only —
        a store that rewrites a page table consulted by a *later* address
        in the same batch would diverge from the scalar loop, which
        re-walks after every store. Degrades to the scalar loop when
        ``slow_reference`` is set or the fault plane is armed.
        """
        vas = np.asarray(virtual_addresses, dtype=np.int64)
        payloads: List[bytes]
        if isinstance(data, (bytes, bytearray)):
            payloads = [bytes(data)] * int(vas.size)
        else:
            payloads = list(data)
        if slow_reference or self._dram.fault_plane_armed:
            for i in range(int(vas.size)):
                self.store(cr3, int(vas[i]), payloads[i], pid=pid, user=user)
            return
        physical = self.translate_many(cr3, vas, pid=pid, write=True, user=user)
        for i in range(int(vas.size)):
            try:
                self._dram.write(int(physical[i]), payloads[i])
            except AddressError:
                raise PageFaultError(
                    f"bus error writing PA {int(physical[i]):#x}", int(vas[i])
                ) from None

    @staticmethod
    def _check_permissions(
        virtual_address: int, writable: bool, user_ok: bool, write: bool, user: bool
    ) -> None:
        if write and not writable:
            obs.inc("mmu.faults", kind="write_protect")
            raise PageFaultError(
                f"write to read-only VA {virtual_address:#x}", virtual_address
            )
        if user and not user_ok:
            obs.inc("mmu.faults", kind="privilege")
            raise PageFaultError(
                f"user access to supervisor VA {virtual_address:#x}", virtual_address
            )
