"""Translation lookaside buffer.

A small model of the TLB with explicit flushing. The hammer loop in
RowHammer attacks must flush translations so every access re-reads the
PTE from DRAM (Section 5, step (2)); the perf harness counts hits and
misses to model translation overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro import faults, obs
from repro.errors import ConfigurationError


class Tlb:
    """LRU TLB mapping (pid, virtual page number) -> cached translation."""

    def __init__(self, capacity: int = 1536):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], Tuple[int, bool, bool]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    @property
    def capacity(self) -> int:
        """Maximum cached translations."""
        return self._capacity

    def lookup(self, pid: int, vpn: int) -> Optional[Tuple[int, bool, bool]]:
        """Cached (pfn, writable, user) for a virtual page, if any."""
        key = (pid, vpn)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.inc("tlb.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.inc("tlb.hits")
        return entry

    def insert(self, pid: int, vpn: int, pfn: int, writable: bool, user: bool) -> None:
        """Cache a translation, evicting LRU when full."""
        key = (pid, vpn)
        self._entries[key] = (pfn, writable, user)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def flush(self) -> None:
        """Drop every cached translation (the attacker's clflush/remap)."""
        self._entries.clear()
        self.flushes += 1
        obs.inc("tlb.flushes", scope="full")

    def flush_pid(self, pid: int) -> None:
        """Drop one address space's translations (context switch)."""
        stale = [key for key in self._entries if key[0] == pid]
        for key in stale:
            del self._entries[key]
        self.flushes += 1
        obs.inc("tlb.flushes", scope="pid")

    def invalidate(self, pid: int, vpn: int) -> None:
        """Drop a single translation (invlpg).

        An armed ``tlb-stale`` fault suppresses the invalidation, leaving
        a stale translation cached (lost-IPI / missed-shootdown model).
        """
        if faults.get_plane().armed and faults.notify(
            "tlb.invalidate", tlb=self, pid=pid, vpn=vpn
        ):
            return
        self._entries.pop((pid, vpn), None)

    @property
    def size(self) -> int:
        """Currently cached translations."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since construction (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
