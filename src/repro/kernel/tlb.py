"""Translation lookaside buffer.

A small model of the TLB with explicit flushing. The hammer loop in
RowHammer attacks must flush translations so every access re-reads the
PTE from DRAM (Section 5, step (2)); the perf harness counts hits and
misses to model translation overhead.

Storage is a set of parallel numpy slot arrays (key -> slot dict plus
pid/vpn/pfn/flag/stamp columns) rather than an ``OrderedDict``: recency
is a monotonic access stamp per slot, so LRU eviction is an ``argmin``
over the stamp column and the batched MMU pipeline can probe many VPNs
against the columns in one vectorized pass. The scalar ``lookup`` /
``insert`` / ``flush`` semantics (and their obs counters) are unchanged
from the OrderedDict implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro.errors import ConfigurationError

_FLAG_WRITABLE = 1
_FLAG_USER = 2


class Tlb:
    """LRU TLB mapping (pid, virtual page number) -> cached translation."""

    def __init__(self, capacity: int = 1536):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self._capacity = capacity
        self._slot_of: Dict[Tuple[int, int], int] = {}
        self._key_of: List[Optional[Tuple[int, int]]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._pids = np.zeros(capacity, dtype=np.int64)
        self._vpns = np.zeros(capacity, dtype=np.int64)
        self._pfns = np.zeros(capacity, dtype=np.int64)
        self._flag_bits = np.zeros(capacity, dtype=np.uint8)
        # Access stamp per slot; -1 marks an empty slot. Eviction picks the
        # occupied slot with the smallest stamp (exact LRU).
        self._stamps = np.full(capacity, -1, dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum cached translations."""
        return self._capacity

    def lookup(self, pid: int, vpn: int) -> Optional[Tuple[int, bool, bool]]:
        """Cached (pfn, writable, user) for a virtual page, if any."""
        slot = self._slot_of.get((pid, vpn))
        if slot is None:
            self.misses += 1
            obs.inc("tlb.misses")
            return None
        self._clock += 1
        self._stamps[slot] = self._clock
        self.hits += 1
        obs.inc("tlb.hits")
        flag_bits = int(self._flag_bits[slot])
        return (
            int(self._pfns[slot]),
            bool(flag_bits & _FLAG_WRITABLE),
            bool(flag_bits & _FLAG_USER),
        )

    def insert(self, pid: int, vpn: int, pfn: int, writable: bool, user: bool) -> None:
        """Cache a translation, evicting LRU when full."""
        key = (pid, vpn)
        slot = self._slot_of.get(key)
        if slot is None:
            slot = self._allocate_slot()
            self._slot_of[key] = slot
            self._key_of[slot] = key
        self._pids[slot] = pid
        self._vpns[slot] = vpn
        self._pfns[slot] = pfn
        self._flag_bits[slot] = (_FLAG_WRITABLE if writable else 0) | (
            _FLAG_USER if user else 0
        )
        self._clock += 1
        self._stamps[slot] = self._clock

    def flush(self) -> None:
        """Drop every cached translation (the attacker's clflush/remap)."""
        self._slot_of.clear()
        self._key_of = [None] * self._capacity
        self._free = list(range(self._capacity - 1, -1, -1))
        self._stamps[:] = -1
        self.flushes += 1
        obs.inc("tlb.flushes", scope="full")

    def flush_pid(self, pid: int) -> None:
        """Drop one address space's translations (context switch)."""
        stale = [key for key in self._slot_of if key[0] == pid]
        for key in stale:
            self._drop(key)
        self.flushes += 1
        obs.inc("tlb.flushes", scope="pid")

    def invalidate(self, pid: int, vpn: int) -> None:
        """Drop a single translation (invlpg).

        An armed ``tlb-stale`` fault suppresses the invalidation, leaving
        a stale translation cached (lost-IPI / missed-shootdown model).
        """
        if faults.get_plane().armed and faults.notify(
            "tlb.invalidate", tlb=self, pid=pid, vpn=vpn
        ):
            return
        if (pid, vpn) in self._slot_of:
            self._drop((pid, vpn))

    # -- batched pipeline support ------------------------------------------
    def probe_many(
        self, pid: int, vpns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Side-effect-free vectorized probe of many VPNs for one pid.

        Returns ``(found, pfn, writable, user)`` arrays aligned with
        ``vpns``. No counters, stamps, or obs metrics move: the batched
        MMU pipeline replays per-access hit/miss accounting itself in
        access order at commit time.
        """
        vpns = np.asarray(vpns, dtype=np.int64)
        found = np.zeros(vpns.size, dtype=bool)
        pfn = np.zeros(vpns.size, dtype=np.int64)
        writable = np.zeros(vpns.size, dtype=bool)
        user = np.zeros(vpns.size, dtype=bool)
        if vpns.size == 0 or not self._slot_of:
            return found, pfn, writable, user
        slots = np.flatnonzero((self._stamps >= 0) & (self._pids == pid))
        if slots.size == 0:
            return found, pfn, writable, user
        order = np.argsort(self._vpns[slots])
        slots = slots[order]
        cached_vpns = self._vpns[slots]
        pos = np.minimum(
            np.searchsorted(cached_vpns, vpns), cached_vpns.size - 1
        )
        found[:] = cached_vpns[pos] == vpns
        hit_slots = slots[pos]
        pfn[found] = self._pfns[hit_slots[found]]
        flag_bits = self._flag_bits[hit_slots[found]]
        writable[found] = (flag_bits & _FLAG_WRITABLE) != 0
        user[found] = (flag_bits & _FLAG_USER) != 0
        return found, pfn, writable, user

    def commit_many(
        self,
        pid: int,
        vpns: np.ndarray,
        new_vpns: np.ndarray,
        new_pfns: np.ndarray,
        new_writable: np.ndarray,
        new_user: np.ndarray,
    ) -> None:
        """Apply an eviction-free batch of accesses in one vectorized pass.

        ``vpns`` is every access in order (hits and first-occurrence
        misses interleaved); ``new_*`` are the distinct translations to
        insert. Slots come off the free list — the caller must have
        checked ``size + len(new_vpns) <= capacity`` so no eviction can
        occur — and every access re-stamps its slot in access order, so
        the final LRU order is identical to a scalar lookup/insert loop.
        Counters and obs metrics are not touched: the batched MMU commit
        applies the aggregate hit/miss accounting itself.
        """
        vpns = np.asarray(vpns, dtype=np.int64)
        new_vpns = np.asarray(new_vpns, dtype=np.int64)
        if new_vpns.size:
            new_pfns = np.asarray(new_pfns, dtype=np.int64)
            new_writable = np.asarray(new_writable, dtype=bool)
            new_user = np.asarray(new_user, dtype=bool)
            slots = np.array(
                [self._free.pop() for _ in range(new_vpns.size)], dtype=np.int64
            )
            self._pids[slots] = pid
            self._vpns[slots] = new_vpns
            self._pfns[slots] = new_pfns
            self._flag_bits[slots] = (
                np.where(new_writable, _FLAG_WRITABLE, 0)
                | np.where(new_user, _FLAG_USER, 0)
            ).astype(np.uint8)
            # Provisional stamp marks the slots occupied; the access pass
            # below overwrites it (every new key is also an access).
            self._stamps[slots] = self._clock
            # tolist() once, then plain-int dict inserts — per-element
            # numpy scalar extraction dominated this loop at large batches.
            slot_of = self._slot_of
            key_of = self._key_of
            for slot, vpn in zip(slots.tolist(), new_vpns.tolist()):
                key = (pid, vpn)
                slot_of[key] = slot
                key_of[slot] = key
        if vpns.size == 0:
            return
        occupied = np.flatnonzero((self._stamps >= 0) & (self._pids == pid))
        order = np.argsort(self._vpns[occupied])
        occupied = occupied[order]
        pos = np.searchsorted(self._vpns[occupied], vpns)
        slot_per_access = occupied[pos]
        # Fancy assignment applies in order: a slot's final stamp is its
        # last access position, matching the scalar loop.
        self._stamps[slot_per_access] = self._clock + 1 + np.arange(
            vpns.size, dtype=np.int64
        )
        self._clock += vpns.size

    # -- internals ----------------------------------------------------------
    def _allocate_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = int(np.argmin(self._stamps))
        old_key = self._key_of[slot]
        if old_key is not None:
            del self._slot_of[old_key]
        self.evictions += 1
        obs.inc("tlb.evictions")
        return slot

    def _drop(self, key: Tuple[int, int]) -> None:
        slot = self._slot_of.pop(key)
        self._key_of[slot] = None
        self._stamps[slot] = -1
        self._free.append(slot)

    @property
    def size(self) -> int:
        """Currently cached translations."""
        return len(self._slot_of)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since construction (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
