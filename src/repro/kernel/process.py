"""Processes, virtual memory areas, and file mappings.

Only the pieces the attacks and perf harness need: a per-process 4-level
page-table tree rooted at ``cr3``, ``mmap`` of anonymous memory or shared
files, and demand paging (frames and last-level PTEs materialise on first
touch, which is what makes page-table *spraying* work — each densely
touched 2 MiB region costs one page-table page).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ProcessError
from repro.units import PAGE_SHIFT, PAGE_SIZE


@dataclass
class MappedFile:
    """A file whose pages can be mapped into many VMAs simultaneously.

    ``frames`` maps file-page-index -> pfn once a page has been faulted in
    anywhere; later faults on any mapping of the same file reuse the frame.
    This sharing is exactly the spray trick of Figure 3: one small file,
    thousands of virtual mappings, page tables everywhere.
    """

    file_id: int
    size_bytes: int
    frames: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % PAGE_SIZE:
            raise ProcessError("file size must be a positive multiple of PAGE_SIZE")

    @property
    def num_pages(self) -> int:
        """File length in pages."""
        return self.size_bytes // PAGE_SIZE


@dataclass
class VmArea:
    """One contiguous virtual mapping."""

    start: int
    end: int  # exclusive
    writable: bool = True
    user: bool = True
    #: Shared file backing (None = anonymous).
    backing: Optional[MappedFile] = None
    #: Offset into the backing file, in pages.
    file_page_offset: int = 0

    def __post_init__(self) -> None:
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise ProcessError("VMA bounds must be page aligned")
        if self.end <= self.start:
            raise ProcessError(f"empty VMA [{self.start:#x}, {self.end:#x})")

    @property
    def num_pages(self) -> int:
        """Pages spanned."""
        return (self.end - self.start) // PAGE_SIZE

    def contains(self, virtual_address: int) -> bool:
        """Whether the VA falls inside this area."""
        return self.start <= virtual_address < self.end

    def file_page_for(self, virtual_address: int) -> int:
        """Backing-file page index for a VA (file-backed VMAs only)."""
        if self.backing is None:
            raise ProcessError("anonymous VMA has no file pages")
        return self.file_page_offset + ((virtual_address - self.start) >> PAGE_SHIFT)


#: Default base for mmap placement.
MMAP_BASE = 0x0000_2000_0000

#: Model ceiling for user VAs (half the 48-bit canonical space).
USER_VA_LIMIT = 1 << 47


class Process:
    """A user process: an address space plus bookkeeping.

    Page-table construction and faults are handled by the owning
    :class:`~repro.kernel.kernel.Kernel`; the process object only tracks
    VMAs and the CR3 root.
    """

    def __init__(self, pid: int, cr3: int, trusted: bool = False):
        self.pid = pid
        #: Physical address of the PML4 page.
        self.cr3 = cr3
        #: Trusted processes may receive low-indicator-zero pages under the
        #: Section 5 hardening; attackers are untrusted.
        self.trusted = trusted
        self._vmas: List[VmArea] = []
        self._mmap_cursor = MMAP_BASE

    @property
    def vmas(self) -> List[VmArea]:
        """Current mappings, ascending by start."""
        return sorted(self._vmas, key=lambda v: v.start)

    def find_vma(self, virtual_address: int) -> Optional[VmArea]:
        """The VMA containing ``virtual_address``, if any."""
        for vma in self._vmas:
            if vma.contains(virtual_address):
                return vma
        return None

    def add_vma(self, vma: VmArea) -> VmArea:
        """Insert a mapping, rejecting overlaps."""
        for existing in self._vmas:
            if vma.start < existing.end and existing.start < vma.end:
                raise ProcessError(
                    f"VMA [{vma.start:#x}, {vma.end:#x}) overlaps "
                    f"[{existing.start:#x}, {existing.end:#x})"
                )
        self._vmas.append(vma)
        return vma

    def remove_vma(self, vma: VmArea) -> None:
        """Drop a mapping (pages are torn down by the kernel)."""
        try:
            self._vmas.remove(vma)
        except ValueError:
            raise ProcessError("VMA not mapped in this process") from None

    def reserve_va_range(self, length: int) -> int:
        """Pick the next free mmap address for a ``length``-byte mapping."""
        if length <= 0 or length % PAGE_SIZE:
            raise ProcessError("mmap length must be a positive multiple of PAGE_SIZE")
        start = self._mmap_cursor
        if start + length > USER_VA_LIMIT:
            raise ProcessError("out of user virtual address space")
        self._mmap_cursor = start + length
        return start

    @property
    def mapped_bytes(self) -> int:
        """Total bytes currently mapped."""
        return sum(v.end - v.start for v in self._vmas)
