"""Physical memory zones and zonelists.

Models the zoned physical address space of Section 6.1 (Figure 6): x86-64
splits memory into ``ZONE_DMA`` (first 16 MiB), ``ZONE_DMA32`` (to 4 GiB)
and ``ZONE_NORMAL`` (the rest); 32-bit x86 uses DMA / NORMAL / HIGHMEM.
The paper's patch carves a new ``ZONE_PTP`` out of the top of the highest
zone — the region above the *low water mark* — and gives it its own buddy
allocator and a no-fallback policy.

``ZONE_PTP`` may be subdivided into true-cell sub-zones (``ZONE_TC``) with
anti-cell gaps marked invalid (Figure 8); that subdivision lives in
:mod:`repro.kernel.cta`, which produces the sub-zone ranges this module
represents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.kernel.gfp import GfpFlags
from repro.units import GIB, MIB, PAGE_SIZE


class ZoneId(enum.Enum):
    """Zone identities; PTP is the paper's addition."""

    DMA = "ZONE_DMA"
    DMA32 = "ZONE_DMA32"
    NORMAL = "ZONE_NORMAL"
    HIGHMEM = "ZONE_HIGHMEM"
    PTP = "ZONE_PTP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MemoryZone:
    """A contiguous physical page-frame range managed as one zone.

    ``sub_label`` distinguishes multiple ranges of the same zone id, e.g.
    the true-cell sub-zones ``ZONE_TC0``, ``ZONE_TC1`` inside ``ZONE_PTP``,
    or per-page-table-level PTP zones (Section 7).
    """

    zone_id: ZoneId
    start_pfn: int
    end_pfn: int  # exclusive
    sub_label: str = ""
    #: Page-table level this (sub-)zone serves, 0 = any level (single-zone
    #: CTA), 1..4 = dedicated level in the multi-level scheme of Section 7.
    pt_level: int = 0

    def __post_init__(self) -> None:
        if self.start_pfn < 0 or self.end_pfn <= self.start_pfn:
            raise ConfigurationError(
                f"invalid pfn range [{self.start_pfn}, {self.end_pfn})"
            )

    @property
    def num_pages(self) -> int:
        """Page frames in the zone."""
        return self.end_pfn - self.start_pfn

    @property
    def num_bytes(self) -> int:
        """Zone size in bytes."""
        return self.num_pages * PAGE_SIZE

    @property
    def name(self) -> str:
        """Display name, e.g. ``ZONE_PTP/ZONE_TC1``."""
        if self.sub_label:
            return f"{self.zone_id.value}/{self.sub_label}"
        return self.zone_id.value

    def contains_pfn(self, pfn: int) -> bool:
        """Whether ``pfn`` lies in this zone."""
        return self.start_pfn <= pfn < self.end_pfn

    def overlaps(self, other: "MemoryZone") -> bool:
        """Whether two zones share any page frame."""
        return self.start_pfn < other.end_pfn and other.start_pfn < self.end_pfn


class ZoneLayout:
    """An ordered set of non-overlapping zones plus fallback zonelists.

    The *zonelist* is the fallback search order the buddy allocator walks
    when the preferred zone is exhausted (Section 6.1): on x86-64,
    NORMAL -> DMA32 -> DMA. ``ZONE_PTP`` never appears in any ordinary
    zonelist, and PTP requests use a zonelist containing only the PTP
    (sub-)zones — the two halves of Rule 1 / Rule 2 enforcement.
    """

    def __init__(self, zones: Sequence[MemoryZone], total_pages: int):
        if not zones:
            raise ConfigurationError("a layout needs at least one zone")
        ordered = sorted(zones, key=lambda z: z.start_pfn)
        for first, second in zip(ordered, ordered[1:]):
            if first.overlaps(second):
                raise ConfigurationError(f"zones {first.name} and {second.name} overlap")
        for zone in ordered:
            if zone.end_pfn > total_pages:
                raise ConfigurationError(
                    f"zone {zone.name} extends past physical memory ({total_pages} pages)"
                )
        self._zones: Tuple[MemoryZone, ...] = tuple(ordered)
        self._total_pages = total_pages

    # -- construction -----------------------------------------------------
    @classmethod
    def x86_64(
        cls,
        total_bytes: int,
        ptp_bytes: int = 0,
        ptp_subzones: Optional[Sequence[MemoryZone]] = None,
    ) -> "ZoneLayout":
        """The 64-bit layout of Figure 6b, optionally with ``ZONE_PTP``.

        ``ZONE_PTP`` (when ``ptp_bytes`` > 0) occupies the highest physical
        addresses; the zone below it shrinks accordingly. For scaled-down
        simulations smaller than the architectural 16 MiB / 4 GiB cut
        points, the cut points scale proportionally (1/512 and 1/2 of the
        module) so every zone still exists and the fallback logic is
        exercised.

        ``ptp_subzones`` replaces the single PTP range with explicit
        sub-zones (the CTA true-cell sub-zones); they must all lie above
        the low water mark.
        """
        total_pages = total_bytes // PAGE_SIZE
        if total_pages <= 0 or total_bytes % PAGE_SIZE:
            raise ConfigurationError("total_bytes must be a positive multiple of PAGE_SIZE")
        if ptp_bytes % PAGE_SIZE:
            raise ConfigurationError("ptp_bytes must be page aligned")
        ptp_pages = ptp_bytes // PAGE_SIZE
        if ptp_pages >= total_pages:
            raise ConfigurationError("ZONE_PTP cannot cover all of memory")

        dma_limit = min(16 * MIB, total_bytes // 512 or PAGE_SIZE) // PAGE_SIZE
        dma32_limit = min(4 * GIB, total_bytes // 2) // PAGE_SIZE
        dma_limit = max(dma_limit, 1)
        dma32_limit = max(dma32_limit, dma_limit + 1)
        low_water_pfn = total_pages - ptp_pages
        if dma32_limit >= low_water_pfn:
            dma32_limit = max(dma_limit + 1, low_water_pfn - 1)

        zones = [MemoryZone(ZoneId.DMA, 0, dma_limit)]
        if dma32_limit > dma_limit:
            zones.append(MemoryZone(ZoneId.DMA32, dma_limit, dma32_limit))
        if low_water_pfn > dma32_limit:
            zones.append(MemoryZone(ZoneId.NORMAL, dma32_limit, low_water_pfn))
        if ptp_pages:
            if ptp_subzones is not None:
                for sub in ptp_subzones:
                    if sub.zone_id is not ZoneId.PTP:
                        raise ConfigurationError(f"sub-zone {sub.name} is not a PTP zone")
                    if sub.start_pfn < low_water_pfn:
                        raise ConfigurationError(
                            f"sub-zone {sub.name} dips below the low water mark "
                            f"(pfn {low_water_pfn})"
                        )
                zones.extend(ptp_subzones)
            else:
                zones.append(MemoryZone(ZoneId.PTP, low_water_pfn, total_pages))
        return cls(zones, total_pages)

    @classmethod
    def x86_32(cls, total_bytes: int, ptp_bytes: int = 0) -> "ZoneLayout":
        """The 32-bit layout of Figure 6a: DMA / NORMAL / HIGHMEM (+PTP)."""
        total_pages = total_bytes // PAGE_SIZE
        if total_pages <= 0 or total_bytes % PAGE_SIZE:
            raise ConfigurationError("total_bytes must be a positive multiple of PAGE_SIZE")
        ptp_pages = ptp_bytes // PAGE_SIZE
        dma_limit = min(16 * MIB, total_bytes // 512 or PAGE_SIZE) // PAGE_SIZE
        normal_limit = min(896 * MIB, total_bytes * 7 // 8) // PAGE_SIZE
        dma_limit = max(dma_limit, 1)
        normal_limit = max(normal_limit, dma_limit + 1)
        low_water_pfn = total_pages - ptp_pages
        if normal_limit >= low_water_pfn:
            normal_limit = max(dma_limit + 1, low_water_pfn - 1)
        zones = [MemoryZone(ZoneId.DMA, 0, dma_limit)]
        if normal_limit > dma_limit:
            zones.append(MemoryZone(ZoneId.NORMAL, dma_limit, normal_limit))
        if low_water_pfn > normal_limit:
            zones.append(MemoryZone(ZoneId.HIGHMEM, normal_limit, low_water_pfn))
        if ptp_pages:
            zones.append(MemoryZone(ZoneId.PTP, low_water_pfn, total_pages))
        return cls(zones, total_pages)

    # -- queries -----------------------------------------------------------
    @property
    def zones(self) -> Tuple[MemoryZone, ...]:
        """All zones, ascending by start pfn."""
        return self._zones

    @property
    def total_pages(self) -> int:
        """Page frames covered by physical memory."""
        return self._total_pages

    @property
    def has_ptp(self) -> bool:
        """Whether the layout includes a ZONE_PTP."""
        return any(z.zone_id is ZoneId.PTP for z in self._zones)

    @property
    def low_water_mark_pfn(self) -> Optional[int]:
        """First pfn of the PTP region — the paper's low water mark."""
        ptp = [z for z in self._zones if z.zone_id is ZoneId.PTP]
        if not ptp:
            return None
        return min(z.start_pfn for z in ptp)

    def zones_of(self, zone_id: ZoneId) -> List[MemoryZone]:
        """All (sub-)zones with the given id, ascending."""
        return [z for z in self._zones if z.zone_id is zone_id]

    def ptp_zones(self, pt_level: int = 0) -> List[MemoryZone]:
        """PTP sub-zones serving page-table level ``pt_level``.

        Level 0 returns every PTP zone usable for any level; a specific
        level returns zones dedicated to it plus any-level zones.
        """
        zones = self.zones_of(ZoneId.PTP)
        if pt_level == 0:
            return zones
        return [z for z in zones if z.pt_level in (0, pt_level)]

    def zone_of_pfn(self, pfn: int) -> Optional[MemoryZone]:
        """The zone containing ``pfn`` (None for holes, e.g. anti-cell gaps)."""
        for zone in self._zones:
            if zone.contains_pfn(pfn):
                return zone
        return None

    def is_above_low_water_mark(self, pfn: int) -> bool:
        """Whether ``pfn`` lies at or above the low water mark."""
        mark = self.low_water_mark_pfn
        return mark is not None and pfn >= mark

    def zonelist_for(self, flags: GfpFlags, pt_level: int = 0) -> List[MemoryZone]:
        """Fallback-ordered zones for an allocation request.

        - ``__GFP_PTP`` requests get the PTP sub-zones only, highest
          addresses first (and, with multi-level zones, only the requested
          level) — fallback to ordinary zones is forbidden (Rule 1).
        - Ordinary requests walk NORMAL/HIGHMEM -> DMA32 -> DMA and never
          see ZONE_PTP (Rule 2).
        """
        if flags.is_ptp_request:
            return sorted(self.ptp_zones(pt_level), key=lambda z: -z.start_pfn)
        preferred: List[ZoneId]
        if flags & GfpFlags.DMA:
            preferred = [ZoneId.DMA]
        elif flags & GfpFlags.DMA32:
            preferred = [ZoneId.DMA32, ZoneId.DMA]
        else:
            preferred = [ZoneId.HIGHMEM, ZoneId.NORMAL, ZoneId.DMA32, ZoneId.DMA]
        result: List[MemoryZone] = []
        for zone_id in preferred:
            result.extend(sorted(self.zones_of(zone_id), key=lambda z: -z.start_pfn))
        return result
