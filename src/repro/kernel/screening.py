"""Page-size-bit screening for huge-page deployments (paper Section 7).

With multiple page sizes, high-level PTEs can point at user data (PS=1
huge leaves). A RowHammer ``1 -> 0`` flip of the **page-size bit** —
which *is* in the valid true-cell direction — turns a huge-page leaf
into a table pointer, reinterpreting attacker-controlled data as a page
table: instant compromise.

The paper's mitigation: "perform system-level tests to screen out any
'exploitable' physical addresses and prevent the system from using them
to map high-level PTs. This is possible because, for each PTP zone, we
know the exact bit locations that will correspond to the page size bit
in all PTEs."

:func:`screen_ps_vulnerable_frames` runs that test against the module's
vulnerable-bit map (obtained by the same hammering survey a deployment
would run) and returns the frames a CTA kernel must not use for level>=2
page tables; :meth:`Kernel.set_screened_ptp_frames` installs the list.
"""

from __future__ import annotations

from typing import List, Set

from repro.dram.rowhammer import RowHammerModel
from repro.kernel.kernel import Kernel
from repro.units import PAGE_SIZE, PAGE_SHIFT, PTE_SIZE

#: Bit index of the PS flag within a 64-bit PTE.
PS_BIT_IN_PTE = 7


def ps_bit_positions_in_page() -> List[int]:
    """Page-relative bit positions that hold a PS bit in some PTE slot."""
    return [slot * PTE_SIZE * 8 + PS_BIT_IN_PTE for slot in range(PAGE_SIZE // PTE_SIZE)]


def frame_has_vulnerable_ps_bit(hammer: RowHammerModel, pfn: int) -> bool:
    """Whether any PTE slot of frame ``pfn`` has a flippable PS bit.

    Only ``1 -> 0`` vulnerability matters: that is the direction that
    converts a huge-page leaf into a table pointer (the ``0 -> 1``
    direction would merely truncate a walk, a crash not an escalation).
    """
    geometry = hammer.module.geometry
    frame_base = pfn << PAGE_SHIFT
    row = geometry.row_of_address(frame_base)
    row_base = geometry.row_base_address(row)
    frame_bit_offset = (frame_base - row_base) * 8
    wanted = {frame_bit_offset + position for position in ps_bit_positions_in_page()}
    for vulnerable in hammer.vulnerable_bits(row):
        if (
            vulnerable.bit_position in wanted
            and (vulnerable.from_value, vulnerable.to_value) == (1, 0)
        ):
            return True
    return False


def screen_ps_vulnerable_frames(kernel: Kernel, hammer: RowHammerModel) -> Set[int]:
    """Survey every PTP-zone frame; return those unusable for high-level PTs.

    The survey covers the frames of every PTP (sub-)zone — the only
    places level >= 2 tables can live under CTA — and flags frames where
    a hammering campaign could clear some PTE slot's PS bit.
    """
    from repro.kernel.zones import ZoneId

    screened: Set[int] = set()
    for zone in kernel.layout.zones_of(ZoneId.PTP):
        for pfn in range(zone.start_pfn, zone.end_pfn):
            if frame_has_vulnerable_ps_bit(hammer, pfn):
                screened.add(pfn)
    return screened


def install_ps_screening(kernel: Kernel, hammer: RowHammerModel) -> Set[int]:
    """Run the survey and install the result on the kernel."""
    screened = screen_ps_vulnerable_frames(kernel, hammer)
    kernel.set_screened_ptp_frames(screened)
    return screened
