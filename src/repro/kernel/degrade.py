"""Graceful degradation when ZONE_PTP runs dry.

CTA's Rule 1 says a page-table allocation may *never* fall back to an
ordinary zone — that is the defense. But a production deployment must
still decide what happens when ZONE_PTP is exhausted and reclaim finds
nothing: today's behavior is to fail the allocation (the paper's answer,
and still the default), yet an operator may prefer availability over the
full security guarantee. This module defines the policy knob and the
*screened fallback* path: a CATT-style compromise that serves the page
table from an ordinary zone, but only from a true-cell row whose physical
neighborhood holds no untrusted data, and records the frame as an explicit
**security downgrade** so sanitizers, ``verify_cta_rules`` and the
``kernel.security_downgrades`` metric all account for it rather than
silently weakening the invariant.

Policies (``KernelConfig.ptp_exhaustion_policy``):

``fail-hard``
    Rule 1 verbatim: one reclaim pass, then :class:`CapacityError`.
``reclaim-retry``
    Several reclaim passes before giving up (kswapd pressure loop); still
    never falls back — only the failure point moves.
``screened-fallback``
    After reclaim fails, allocate below the low water mark through
    :func:`screened_fallback_alloc`; every such frame is a counted
    downgrade.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Union

from repro.dram.cells import CellType
from repro.errors import CapacityError, ConfigurationError, OutOfMemoryError
from repro.kernel.gfp import GFP_KERNEL
from repro.kernel.page import PageUse
from repro.units import PAGE_SHIFT

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

#: Reclaim passes attempted under ``reclaim-retry`` before giving up.
RECLAIM_RETRY_ROUNDS = 4


class ExhaustionPolicy(enum.Enum):
    """What ``pte_alloc_one`` does when ZONE_PTP is exhausted."""

    FAIL_HARD = "fail-hard"
    RECLAIM_RETRY = "reclaim-retry"
    SCREENED_FALLBACK = "screened-fallback"

    @classmethod
    def coerce(cls, value: Union[str, "ExhaustionPolicy"]) -> "ExhaustionPolicy":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(policy.value for policy in cls)
            raise ConfigurationError(
                f"unknown ZONE_PTP exhaustion policy {value!r} (choose from {choices})"
            ) from None


def frame_is_screened_safe(kernel: "Kernel", pfn: int) -> bool:
    """CATT-style screen for a fallback page-table frame below the mark.

    A frame qualifies only when (a) its row is true-cells, so stored PTE
    pointers keep the monotonic 1->0 failure mode, and (b) neither its own
    row nor any physically adjacent row holds data an untrusted process
    can hammer from (USER_DATA / FILE_CACHE owned by an untrusted pid).
    """
    module = kernel.module
    cell_map = module.cell_map
    geometry = module.geometry
    row = geometry.row_of_address(pfn << PAGE_SHIFT)
    if cell_map is None or cell_map.type_of_row(row) is not CellType.TRUE:
        return False
    pages_per_row = geometry.row_bytes >> PAGE_SHIFT
    page_db = kernel.page_db
    processes = kernel.processes
    for candidate_row in (row, *geometry.neighbors(row)):
        base_pfn = (candidate_row * geometry.row_bytes) >> PAGE_SHIFT
        for neighbor_pfn in range(base_pfn, base_pfn + pages_per_row):
            if neighbor_pfn == pfn or neighbor_pfn >= page_db.total_pages:
                continue
            frame = page_db.frame(neighbor_pfn)
            if frame.use not in (PageUse.USER_DATA, PageUse.FILE_CACHE):
                continue
            owner = processes.get(frame.owner_pid) if frame.owner_pid else None
            if owner is None or not owner.trusted:
                return False
    return True


def screened_fallback_alloc(kernel: "Kernel", owner_pid: int, pt_level: int) -> int:
    """Serve a page table from an ordinary zone, screened and accounted.

    The allocation walks the normal kernel zonelist but rejects every
    frame failing :func:`frame_is_screened_safe`; the frame that survives
    is registered as a security downgrade before its ``kernel.page_alloc``
    event fires, so sanitizers see an *acknowledged* Rule 1 exception
    instead of a violation. Raises :class:`CapacityError` when no ordinary
    frame passes the screen either.
    """

    def screen(pfn: int) -> bool:
        return frame_is_screened_safe(kernel, pfn)

    try:
        return kernel.alloc_page(
            GFP_KERNEL,
            PageUse.PAGE_TABLE,
            owner_pid=owner_pid,
            pt_level=pt_level,
            frame_filter=screen,
            downgraded=True,
        )
    except OutOfMemoryError:
        raise CapacityError(
            "ZONE_PTP exhausted and no ordinary frame passed the "
            "screened-fallback neighborhood screen",
            zone="ZONE_PTP",
        ) from None
