"""Execute payloads: batched runner, step iterator, and slow reference.

Three execution surfaces share one semantics:

:func:`run`
    The production path. Lowers the program (if not already compiled)
    and drives the *batched* primitives — one
    :meth:`~repro.dram.rowhammer.RowHammerModel.hammer` call per burst,
    :meth:`~repro.dram.module.DramModule.read_many` /
    :meth:`~repro.kernel.kernel.Kernel.touch_many` /
    :meth:`~repro.dram.module.DramModule.write_many` per batch. Emits
    ``payload.*`` observability.

:func:`iter_steps`
    A generator over *pending* scalar operations for callers that need
    to interleave their own bookkeeping between accesses (the rewritten
    attacks). Performs no operation until the caller invokes
    :meth:`PendingBurst.perform` — and emits **no** payload
    observability, so an attack's obs stream is byte-identical to a
    hand-written loop.

:func:`slow_reference`
    An independent tree-walking interpreter over the *uncompiled* IR,
    with its own burst aggregation. It never touches the compiler, so
    agreement between :func:`run` and :func:`slow_reference` checks the
    whole lowering pipeline. It is a test oracle with an operation
    budget, not a production executor.

The equivalence contract: for any valid program, :func:`run` and
:func:`slow_reference` against identically-seeded worlds produce the
same flips, the same read bytes, the same observability snapshot, and
the same trace stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.errors import PayloadError
from repro.payload.compiler import (
    Burst,
    CompiledPayload,
    ReadBatch,
    WriteBatch,
    compile_program,
)
from repro.payload.ir import (
    Act,
    Loop,
    Nop,
    PayloadProgram,
    Pre,
    Read,
    RefreshAlign,
    Write,
    validate_program,
)

#: Primitive-operation budget for :func:`slow_reference`. It exists to
#: keep the oracle honest — a fuzz case that would take minutes fails
#: loudly instead. Bound loop counts in generated payloads accordingly.
SLOW_REFERENCE_OP_BUDGET = 200_000


@dataclass
class PayloadContext:
    """Everything a payload may touch. Missing pieces raise lazily.

    ``module`` defaults to ``hammer``'s module or ``kernel``'s module so
    most callers pass only the objects they already hold.
    """

    hammer: Optional[object] = None
    kernel: Optional[object] = None
    module: Optional[object] = None
    process: Optional[object] = None
    refresh: Optional[object] = None

    def __post_init__(self) -> None:
        if self.module is None and self.kernel is not None:
            self.module = getattr(self.kernel, "module", None)
        if self.module is None and self.hammer is not None:
            self.module = getattr(self.hammer, "module", None)

    def require(self, name: str, why: str) -> Any:
        value = getattr(self, name)
        if value is None:
            raise PayloadError(f"payload context lacks {name!r}: {why}")
        return value


@dataclass
class PayloadResult:
    """What one execution did, for reports and differential assertions."""

    name: str
    digest: str
    bursts: int = 0
    activations: int = 0
    reads: int = 0
    writes: int = 0
    nop_cycles: int = 0
    flips_induced: int = 0
    outcomes: List[object] = field(default_factory=list)
    _read_hash: object = field(
        default_factory=hashlib.sha256, repr=False, compare=False
    )

    @property
    def read_digest(self) -> str:
        """Digest over all bytes/PFNs read, for data-equality checks."""
        return self._read_hash.hexdigest()[:16]

    def _absorb_bytes(self, data: bytes) -> None:
        self._read_hash.update(data)

    def _absorb_int(self, value: int) -> None:
        self._read_hash.update(value.to_bytes(8, "little", signed=False))


# -- pending scalar steps (the attack-facing surface) -----------------------
@dataclass
class PendingBurst:
    """One hammer call, not yet performed."""

    row: int
    activations: int
    _ctx: PayloadContext

    def perform(self) -> Any:
        hammer = self._ctx.require("hammer", "a burst needs a RowHammerModel")
        return hammer.hammer(self.row, activations=self.activations)


@dataclass
class PendingRead:
    """One read (physical) or demand-fault touch (virtual), not yet performed."""

    space: str
    address: int
    length: int
    write: bool
    _ctx: PayloadContext

    def perform(self) -> Any:
        if self.space == "physical":
            module = self._ctx.require("module", "a physical read needs a DramModule")
            return module.read(self.address, self.length)
        kernel = self._ctx.require("kernel", "a virtual read needs a Kernel")
        process = self._ctx.require("process", "a virtual read needs a process")
        return kernel.touch(process, self.address, write=self.write)


@dataclass
class PendingWrite:
    """One physical write, not yet performed."""

    address: int
    data: bytes
    _ctx: PayloadContext

    def perform(self) -> None:
        module = self._ctx.require("module", "a write needs a DramModule")
        module.write(self.address, self.data)


PendingStep = Union[PendingBurst, PendingRead, PendingWrite]


def iter_steps(
    compiled: CompiledPayload, ctx: PayloadContext
) -> Iterator[PendingStep]:
    """Yield pending scalar operations in program order.

    Bursts come through whole (one pending per hammer call); read and
    write batches are unrolled to one pending per address so callers can
    interleave bookkeeping at access granularity. Emits no payload
    observability — the caller owns the obs stream.
    """
    for step in compiled.steps:
        if isinstance(step, Burst):
            yield PendingBurst(step.row, step.activations, ctx)
        elif isinstance(step, ReadBatch):
            for address in step.addresses:
                yield PendingRead(step.space, address, step.length, step.write, ctx)
        elif isinstance(step, WriteBatch):
            for address in step.addresses:
                yield PendingWrite(address, step.data, ctx)
        else:  # pragma: no cover - compiler emits only the three kinds
            raise PayloadError(f"unknown compiled step {step!r}")


# -- refresh alignment ------------------------------------------------------
def align_refresh(ctx: PayloadContext, align: Optional[RefreshAlign]) -> None:
    """Advance the context's refresh scheduler to the requested phase.

    The target is the earliest time ``t >= now`` whose refresh-interval
    index satisfies ``index % modulus == phase``. A context without a
    scheduler ignores alignment (pure DRAM payloads, unit tests).
    """
    if align is None or ctx.refresh is None:
        return
    scheduler = ctx.refresh
    interval = scheduler.interval_s
    epoch = int(scheduler.now // interval)
    offset = (align.phase - epoch) % align.modulus
    if offset == 0 and scheduler.now % interval == 0:
        return
    if offset == 0:
        offset = align.modulus
    target = (epoch + offset) * interval
    scheduler.advance(target - scheduler.now)


# -- batched production executor --------------------------------------------
def run(
    payload: Union[PayloadProgram, CompiledPayload], ctx: PayloadContext
) -> PayloadResult:
    """Execute a payload through the batched primitives.

    Accepts either a program (compiled here, counted as a
    ``payload.compiles``) or a pre-compiled payload. Emits one
    ``payload.executions`` increment and one ``payload.execute`` trace
    event summarizing the run.
    """
    if isinstance(payload, CompiledPayload):
        compiled = payload
    else:
        compiled = compile_program(payload)
        obs.inc("payload.compiles")
    program = compiled.program
    result = PayloadResult(name=program.name, digest=program.digest())
    result.nop_cycles = compiled.nop_cycles
    align_refresh(ctx, program.refresh_align)
    for step in compiled.steps:
        if isinstance(step, Burst):
            hammer = ctx.require("hammer", "a burst needs a RowHammerModel")
            outcome = hammer.hammer(step.row, activations=step.activations)
            result.bursts += 1
            result.activations += step.activations
            result.flips_induced += outcome.flip_count
            result.outcomes.append(outcome)
        elif isinstance(step, ReadBatch):
            if step.space == "physical":
                module = ctx.require(
                    "module", "a physical read needs a DramModule"
                )
                for data in module.read_many(list(step.addresses), step.length):
                    result._absorb_bytes(data)
            else:
                kernel = ctx.require("kernel", "a virtual read needs a Kernel")
                process = ctx.require("process", "a virtual read needs a process")
                for pfn in kernel.touch_many(
                    process, list(step.addresses), write=step.write
                ):
                    result._absorb_int(int(pfn))
            result.reads += len(step.addresses)
        else:
            module = ctx.require("module", "a write needs a DramModule")
            module.write_many(list(step.addresses), step.data)
            result.writes += len(step.addresses)
    obs.inc("payload.executions")
    obs.trace(
        "payload.execute",
        payload=program.name,
        digest=result.digest,
        bursts=result.bursts,
        activations=result.activations,
        reads=result.reads,
        writes=result.writes,
        flips=result.flips_induced,
    )
    return result


# -- slow reference interpreter ---------------------------------------------
class _Interpreter:
    """Tree-walking reference executor with its own burst aggregation."""

    def __init__(self, program: PayloadProgram, ctx: PayloadContext) -> None:
        self.program = program
        self.ctx = ctx
        self.result = PayloadResult(name=program.name, digest=program.digest())
        self.pending_row = -1
        self.pending_acts = 0
        self.ops = 0

    def charge(self, count: int = 1) -> None:
        self.ops += count
        if self.ops > SLOW_REFERENCE_OP_BUDGET:
            raise PayloadError(
                f"slow_reference exceeded its {SLOW_REFERENCE_OP_BUDGET}-op "
                "budget; it is a test oracle — bound loop counts or use run()"
            )

    def flush(self) -> None:
        if not self.pending_acts:
            return
        hammer = self.ctx.require("hammer", "a burst needs a RowHammerModel")
        outcome = hammer.hammer(self.pending_row, activations=self.pending_acts)
        self.result.bursts += 1
        self.result.activations += self.pending_acts
        self.result.flips_induced += outcome.flip_count
        self.result.outcomes.append(outcome)
        self.pending_row, self.pending_acts = -1, 0

    def execute(self, body) -> None:
        for ins in body:
            self.charge()
            if isinstance(ins, Act):
                row = self.program.lists[ins.list].addresses[ins.index]
                if self.pending_acts and self.pending_row != row:
                    self.flush()
                self.pending_row = row
                self.pending_acts += 1
            elif isinstance(ins, Pre):
                pass  # transparent to burst aggregation
            elif isinstance(ins, Read):
                lst = self.program.lists[ins.list]
                if not lst.addresses:
                    continue  # empty access: no-op, burst stays open
                self.flush()
                self.charge(len(lst.addresses))
                for address in lst.addresses:
                    if lst.space == "physical":
                        module = self.ctx.require(
                            "module", "a physical read needs a DramModule"
                        )
                        self.result._absorb_bytes(module.read(address, ins.length))
                    else:
                        kernel = self.ctx.require(
                            "kernel", "a virtual read needs a Kernel"
                        )
                        process = self.ctx.require(
                            "process", "a virtual read needs a process"
                        )
                        pfn = kernel.touch(process, address, write=ins.write)
                        self.result._absorb_int(int(pfn))
                    self.result.reads += 1
            elif isinstance(ins, Write):
                lst = self.program.lists[ins.list]
                if not lst.addresses:
                    continue  # empty access: no-op, burst stays open
                self.flush()
                self.charge(len(lst.addresses))
                module = self.ctx.require("module", "a write needs a DramModule")
                for address in lst.addresses:
                    module.write(address, ins.pattern)
                    self.result.writes += 1
            elif isinstance(ins, Nop):
                self.result.nop_cycles += ins.cycles
            elif isinstance(ins, Loop):
                # Iterations charge through their body's instructions
                # (the validator rejects empty bodies, so no free spin).
                for _ in range(ins.count):
                    self.execute(ins.body)
            else:  # pragma: no cover - validator rejects unknown instructions
                raise PayloadError(f"unknown instruction {ins!r}")


def slow_reference(program: PayloadProgram, ctx: PayloadContext) -> PayloadResult:
    """Interpret ``program`` directly over the IR tree (test oracle).

    Emits the same ``payload.*`` observability as validate-compile-run
    via :func:`run`, so differential tests can compare whole registry
    snapshots without filtering.
    """
    validate_program(program)
    obs.inc("payload.compiles")
    interp = _Interpreter(program, ctx)
    align_refresh(ctx, program.refresh_align)
    interp.execute(program.body)
    interp.flush()
    result = interp.result
    obs.inc("payload.executions")
    obs.trace(
        "payload.execute",
        payload=program.name,
        digest=result.digest,
        bursts=result.bursts,
        activations=result.activations,
        reads=result.reads,
        writes=result.writes,
        flips=result.flips_induced,
    )
    return result
