"""Lower validated payload programs to flat batched steps.

The compiler turns the tree-shaped IR into a short list of three step
kinds that map 1:1 onto the batched primitives from the DRAM and MMU
layers:

``Burst(row, activations)``
    A maximal run of back-to-back activations of one row — one
    :meth:`~repro.dram.rowhammer.RowHammerModel.hammer` call with the
    run length as the ``activations`` argument. PRE and NOP are
    transparent to burst formation; an ACT of a *different* row or any
    READ/WRITE flushes the open burst.
``ReadBatch(space, addresses, length, write)``
    Consecutive reads over one space, merged across instructions —
    lowered to :meth:`~repro.dram.module.DramModule.read_many` or
    :meth:`~repro.kernel.kernel.Kernel.touch_many`.
``WriteBatch(addresses, data)``
    Consecutive writes of one pattern, lowered to
    :meth:`~repro.dram.module.DramModule.write_many`.

Loops whose body collapses to a single Burst are compiled by
multiplying the activation count — ``Loop(2_000_000, (ACT row, PRE))``
becomes ``Burst(row, 2_000_000)`` without unrolling. Any other loop is
unrolled with merging, guarded by :data:`MAX_COMPILED_STEPS` so a
pathological program fails fast instead of exhausting memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.errors import PayloadError
from repro.payload.ir import (
    Act,
    Instruction,
    Loop,
    Nop,
    PayloadProgram,
    Pre,
    Read,
    Write,
    validate_program,
)

#: Hard ceiling on the flattened step count after unrolling and merging.
MAX_COMPILED_STEPS = 65536

#: Ceiling on unrolled READ/WRITE accesses inside one loop (keeps a
#: pathological merge-into-one-batch loop from allocating unbounded tuples).
MAX_COMPILED_ACCESSES = 1 << 20


@dataclass(frozen=True)
class Burst:
    """``activations`` back-to-back activations of one row."""

    row: int
    activations: int


@dataclass(frozen=True)
class ReadBatch:
    """Ordered reads over one address space."""

    space: str  # "physical" or "virtual"
    addresses: Tuple[int, ...]
    length: int
    write: bool = False


@dataclass(frozen=True)
class WriteBatch:
    """Ordered writes of one pattern over physical addresses."""

    addresses: Tuple[int, ...]
    data: bytes


Step = Union[Burst, ReadBatch, WriteBatch]


@dataclass
class CompiledPayload:
    """The lowering result: flat steps plus symbolic accounting."""

    program: PayloadProgram
    steps: Tuple[Step, ...]
    nop_cycles: int = 0

    @property
    def total_activations(self) -> int:
        return sum(s.activations for s in self.steps if isinstance(s, Burst))

    @property
    def total_accesses(self) -> int:
        return sum(
            len(s.addresses)
            for s in self.steps
            if isinstance(s, (ReadBatch, WriteBatch))
        )


class _Lowering:
    """Mutable lowering state: step list plus the open burst, if any."""

    def __init__(self) -> None:
        self.steps: List[Step] = []
        self.open_row: int = -1
        self.open_acts: int = 0
        self.nop_cycles: int = 0

    def flush(self) -> None:
        if self.open_acts:
            self._push(Burst(self.open_row, self.open_acts))
            self.open_row, self.open_acts = -1, 0

    def act(self, row: int) -> None:
        if self.open_acts and self.open_row != row:
            self.flush()
        self.open_row = row
        self.open_acts += 1

    def read(self, space: str, addresses: Tuple[int, ...], length: int, write: bool) -> None:
        self.flush()
        last = self.steps[-1] if self.steps else None
        if (
            isinstance(last, ReadBatch)
            and last.space == space
            and last.length == length
            and last.write == write
        ):
            self.steps[-1] = ReadBatch(
                space, last.addresses + addresses, length, write
            )
        else:
            self._push(ReadBatch(space, addresses, length, write))

    def write(self, addresses: Tuple[int, ...], data: bytes) -> None:
        self.flush()
        last = self.steps[-1] if self.steps else None
        if isinstance(last, WriteBatch) and last.data == data:
            self.steps[-1] = WriteBatch(last.addresses + addresses, data)
        else:
            self._push(WriteBatch(addresses, data))

    def _push(self, step: Step) -> None:
        if len(self.steps) >= MAX_COMPILED_STEPS:
            raise PayloadError(
                f"compiled payload exceeds {MAX_COMPILED_STEPS} steps; "
                "restructure loops so iterations merge into bursts"
            )
        self.steps.append(step)


def compile_program(program: PayloadProgram) -> CompiledPayload:
    """Validate and lower ``program``; raises PayloadError on overflow."""
    validate_program(program)
    state = _Lowering()
    _lower_body(program, program.body, state)
    state.flush()
    return CompiledPayload(
        program=program, steps=tuple(state.steps), nop_cycles=state.nop_cycles
    )


def _lower_body(
    program: PayloadProgram, body: Tuple[Instruction, ...], state: _Lowering
) -> None:
    for ins in body:
        if isinstance(ins, Act):
            state.act(program.lists[ins.list].addresses[ins.index])
        elif isinstance(ins, Pre):
            pass  # transparent: bursts close on row change or access
        elif isinstance(ins, Read):
            lst = program.lists[ins.list]
            if lst.addresses:
                state.read(lst.space, lst.addresses, ins.length, ins.write)
        elif isinstance(ins, Write):
            lst = program.lists[ins.list]
            if lst.addresses:
                state.write(lst.addresses, ins.pattern)
        elif isinstance(ins, Nop):
            state.nop_cycles += ins.cycles
        elif isinstance(ins, Loop):
            _lower_loop(program, ins, state)
        else:  # pragma: no cover - validator rejects unknown instructions
            raise PayloadError(f"unknown instruction {ins!r}")


def _lower_loop(program: PayloadProgram, loop: Loop, state: _Lowering) -> None:
    if loop.count == 0:
        return
    # Lower one iteration into a scratch state to see what it produces.
    scratch = _Lowering()
    _lower_body(program, loop.body, scratch)
    body_nops = scratch.nop_cycles
    scratch.flush()

    if len(scratch.steps) == 1 and isinstance(scratch.steps[0], Burst):
        # The whole iteration is one burst of one row: multiply the
        # activation count instead of unrolling — the hammer_sweep fast
        # path. Merge with an already-open burst of the same row.
        burst = scratch.steps[0]
        if state.open_acts and state.open_row != burst.row:
            state.flush()
        state.open_row = burst.row
        state.open_acts += burst.activations * loop.count
        state.nop_cycles += body_nops * loop.count
        return

    # General case: unroll with merging. Fail fast on the iteration x
    # step product before allocating anything; _push enforces the same
    # budget authoritatively as steps accumulate.
    iter_accesses = sum(
        len(s.addresses)
        for s in scratch.steps
        if isinstance(s, (ReadBatch, WriteBatch))
    )
    if (
        loop.count * len(scratch.steps) > MAX_COMPILED_STEPS
        or loop.count * iter_accesses > MAX_COMPILED_ACCESSES
    ):
        raise PayloadError(
            f"loop of {loop.count} iterations x {len(scratch.steps)} steps "
            f"({iter_accesses} accesses) cannot fit the compile budget; "
            "restructure so iterations merge into bursts"
        )
    for _ in range(loop.count):
        _lower_body(program, loop.body, state)
