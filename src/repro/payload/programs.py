"""Stock payload builders: the programs the attacks and CLI execute.

Each builder returns a validated :class:`~repro.payload.ir.PayloadProgram`.
The attack rewrites compose these — a hammer phase is a
:func:`hammer_sweep`, a spray touch phase is a :func:`touch_sweep` — so
the registry attacks are payload *data* plus bookkeeping, not bespoke
loops.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.errors import PayloadError
from repro.payload.ir import (
    Act,
    AddressList,
    Loop,
    PayloadProgram,
    Pre,
    Read,
    RefreshAlign,
    Write,
    validate_program,
)

#: Default activation count per hammered row (matches
#: :meth:`~repro.dram.rowhammer.RowHammerModel.hammer`'s default).
DEFAULT_ACTIVATIONS = 2_000_000


def single_burst(
    name: str, row: int, activations: int = DEFAULT_ACTIVATIONS
) -> PayloadProgram:
    """One row hammered with ``activations`` back-to-back activations."""
    return hammer_sweep(name, [row], activations=activations)


def hammer_sweep(
    name: str,
    rows: Sequence[int],
    activations: int = DEFAULT_ACTIVATIONS,
    refresh_align: "RefreshAlign | None" = None,
) -> PayloadProgram:
    """Hammer each row in order: ``Loop(activations, ACT row; PRE)`` per row.

    Compiles to one :class:`~repro.payload.compiler.Burst` per row —
    exactly one hammer call per row with the full activation count, the
    shape every hand-written attack loop used.
    """
    if not rows:
        raise PayloadError(f"hammer_sweep {name!r} needs at least one row")
    body = tuple(
        Loop(activations, (Act("rows", index), Pre()))
        for index in range(len(rows))
    )
    program = PayloadProgram(
        name=name,
        lists={"rows": AddressList(tuple(int(r) for r in rows), space="row")},
        body=body,
        refresh_align=refresh_align,
    )
    return validate_program(program)


def touch_sweep(
    name: str, virtual_addresses: Sequence[int], write: bool = False
) -> PayloadProgram:
    """Demand-fault one access per virtual address, in order."""
    if not virtual_addresses:
        raise PayloadError(f"touch_sweep {name!r} needs at least one address")
    program = PayloadProgram(
        name=name,
        lists={
            "vas": AddressList(
                tuple(int(v) for v in virtual_addresses), space="virtual"
            )
        },
        body=(Read("vas", write=write),),
    )
    return validate_program(program)


def read_sweep(
    name: str, addresses: Sequence[int], length: int = 8
) -> PayloadProgram:
    """Read ``length`` bytes at each physical address, in order."""
    if not addresses:
        raise PayloadError(f"read_sweep {name!r} needs at least one address")
    program = PayloadProgram(
        name=name,
        lists={
            "addrs": AddressList(
                tuple(int(a) for a in addresses), space="physical"
            )
        },
        body=(Read("addrs", length=length),),
    )
    return validate_program(program)


# -- builtin demos (CLI `repro payload run --builtin NAME`) -----------------
def _demo_sweep() -> PayloadProgram:
    return hammer_sweep("demo-sweep", rows=[8, 12, 16], activations=25_000)


def _demo_aligned() -> PayloadProgram:
    return hammer_sweep(
        "demo-aligned",
        rows=[8, 12],
        activations=25_000,
        refresh_align=RefreshAlign(modulus=4, phase=1),
    )


def _demo_readback() -> PayloadProgram:
    program = PayloadProgram(
        name="demo-readback",
        lists={
            "rows": AddressList((8,), space="row"),
            "victims": AddressList((7 * 16 * 1024, 9 * 16 * 1024), space="physical"),
        },
        body=(
            Loop(25_000, (Act("rows", 0), Pre())),
            Read("victims", length=64),
        ),
    )
    return validate_program(program)


def _demo_template() -> PayloadProgram:
    """Write a known pattern, hammer, read the victims back.

    The classic fill-hammer-verify template from the rowhammer-tester
    lineage, expressed in the IR: seed both victim rows with 0xFF, hammer
    the aggressor between them, then read the victims back so a
    differential caller can diff against the written pattern.
    """
    program = PayloadProgram(
        name="demo-template",
        lists={
            "rows": AddressList((8,), space="row"),
            "victims": AddressList((7 * 16 * 1024, 9 * 16 * 1024), space="physical"),
        },
        body=(
            Write("victims", pattern=b"\xff" * 64),
            Loop(25_000, (Act("rows", 0), Pre())),
            Read("victims", length=64),
        ),
    )
    return validate_program(program)


BUILTIN_PAYLOADS: Dict[str, object] = {
    "sweep": _demo_sweep,
    "aligned": _demo_aligned,
    "readback": _demo_readback,
    "template": _demo_template,
}


def builtin_payload(name: str) -> PayloadProgram:
    """Look up a builtin demo payload by name."""
    try:
        builder = BUILTIN_PAYLOADS[name]
    except KeyError:
        raise PayloadError(
            f"unknown builtin payload {name!r} "
            f"(choose from {', '.join(sorted(BUILTIN_PAYLOADS))})"
        ) from None
    return builder()
