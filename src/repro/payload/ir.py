"""The hammer-payload IR: a tiny declarative program over address lists.

A :class:`PayloadProgram` is pure data — named address lists plus a body
of ACT/PRE/READ/WRITE/NOP instructions with loop counts and optional
refresh-phase alignment, the same shape the litex rowhammer-tester
lineage compiles row lists into. Programs are validated against the IR
invariants (:func:`validate_program`), lowered by
:mod:`repro.payload.compiler`, and executed by
:mod:`repro.payload.executor`.

Address lists carry a *space*:

``row``
    DRAM row numbers — the only space ``ACT`` accepts.
``physical``
    Byte addresses into the :class:`~repro.dram.module.DramModule` —
    what ``READ``/``WRITE`` operate on directly.
``virtual``
    Attacker virtual addresses; a ``READ`` over a virtual list is a
    demand-fault access (:meth:`~repro.kernel.kernel.Kernel.touch`),
    which is how the spray step expresses "touch one page per mapping".

The ACT/PRE discipline mirrors the DRAM command stream: an ``ACT`` is
only legal when no row is open (every activation needs a precharge
before the next), enforced by an abstract walk over the body — loop
bodies are walked twice so a row left open at the end of one iteration
is caught activating at the start of the next.

Programs serialise to JSON (stable key order) and back; the digest of
the canonical form identifies a payload in campaign reports and golden
files.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import PayloadError

#: Address-list spaces the IR understands.
SPACES = ("row", "physical", "virtual")

#: Maximum Loop nesting depth the validator accepts.
MAX_LOOP_DEPTH = 8

#: Bounds on one READ/WRITE access size (bytes).
MAX_ACCESS_BYTES = 4096

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")


@dataclass(frozen=True)
class Act:
    """Activate one address of a named ``row``-space list."""

    list: str
    index: int = 0


@dataclass(frozen=True)
class Pre:
    """Precharge: close the currently open row (legal any time)."""


@dataclass(frozen=True)
class Read:
    """Read every address of a list, in order.

    ``length`` bytes per address for ``physical`` lists; for ``virtual``
    lists the read is a demand-fault access (``length`` is ignored) and
    ``write`` selects the fault's access mode.
    """

    list: str
    length: int = 8
    write: bool = False


@dataclass(frozen=True)
class Write:
    """Write ``pattern`` at every address of a ``physical`` list."""

    list: str
    pattern: bytes = b"\xff"


@dataclass(frozen=True)
class Nop:
    """Idle for ``cycles`` cycles (pure accounting; keeps bursts open)."""

    cycles: int = 1


@dataclass(frozen=True)
class Loop:
    """Repeat ``body`` ``count`` times (count 0 skips the body)."""

    count: int
    body: Tuple["Instruction", ...]


Instruction = Union[Act, Pre, Read, Write, Nop, Loop]


@dataclass(frozen=True)
class RefreshAlign:
    """Start execution when ``refresh_epoch % modulus == phase``.

    The litex tester's ``--payload-refresh`` alignment: executors advance
    the context's :class:`~repro.dram.refresh.RefreshScheduler` to the
    next refresh interval whose index satisfies the congruence before
    running the body. A context without a scheduler ignores it.
    """

    modulus: int
    phase: int = 0


@dataclass(frozen=True)
class AddressList:
    """One named operand list: a tuple of addresses in one space."""

    addresses: Tuple[int, ...]
    space: str = "row"


@dataclass(frozen=True)
class PayloadProgram:
    """A complete payload: name, operand lists, body, refresh alignment."""

    name: str
    lists: Mapping[str, AddressList] = field(default_factory=dict)
    body: Tuple[Instruction, ...] = ()
    refresh_align: Optional[RefreshAlign] = None

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "lists": {
                name: {"space": lst.space, "addresses": list(lst.addresses)}
                for name, lst in sorted(self.lists.items())
            },
            "body": [_instruction_to_list(ins) for ins in self.body],
            "refresh_align": (
                None
                if self.refresh_align is None
                else {
                    "modulus": self.refresh_align.modulus,
                    "phase": self.refresh_align.phase,
                }
            ),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Stable JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """Short content digest of the canonical JSON form."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PayloadProgram":
        """Parse a :meth:`to_dict` representation; raises PayloadError."""
        if not isinstance(data, Mapping):
            raise PayloadError("payload document must be a JSON object")
        try:
            name = data["name"]
            raw_lists = data.get("lists", {})
            raw_body = data["body"]
        except KeyError as exc:
            raise PayloadError(f"payload document missing key {exc}") from None
        if not isinstance(raw_lists, Mapping) or not isinstance(raw_body, list):
            raise PayloadError("payload 'lists' must be an object and 'body' a list")
        lists: Dict[str, AddressList] = {}
        for list_name, entry in raw_lists.items():
            if not isinstance(entry, Mapping):
                raise PayloadError(f"list {list_name!r} must be an object")
            addresses = entry.get("addresses")
            if not isinstance(addresses, list):
                raise PayloadError(f"list {list_name!r} needs an 'addresses' array")
            lists[list_name] = AddressList(
                addresses=tuple(int(a) for a in addresses),
                space=str(entry.get("space", "row")),
            )
        body = tuple(_instruction_from_list(item) for item in raw_body)
        align = data.get("refresh_align")
        refresh_align = None
        if align is not None:
            if not isinstance(align, Mapping) or "modulus" not in align:
                raise PayloadError("refresh_align must carry a 'modulus'")
            refresh_align = RefreshAlign(
                modulus=int(align["modulus"]), phase=int(align.get("phase", 0))
            )
        return cls(
            name=str(name), lists=lists, body=body, refresh_align=refresh_align
        )

    @classmethod
    def from_json(cls, text: str) -> "PayloadProgram":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PayloadError(f"payload is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def _instruction_to_list(ins: Instruction) -> list:
    if isinstance(ins, Act):
        return ["act", ins.list, ins.index]
    if isinstance(ins, Pre):
        return ["pre"]
    if isinstance(ins, Read):
        return ["read", ins.list, ins.length, ins.write]
    if isinstance(ins, Write):
        return ["write", ins.list, ins.pattern.hex()]
    if isinstance(ins, Nop):
        return ["nop", ins.cycles]
    if isinstance(ins, Loop):
        return ["loop", ins.count, [_instruction_to_list(i) for i in ins.body]]
    raise PayloadError(f"unknown instruction {ins!r}")


def _instruction_from_list(item: Any) -> Instruction:
    if not isinstance(item, list) or not item:
        raise PayloadError(f"instruction {item!r} must be a non-empty array")
    op = item[0]
    try:
        if op == "act":
            return Act(list=str(item[1]), index=int(item[2]) if len(item) > 2 else 0)
        if op == "pre":
            return Pre()
        if op == "read":
            return Read(
                list=str(item[1]),
                length=int(item[2]) if len(item) > 2 else 8,
                write=bool(item[3]) if len(item) > 3 else False,
            )
        if op == "write":
            return Write(list=str(item[1]), pattern=bytes.fromhex(str(item[2])))
        if op == "nop":
            return Nop(cycles=int(item[1]) if len(item) > 1 else 1)
        if op == "loop":
            if len(item) < 3 or not isinstance(item[2], list):
                raise PayloadError("loop instruction needs [\"loop\", count, body]")
            return Loop(
                count=int(item[1]),
                body=tuple(_instruction_from_list(i) for i in item[2]),
            )
    except (IndexError, ValueError) as exc:
        raise PayloadError(f"malformed {op!r} instruction {item!r}: {exc}") from None
    raise PayloadError(f"unknown payload opcode {op!r}")


# -- validation -------------------------------------------------------------
def validate_program(program: PayloadProgram) -> PayloadProgram:
    """Enforce every IR invariant; returns the program for chaining.

    Raises :class:`~repro.errors.PayloadError` on the first violation:
    bad names, unknown/misspaced list references, out-of-range indices,
    ACT while a row is open (including across loop iterations), a body
    that ends with a row still open, and malformed loop/refresh fields.
    """
    if not _NAME_RE.match(program.name or ""):
        raise PayloadError(f"payload name {program.name!r} is not a valid identifier")
    for list_name, lst in program.lists.items():
        if not _NAME_RE.match(list_name):
            raise PayloadError(f"list name {list_name!r} is not a valid identifier")
        if lst.space not in SPACES:
            raise PayloadError(
                f"list {list_name!r} has unknown space {lst.space!r} "
                f"(expected one of {', '.join(SPACES)})"
            )
        for address in lst.addresses:
            if not isinstance(address, int) or address < 0:
                raise PayloadError(
                    f"list {list_name!r} holds invalid address {address!r}"
                )
    if not program.body:
        raise PayloadError(f"payload {program.name!r} has an empty body")
    open_row = _validate_body(program, program.body, depth=0, open_row=False)
    if open_row:
        raise PayloadError(
            f"payload {program.name!r} ends with a row open; close with PRE"
        )
    align = program.refresh_align
    if align is not None:
        if align.modulus < 1:
            raise PayloadError(f"refresh modulus {align.modulus} must be >= 1")
        if not 0 <= align.phase < align.modulus:
            raise PayloadError(
                f"refresh phase {align.phase} outside [0, {align.modulus})"
            )
    return program


def _validate_body(
    program: PayloadProgram,
    body: Tuple[Instruction, ...],
    depth: int,
    open_row: bool,
) -> bool:
    """Walk ``body`` checking invariants; returns the openness state after."""
    if depth > MAX_LOOP_DEPTH:
        raise PayloadError(
            f"payload {program.name!r} nests loops deeper than {MAX_LOOP_DEPTH}"
        )
    for ins in body:
        if isinstance(ins, Act):
            lst = _resolve_list(program, ins.list)
            if lst.space != "row":
                raise PayloadError(
                    f"ACT targets {ins.list!r} ({lst.space}); ACT needs a row list"
                )
            if not 0 <= ins.index < len(lst.addresses):
                raise PayloadError(
                    f"ACT index {ins.index} outside list {ins.list!r} "
                    f"(len {len(lst.addresses)})"
                )
            if open_row:
                raise PayloadError(
                    f"ACT on {ins.list!r}[{ins.index}] while a row is open; "
                    "precharge (PRE) first"
                )
            open_row = True
        elif isinstance(ins, Pre):
            open_row = False
        elif isinstance(ins, Read):
            lst = _resolve_list(program, ins.list)
            if lst.space == "row":
                raise PayloadError(
                    f"READ targets row list {ins.list!r}; use a physical or "
                    "virtual list"
                )
            if not 1 <= ins.length <= MAX_ACCESS_BYTES:
                raise PayloadError(
                    f"READ length {ins.length} outside [1, {MAX_ACCESS_BYTES}]"
                )
            if ins.write and lst.space != "virtual":
                raise PayloadError(
                    f"READ write=True on {lst.space} list {ins.list!r}; "
                    "write-mode reads are demand faults over virtual lists"
                )
        elif isinstance(ins, Write):
            lst = _resolve_list(program, ins.list)
            if lst.space != "physical":
                raise PayloadError(
                    f"WRITE targets {ins.list!r} ({lst.space}); WRITE needs a "
                    "physical list"
                )
            if not 1 <= len(ins.pattern) <= MAX_ACCESS_BYTES:
                raise PayloadError(
                    f"WRITE pattern of {len(ins.pattern)} bytes outside "
                    f"[1, {MAX_ACCESS_BYTES}]"
                )
        elif isinstance(ins, Nop):
            if ins.cycles < 0:
                raise PayloadError(f"NOP cycles {ins.cycles} must be >= 0")
        elif isinstance(ins, Loop):
            if ins.count < 0:
                raise PayloadError(f"loop count {ins.count} must be >= 0")
            if not ins.body:
                raise PayloadError("loop body must not be empty")
            if ins.count > 0:
                after_once = _validate_body(program, ins.body, depth + 1, open_row)
                if ins.count > 1:
                    # Second walk catches a row left open at the end of one
                    # iteration activating again at the start of the next.
                    after_once = _validate_body(
                        program, ins.body, depth + 1, after_once
                    )
                open_row = after_once
        else:
            raise PayloadError(f"unknown instruction {ins!r}")
    return open_row


def _resolve_list(program: PayloadProgram, name: str) -> AddressList:
    lst = program.lists.get(name)
    if lst is None:
        raise PayloadError(
            f"payload {program.name!r} references unknown list {name!r}"
        )
    return lst
