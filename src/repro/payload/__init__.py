"""Declarative hammer payloads: IR, validator, compiler, executors.

A payload is data — named address lists plus ACT/PRE/READ/WRITE/NOP
instructions with loop counts and refresh-phase alignment — validated
against IR invariants, lowered to the batched DRAM/MMU primitives, and
executable three ways (batched :func:`run`, attack-facing
:func:`iter_steps`, oracle :func:`slow_reference`). See
:mod:`repro.payload.ir` for the grammar and
:mod:`repro.payload.executor` for the equivalence contract.
"""

from repro.payload.compiler import (
    MAX_COMPILED_STEPS,
    Burst,
    CompiledPayload,
    ReadBatch,
    WriteBatch,
    compile_program,
)
from repro.payload.executor import (
    PayloadContext,
    PayloadResult,
    PendingBurst,
    PendingRead,
    PendingWrite,
    align_refresh,
    iter_steps,
    run,
    slow_reference,
)
from repro.payload.ir import (
    MAX_ACCESS_BYTES,
    MAX_LOOP_DEPTH,
    SPACES,
    Act,
    AddressList,
    Loop,
    Nop,
    PayloadProgram,
    Pre,
    Read,
    RefreshAlign,
    Write,
    validate_program,
)
from repro.payload.programs import (
    BUILTIN_PAYLOADS,
    DEFAULT_ACTIVATIONS,
    builtin_payload,
    hammer_sweep,
    read_sweep,
    single_burst,
    touch_sweep,
)

__all__ = [
    "Act",
    "AddressList",
    "Burst",
    "BUILTIN_PAYLOADS",
    "CompiledPayload",
    "DEFAULT_ACTIVATIONS",
    "Loop",
    "MAX_ACCESS_BYTES",
    "MAX_COMPILED_STEPS",
    "MAX_LOOP_DEPTH",
    "Nop",
    "PayloadContext",
    "PayloadProgram",
    "PayloadResult",
    "PendingBurst",
    "PendingRead",
    "PendingWrite",
    "Pre",
    "Read",
    "ReadBatch",
    "RefreshAlign",
    "SPACES",
    "Write",
    "WriteBatch",
    "align_refresh",
    "builtin_payload",
    "compile_program",
    "hammer_sweep",
    "iter_steps",
    "read_sweep",
    "run",
    "single_burst",
    "slow_reference",
    "touch_sweep",
    "validate_program",
]
