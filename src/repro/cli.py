"""Command-line front end: regenerate any of the paper's tables/figures.

Usage::

    python -m repro table1          # attack catalogue
    python -m repro table2          # security analysis (Pf=1e-4)
    python -m repro table3          # pessimistic security analysis
    python -m repro table4          # CTA performance overhead
    python -m repro fig3            # live privilege-escalation demo
    python -m repro fig5            # monotonic-pointer demonstration
    python -m repro anticell        # low-water-mark-only ablation
    python -m repro capacity        # Section 6.2 capacity accounting
    python -m repro headline        # abstract's headline numbers
    python -m repro stats --trace 5 # demo attack + observability dump
    python -m repro lint            # static contract checks (RL001..RL009)
    python -m repro payload validate p.json          # check a payload program
    python -m repro payload run --builtin sweep      # execute one on a demo world
    python -m repro check --sanitize# attack demo under runtime sanitizers
    python -m repro chaos --smoke   # fault-injection campaign (deterministic)
    python -m repro chaos --smoke --workers 4        # same results, fanned out
    python -m repro chaos --smoke --memo --memo-dir memo_cache  # cached re-runs
    python -m repro bench --quick   # hot-path microbenchmarks
    python -m repro resume --checkpoint chaos.json   # continue a killed run
    python -m repro serve --port 7341 --faults worker-crash:p=1,max=2
    python -m repro serve --port 7341 --memo-dir memo_cache  # cross-tenant cache
    python -m repro submit --port 7341 --segments 4 --json  # vs --serial --json
    python -m repro memo stats --dir memo_cache      # on-disk cache accounting
    python -m repro memo gc --dir memo_cache --max-bytes 1000000

All errors raised by the simulator derive from
:class:`repro.errors.ReproError`; the CLI catches the family at the top
level and exits with status 2 and a one-line message instead of a
traceback (capacity exhaustion gets its own ``capacity exhausted:``
prefix so operators can tell "out of room" from "misconfigured").
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import CapacityError, ConfigurationError, ReproError
from repro.units import format_duration


def _seed(text: str) -> int:
    """argparse ``type=`` for ``--seed``: a non-negative integer.

    Raises :class:`ConfigurationError` (not ``ValueError``) so argparse
    lets it propagate to :func:`main`'s taxonomy handler — a bad seed
    exits 2 with a clean one-line message, not an argparse traceback.
    """
    try:
        value = int(text, 0)
    except ValueError:
        raise ConfigurationError(f"seed {text!r} is not an integer") from None
    if value < 0:
        raise ConfigurationError(f"seed must be non-negative, got {value}")
    return value


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.attacks.registry import KNOWN_ATTACKS

    print(f"{'Technique':38s} {'Victim Data':12s} {'Attack':42s} {'Platform':8s}")
    for record in KNOWN_ATTACKS:
        print(
            f"{record.reference:38s} {record.victim_data:12s} "
            f"{record.attack_class:42s} {record.platform:8s}"
        )
    return 0


def _print_security_rows(rows, paper) -> None:
    print(
        f"{'Configuration':30s} {'E[exploitable]':>15s} {'paper':>12s} "
        f"{'attack (days)':>14s} {'paper':>8s}"
    )
    for row in rows:
        expected_paper, days_paper = paper[row.label]
        print(
            f"{row.label:30s} {row.expected_exploitable:15.4g} {expected_paper:12.4g} "
            f"{row.attack_time_days:14.1f} {days_paper:8.1f}"
        )


def _cmd_table2(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import PAPER_TABLE2, paper_table2

    _print_security_rows(paper_table2(), PAPER_TABLE2)
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import PAPER_TABLE3, paper_table3

    _print_security_rows(paper_table3(), PAPER_TABLE3)
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.perf.report import format_report, table4_report

    rows = table4_report(repeats=args.repeats)
    print(format_report(rows))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro import build_protected_system, build_stock_system
    from repro.attacks import ProbabilisticPteAttack
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    stats = FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5)
    stock = build_stock_system()
    hammer = RowHammerModel(stock.module, stats, seed=args.seed)
    result = ProbabilisticPteAttack(kernel=stock, hammer=hammer).run(
        stock.create_process(), spray_mappings=96, max_rounds=3
    )
    print(f"stock kernel:     {result.outcome.value:18s} {result.detail}")

    protected = build_protected_system()
    hammer2 = RowHammerModel(protected.module, stats, seed=args.seed)
    result2 = ProbabilisticPteAttack(kernel=protected, hammer=hammer2).run(
        protected.create_process(), spray_mappings=96, max_rounds=3
    )
    print(f"CTA kernel:       {result2.outcome.value:18s} {result2.detail}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro import build_protected_system
    from repro.attacks import CtaBruteForceAttack
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    kernel = build_protected_system()
    hammer = RowHammerModel(
        kernel.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.998), seed=args.seed
    )
    attack = CtaBruteForceAttack(kernel=kernel, hammer=hammer)
    result = attack.run(kernel.create_process(), max_target_pages=3)
    monotonic = sum(1 for o in attack.observations if o.monotonic)
    print(f"Algorithm 1 on CTA kernel: {result.outcome.value}")
    print(f"corrupted PTE pointers observed: {len(attack.observations)}")
    print(f"moved monotonically downward:    {monotonic}")
    print("full-sweep modeled attack time:  "
          f"{format_duration(attack.full_sweep_modeled_time_s())}")
    return 0


def _cmd_anticell(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import PAPER_ANTICELL, anticell_ablation

    result = anticell_ablation()
    print("low-water-mark-only (anti-cell ZONE_PTP) ablation, 8GB/32MB:")
    print(
        f"  expected exploitable PTEs: {result.expected_exploitable:10.1f}"
        f"   (paper {PAPER_ANTICELL.expected_exploitable})"
    )
    print(
        f"  expected attack time:      {result.attack_time_hours:10.1f} h"
        f" (paper {PAPER_ANTICELL.attack_time_hours} h)"
    )
    return 0


def _cmd_capacity(_args: argparse.Namespace) -> int:
    from repro.analysis.capacity import capacity_sweep

    best, worst = capacity_sweep()
    print("Section 6.2 effective-capacity accounting (8GB, 32MB ZONE_PTP):")
    print(f"  best case loss:  {best.loss_percent:6.2f}%")
    print(f"  worst case loss: {worst.loss_percent:6.2f}%  (paper: 0.78%)")
    return 0


def _cmd_headline(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import headline_numbers

    numbers = headline_numbers()
    print("abstract headline claims, recomputed:")
    print(f"  one vulnerable system in: {numbers['systems_per_vulnerable']:12.3g}"
          "   (paper: 2.04e5)")
    print(f"  attack time on it:        {numbers['attack_time_days']:12.1f} days"
          " (paper: 231)")
    print(f"  slowdown vs 20s attack:   {numbers['slowdown_vs_20s']:12.3g}x"
          "  (paper: ~1e6)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a demo hammer campaign and dump the collected metrics.

    Exercises every instrumented layer — spray (buddy/zones), hammer
    (DRAM flips), walk/check (MMU+TLB), refresh — then prints the
    default registry as a text table (default) or JSON (``--json``).
    ``--trace N`` appends the last N trace events.
    """
    from repro import build_stock_system, obs
    from repro.attacks import ProbabilisticPteAttack
    from repro.dram.refresh import RefreshScheduler
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    obs.reset()
    kernel = build_stock_system()
    hammer = RowHammerModel(
        kernel.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5), seed=args.seed
    )
    result = ProbabilisticPteAttack(kernel=kernel, hammer=hammer).run(
        kernel.create_process(), spray_mappings=48, max_rounds=2
    )
    refresh = RefreshScheduler(total_rows=kernel.module.geometry.total_rows)
    refresh.advance(0.064)
    refresh.refresh_all()

    # Translation-pressure sweep through the batched VM pipeline: a
    # working set larger than the TLB, swept twice, so the capacity
    # (``tlb.evictions``) and re-fill behaviour show up in the table.
    import numpy as np
    from repro.units import PAGE_SIZE
    sweeper = kernel.create_process()
    vma, _ = kernel.mmap_touch_many(
        sweeper, (kernel.tlb.capacity + 512) * PAGE_SIZE, write=True
    )
    sweep_vas = vma.start + PAGE_SIZE * np.arange(vma.num_pages, dtype=np.int64)
    for _ in range(2):
        kernel.mmu.translate_many(sweeper.cr3, sweep_vas, pid=sweeper.pid)
    kernel.munmap(sweeper, vma)

    # Static-verifier pass so the verify.* contract counters surface in
    # the table: one config model-check plus one payload verification.
    from repro.payload import builtin_payload
    from repro.verify import (
        AddressSpaceModel,
        named_config,
        verify_config,
        verify_payload,
    )
    cta_config = named_config("cta")
    verify_config(cta_config, subject="cta")
    verify_payload(
        builtin_payload("sweep"), AddressSpaceModel.from_config(cta_config)
    )

    # Campaign-service pass: a small deterministic overload scenario so
    # the service.* contract counters (admitted / rejected / shed /
    # worker_restarts / deadline_missed) surface in the table.
    from repro.service import run_overload_demo

    run_overload_demo(tenants=12, segments=1, seed=args.seed, workers=2)

    # Segment-memoization pass: the same tiny campaign twice through one
    # shared cache, so the memo.* contract counters (hits / misses /
    # stores / bytes) surface in the table with real values.
    from repro.perf.memo import SegmentMemo
    from repro.perf.parallel import run_campaign_parallel

    memo = SegmentMemo()
    for _ in range(2):
        run_campaign_parallel(
            name="stats-memo-demo",
            target="repro.perf.parallel:montecarlo_trial",
            num_segments=2,
            seed=args.seed,
            kwargs={"total_bytes": 64 * 1024 * 1024, "ptp_bytes": 1024 * 1024},
            workers=1,
            memo=memo,
        )

    registry = obs.get_registry()
    if args.json:
        print(registry.to_json())
    else:
        print(f"demo attack outcome: {result.outcome.value}")
        print(registry.format_table())
    if args.trace:
        print(f"\nlast {args.trace} trace events "
              f"({len(registry.trace)} retained, {registry.trace.dropped} dropped):")
        for event in registry.trace.events(last=args.trace):
            print(f"  {event.format()}")
    return 0


def _cmd_vm(args: argparse.Namespace) -> int:
    from repro.dram.cells import CellTypeMap
    from repro.dram.geometry import DramGeometry
    from repro.dram.module import DramModule
    from repro.kernel import Hypervisor
    from repro.units import MIB, PAGE_SIZE

    geometry = DramGeometry(total_bytes=64 * MIB, row_bytes=16 * 1024, num_banks=2)
    host = DramModule(geometry, CellTypeMap.interleaved(geometry, period_rows=64))
    hypervisor = Hypervisor(host, hypervisor_zone_bytes=8 * MIB)
    for _ in range(args.guests):
        vm = hypervisor.create_guest(data_bytes=8 * MIB, ptp_bytes=MIB)
        process = vm.kernel.create_process()
        vma = vm.kernel.mmap(process, 4 * PAGE_SIZE)
        vm.kernel.write_virtual(process, vma.start, b"vm data")
        print(f"VM {vm.vm_id}: data {vm.host_data_range[0]:#x}.."
              f"{vm.host_data_range[1]:#x}, PTP slice {vm.host_ptp_range[0]:#x}.."
              f"{vm.host_ptp_range[1]:#x}")
    hypervisor.verify_isolation()
    print("cross-VM CTA isolation verified (Section 7)")
    return 0


def _cmd_ecc(args: argparse.Namespace) -> int:
    from repro.dram.cells import CellTypeMap
    from repro.dram.ecc import DecodeStatus, EccWordStore
    from repro.dram.geometry import DramGeometry
    from repro.dram.module import DramModule
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel
    from repro.units import MIB

    geometry = DramGeometry(total_bytes=2 * MIB, row_bytes=16 * 1024, num_banks=2)
    module = DramModule(geometry, CellTypeMap.interleaved(geometry, period_rows=8))
    store = EccWordStore(module, base_address=16 * 1024)
    for value in range(512):
        store.store((value % 256) * 0x0101_0101_0101_0101)
    hammer = RowHammerModel(
        module, FlipStatistics(p_vulnerable=8e-2, p_with_leak=0.6), seed=args.seed
    )
    for aggressor in range(5):
        hammer.hammer(aggressor)
    counts = {}
    for result in store.scrub_all():
        counts[result.status] = counts.get(result.status, 0) + 1
    print("SECDED under heavy hammering (512 words):")
    for status in DecodeStatus:
        print(f"  {status.value:24s} {counts.get(status, 0)}")
    print("ECC corrects singles but multi-flip words escape — ECC is not a "
          "RowHammer defense (Section 2.3).")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's AST rule pack; non-zero exit when findings exist."""
    import json

    from repro.sanitize.lint import RULES, run_lint

    findings = run_lint(args.paths or None)
    if args.json:
        print(json.dumps(
            [
                {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
                for f in findings
            ],
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            by_rule = {}
            for finding in findings:
                by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
            summary = ", ".join(
                f"{count}x {rule} ({RULES[rule]})" for rule, count in sorted(by_rule.items())
            )
            print(f"\n{len(findings)} finding(s): {summary}")
        else:
            print("repro lint: no findings")
    return 1 if findings else 0


def _payload_world(seed: int):
    """A small seeded DRAM world for standalone payload execution."""
    from repro.dram.cells import CellTypeMap
    from repro.dram.geometry import DramGeometry
    from repro.dram.module import DramModule
    from repro.dram.refresh import RefreshScheduler
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel
    from repro.payload import PayloadContext
    from repro.units import MIB

    geometry = DramGeometry(total_bytes=8 * MIB, row_bytes=16 * 1024, num_banks=2)
    module = DramModule(geometry, CellTypeMap.interleaved(geometry, period_rows=8))
    for row in range(64):
        module.fill_row(row, 0xFF)
    hammer = RowHammerModel(
        module,
        FlipStatistics(p_vulnerable=2e-3, p_with_leak=0.9),
        seed=seed,
    )
    refresh = RefreshScheduler(total_rows=geometry.total_rows)
    return PayloadContext(hammer=hammer, module=module, refresh=refresh)


def _load_payload(args: argparse.Namespace):
    """The program named by --builtin or read from the positional file."""
    from pathlib import Path

    from repro.errors import PayloadError
    from repro.payload import PayloadProgram, builtin_payload, validate_program

    if args.builtin:
        return builtin_payload(args.builtin)
    if not args.file:
        raise PayloadError("give a payload file or --builtin NAME")
    text = Path(args.file).read_text(encoding="utf-8")
    return validate_program(PayloadProgram.from_json(text))


def _cmd_payload_run(args: argparse.Namespace) -> int:
    """Execute one payload on a self-contained demo world."""
    import json

    from repro.payload import run, slow_reference

    program = _load_payload(args)
    context = _payload_world(args.seed)
    executor = slow_reference if args.slow_reference else run
    result = executor(program, context)
    if args.json:
        print(json.dumps(
            {
                "name": result.name,
                "digest": result.digest,
                "bursts": result.bursts,
                "activations": result.activations,
                "reads": result.reads,
                "writes": result.writes,
                "nop_cycles": result.nop_cycles,
                "flips_induced": result.flips_induced,
                "read_digest": result.read_digest,
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    mode = "slow-reference" if args.slow_reference else "compiled"
    print(f"payload {result.name} ({result.digest}) executed [{mode}]")
    print(f"  bursts          {result.bursts}")
    print(f"  activations     {result.activations}")
    print(f"  reads / writes  {result.reads} / {result.writes}")
    print(f"  flips induced   {result.flips_induced}")
    if result.reads:
        print(f"  read digest     {result.read_digest}")
    return 0


def _cmd_payload_validate(args: argparse.Namespace) -> int:
    """Parse, validate, and compile a payload; report its shape."""
    from repro.payload import compile_program

    program = _load_payload(args)
    compiled = compile_program(program)
    print(
        f"payload {program.name} ({program.digest()}) is valid: "
        f"{len(compiled.steps)} compiled step(s), "
        f"{compiled.total_activations} activation(s), "
        f"{compiled.total_accesses} access(es)"
    )
    return 0


def _print_verdict_report(report, args: argparse.Namespace) -> int:
    """Render a verification report; map the overall verdict to an exit.

    Exit 0 for SAFE (and UNKNOWN without ``--strict``), 1 for UNSAFE —
    with the witness printed — and UNKNOWN under ``--strict``. Malformed
    input never reaches here: it raises and exits 2 through the main
    error handler.
    """
    from repro.verify import Verdict

    if args.json:
        print(report.to_json())
    else:
        print(report.format_text())
    if report.overall is Verdict.UNSAFE:
        return 1
    if report.overall is Verdict.UNKNOWN and args.strict:
        return 1
    return 0


def _cmd_verify_payload(args: argparse.Namespace) -> int:
    """Statically verify a payload program against a named config.

    The payload is parsed but deliberately *not* pre-validated: the
    ACT/PRE discipline is one of the verdicts, not an input error.
    """
    from pathlib import Path

    from repro.errors import PayloadError
    from repro.payload import PayloadProgram, builtin_payload
    from repro.verify import (
        DEFAULT_FLIP_THRESHOLD,
        AddressSpaceModel,
        named_config,
        verify_payload,
    )

    if args.builtin:
        program = builtin_payload(args.builtin)
    elif args.file:
        text = Path(args.file).read_text(encoding="utf-8")
        program = PayloadProgram.from_json(text)
    else:
        raise PayloadError("give a payload file or --builtin NAME")
    model = AddressSpaceModel.from_config(named_config(args.config))
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_FLIP_THRESHOLD
    )
    report = verify_payload(
        program, model, threshold=threshold, subject=program.name
    )
    return _print_verdict_report(report, args)


def _cmd_verify_config(args: argparse.Namespace) -> int:
    """Model-check a named kernel configuration's CTA layout."""
    from repro.verify import named_config, verify_config

    report = verify_config(named_config(args.config), subject=args.config)
    return _print_verdict_report(report, args)


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the attack demo end-to-end, optionally under runtime sanitizers.

    Stage 1 attacks a stock kernel (the attack should succeed or at least
    run without tripping any invariant); stage 2 attacks a CTA kernel with
    idealized true-cells, where the monotonicity and no-self-reference
    sanitizers must stay silent — the paper's theorem, enforced live.

    Stage 2 uses the Section 7 multi-level sub-zones: with a single
    ZONE_PTP, a downward flip in an *intermediate* entry can redirect it
    to a different page table inside the zone, and the level confusion
    (a PD read as a PT) opens a self-reference window the sanitizer
    rightly flags. Per-level zones remove that reinterpretation, which is
    exactly the structural argument the multilevel extension makes.
    """
    from repro import build_protected_system, build_stock_system, obs, sanitize
    from repro.attacks import CtaBruteForceAttack, ProbabilisticPteAttack
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    # Stage 1: stock kernel (buddy + zone sanitizers only; no CTA checkers).
    obs.reset()
    sanitize.reset()
    stock = build_stock_system()
    hammer = RowHammerModel(
        stock.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5), seed=args.seed
    )
    if args.sanitize:
        sanitize.install(stock, hammer=hammer)
    result = ProbabilisticPteAttack(kernel=stock, hammer=hammer).run(
        stock.create_process(), spray_mappings=48, max_rounds=2
    )
    stock_checks = sanitize.get_suite().checks
    print(f"stock kernel:   {result.outcome.value:18s} "
          f"({stock_checks} sanitizer checks, 0 violations)")

    # Stage 2: CTA kernel with idealized true-cells (p_with_leak=1.0): every
    # flip in ZONE_PTP moves pointers down, so the monotonicity sanitizer
    # must never fire.
    obs.reset()
    sanitize.reset()
    protected = build_protected_system(multilevel=True)
    hammer2 = RowHammerModel(
        protected.module,
        FlipStatistics(p_vulnerable=3e-2, p_with_leak=1.0),
        seed=args.seed,
    )
    if args.sanitize:
        sanitize.install(protected, hammer=hammer2)
    result2 = ProbabilisticPteAttack(kernel=protected, hammer=hammer2).run(
        protected.create_process(), spray_mappings=48, max_rounds=2
    )
    attack = CtaBruteForceAttack(kernel=protected, hammer=hammer2)
    result3 = attack.run(protected.create_process(), max_target_pages=1, spray_mappings=24)
    protected.verify_cta_rules()
    if args.sanitize:
        sanitize.get_suite().check_now()
    cta_checks = sanitize.get_suite().checks
    print(f"CTA kernel:     {result2.outcome.value:18s} "
          f"({cta_checks} sanitizer checks, 0 violations)")
    print(f"Algorithm 1:    {result3.outcome.value:18s} "
          f"({len(attack.observations)} pointer corruptions, all monotonic)")
    if args.sanitize:
        print("sanitizers: all invariants held (buddy heap, zone containment, "
              "monotonicity, no-self-reference)")
    sanitize.reset()
    return 0


def _print_campaign_report(report, as_json: bool) -> int:
    """Render a campaign report; returns the CLI exit status.

    Exit 0 when everything recorded so far succeeded (including a partial
    budget-interrupted run — the checkpoint holds the completed work) and
    1 when any segment terminally failed.
    """
    import json

    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for index, result in enumerate(report.results()):
            if result is None:
                print(f"  segment {index}: pending")
            elif "error" in result:
                print(f"  segment {index}: FAILED ({result['error']})")
            else:
                summary = ", ".join(
                    f"{key}={result[key]}"
                    for key in ("outcome", "flips", "exploitable",
                                "security_downgrades", "sanitizer_violations")
                    if key in result
                )
                print(f"  segment {index}: {result.get('kind', '?')} ok ({summary})")
        totals = report.fault_totals()
        fired = {name: count for name, count in totals.items() if count}
        print(f"faults injected: {sum(totals.values())} "
              f"({', '.join(f'{k}={v}' for k, v in fired.items()) or 'none fired'})")
        print(f"segments: {len(report.completed)} completed, "
              f"{len(report.failed)} failed, {report.remaining} remaining; "
              f"{report.retries} retries "
              f"({report.backoff_wait_s:.2f}s backoff)")
        if report.interrupted:
            print("campaign interrupted — rerun with `repro resume "
                  "--checkpoint <path>` to continue")
    return 1 if report.failed else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the standard fault-injection campaign (see repro.faults).

    Deterministic for a fixed seed: two identical invocations produce
    identical fault counts, segment results and metric tables. ``--smoke``
    shrinks each segment for CI; ``--max-segments`` stops early with a
    resumable checkpoint. ``--memo`` (optionally with ``--memo-dir`` for
    a cross-run on-disk tier) replays previously computed segments from
    the content-addressed cache, byte-identically.
    """
    from repro import faults, obs, sanitize
    from repro.faults.campaign import CampaignBudget
    from repro.faults.scenarios import run_chaos_campaign

    obs.reset()
    sanitize.reset()
    faults.reset()
    budget = None
    if args.max_segments is not None:
        budget = CampaignBudget(max_segments=args.max_segments)
    memo = None
    if args.memo or args.memo_dir:
        from repro.perf.memo import build_memo

        memo = build_memo(args.memo_dir, verify_fraction=args.memo_verify)
    report = run_chaos_campaign(
        args.seed,
        num_segments=args.segments,
        policy=args.policy,
        smoke=args.smoke,
        checkpoint_path=args.checkpoint,
        budget=budget,
        workers=args.workers,
        warm_start=args.warm_start,
        memo=memo,
    )
    status = _print_campaign_report(report, args.json)
    if not args.json:
        if memo is not None:
            print(
                f"memo: {memo.hits} hits, {memo.misses} misses, "
                f"{memo.stores} stores, {memo.bypasses} bypasses, "
                f"{memo.verified} verified"
            )
        print()
        print(obs.get_registry().format_table())
    return status


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path microbenchmarks and write ``BENCH_hotpath.json``.

    ``--baseline`` turns the run into a CI gate: exit 1 when any case's
    ops/s falls below the committed baseline divided by
    ``--max-regression``.
    """
    from repro.perf.bench import bench_main

    return bench_main(
        quick=args.quick,
        output=args.output,
        baseline=args.baseline,
        max_regression=args.max_regression,
    )


def _cmd_resume(args: argparse.Namespace) -> int:
    """Continue a chaos campaign from its checkpoint file.

    The campaign's identity (seed, segment count, policy, smoke mode) is
    read back from the checkpoint, so the merged result is exactly what an
    uninterrupted run would have produced.
    """
    from repro import faults, obs, sanitize
    from repro.faults.campaign import read_checkpoint
    from repro.faults.scenarios import build_chaos_runner

    data = read_checkpoint(args.checkpoint)
    if data["name"] != "chaos":
        raise ConfigurationError(
            f"checkpoint {args.checkpoint} records campaign {data['name']!r}; "
            "repro resume only handles 'chaos' campaigns"
        )
    config = data["config"]
    obs.reset()
    sanitize.reset()
    faults.reset()
    runner = build_chaos_runner(
        data["seed"],
        num_segments=data["num_segments"],
        policy=config.get("policy", "fail-hard"),
        smoke=config.get("smoke", True),
        checkpoint_path=args.checkpoint,
    )
    report = runner.run(resume=True)
    status = _print_campaign_report(report, args.json)
    if not args.json:
        print()
        print(obs.get_registry().format_table())
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived campaign service until a client sends drain.

    Deterministic fault schedules (``--faults``) are installed before
    the first request, so injected worker crashes / hangs / snapshot
    corruption replay identically across invocations with one seed.
    """
    import asyncio

    from repro import faults, obs
    from repro.service import AdmissionPolicy, CampaignService
    from repro.service.server import serve

    obs.reset()
    faults.reset()
    if args.faults:
        faults.install(args.faults, seed=args.seed)
    policy = AdmissionPolicy(
        max_active=args.max_active, tenant_cap=args.tenant_cap
    )
    memo = None
    if args.memo_dir:
        from repro.perf.memo import build_memo

        memo = build_memo(args.memo_dir, verify_fraction=args.memo_verify)
    service = CampaignService(
        workers=args.workers,
        policy=policy,
        mode=args.mode,
        max_requeues=args.max_requeues,
        segment_timeout_s=args.segment_timeout,
        memo=memo,
    )

    def ready(port: int) -> None:
        print(f"repro service listening on {args.host}:{port}", flush=True)

    asyncio.run(serve(service, host=args.host, port=args.port, ready_cb=ready))
    print("repro service drained; all admitted campaigns completed", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one campaign to a running service (or run it serially).

    ``--serial`` bypasses the service entirely and runs the identical
    campaign through the serial engine — the reference a service
    report must match byte-for-byte, which is exactly how the CI smoke
    job uses it: ``repro submit --json`` vs ``repro submit --serial
    --json`` must print identical bytes.
    """
    import json

    from repro.service import CampaignRequest, submit_over_socket

    request = CampaignRequest(
        name=args.name,
        target=args.target,
        num_segments=args.segments,
        seed=args.seed,
        tenant=args.tenant,
        priority=args.priority,
        deadline_s=args.deadline,
        max_retries=args.max_retries,
        warm_start=args.warm_start,
        kwargs=json.loads(args.kwargs),
        config=json.loads(args.config),
    )
    if args.serial:
        from repro import obs
        from repro.perf.parallel import run_campaign_parallel

        obs.reset()
        report_dict = run_campaign_parallel(
            name=request.name,
            target=request.target,
            num_segments=request.num_segments,
            seed=request.seed,
            kwargs=request.kwargs,
            config=request.config,
            workers=1,
            max_retries=request.max_retries,
        ).to_dict()
    else:
        report_dict, progress = submit_over_socket(
            args.host, args.port, request, timeout_s=args.timeout
        )
        if not args.json:
            for event in progress:
                print(
                    f"  progress: {event.get('completed')}/{event.get('total')}"
                )
    if args.json:
        print(json.dumps(report_dict, indent=2, sort_keys=True))
    else:
        segments = report_dict["segments"]
        print(
            f"campaign {report_dict['name']} (seed {report_dict['seed']}): "
            f"{segments['completed']} completed, {segments['failed']} failed, "
            f"{segments['remaining']} remaining"
        )
    return 1 if report_dict["segments"]["failed"] else 0


def _cmd_memo_stats(args: argparse.Namespace) -> int:
    """Report the on-disk memo store's entry/byte accounting."""
    import json

    from repro.perf.memo import DiskMemoStore

    store = DiskMemoStore(args.dir)
    info = store.stats()
    info["recovered_partials"] = store.recovered_partials
    if args.json:
        print(json.dumps(
            {"directory": str(store.directory), **info}, indent=2, sort_keys=True
        ))
    else:
        print(f"memo store {store.directory}:")
        print(f"  entries            {info['entries']}")
        print(f"  total bytes        {info['total_bytes']}")
        print(f"  partials recovered {info['recovered_partials']}")
    return 0


def _cmd_memo_gc(args: argparse.Namespace) -> int:
    """Prune the on-disk memo store down to a byte budget (oldest first)."""
    import json

    from repro.perf.memo import DiskMemoStore

    store = DiskMemoStore(args.dir)
    result = store.gc(args.max_bytes)
    if args.json:
        print(json.dumps(
            {"directory": str(store.directory), **result}, indent=2, sort_keys=True
        ))
    else:
        print(
            f"memo gc {store.directory}: removed {result['removed']} "
            f"entr{'y' if result['removed'] == 1 else 'ies'} "
            f"({result['freed_bytes']} bytes); {result['entries']} remain "
            f"({result['total_bytes']} bytes <= {args.max_bytes})"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="catalogue of published attacks").set_defaults(func=_cmd_table1)
    subparsers.add_parser("table2", help="security analysis, Pf=1e-4").set_defaults(func=_cmd_table2)
    subparsers.add_parser("table3", help="pessimistic security analysis").set_defaults(func=_cmd_table3)
    t4 = subparsers.add_parser("table4", help="CTA performance overhead")
    t4.add_argument("--repeats", type=int, default=3)
    t4.set_defaults(func=_cmd_table4)
    fig3 = subparsers.add_parser("fig3", help="live privilege-escalation demo")
    fig3.add_argument("--seed", type=_seed, default=1)
    fig3.set_defaults(func=_cmd_fig3)
    fig5 = subparsers.add_parser("fig5", help="monotonic-pointer demonstration")
    fig5.add_argument("--seed", type=_seed, default=1)
    fig5.set_defaults(func=_cmd_fig5)
    subparsers.add_parser("anticell", help="anti-cell ZONE_PTP ablation").set_defaults(func=_cmd_anticell)
    subparsers.add_parser("capacity", help="capacity-loss accounting").set_defaults(func=_cmd_capacity)
    subparsers.add_parser("headline", help="abstract headline numbers").set_defaults(func=_cmd_headline)
    vm = subparsers.add_parser("vm", help="Section 7 virtual-machine support demo")
    vm.add_argument(
        "--guests", type=int, default=3,
        help="guest VMs to boot (enough of them exhausts ZONE_HYPERVISOR)",
    )
    vm.set_defaults(func=_cmd_vm)
    stats = subparsers.add_parser(
        "stats", help="run a demo attack and dump observability metrics"
    )
    stats.add_argument("--seed", type=_seed, default=1)
    stats.add_argument("--json", action="store_true", help="emit metrics as JSON")
    stats.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="also print the last N trace events",
    )
    stats.set_defaults(func=_cmd_stats)
    ecc = subparsers.add_parser("ecc", help="SECDED-vs-RowHammer demo")
    ecc.add_argument("--seed", type=_seed, default=13)
    ecc.set_defaults(func=_cmd_ecc)
    lint = subparsers.add_parser(
        "lint", help="run the repo-specific static contract checks"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument("--json", action="store_true", help="emit findings as JSON")
    lint.set_defaults(func=_cmd_lint)
    payload = subparsers.add_parser(
        "payload", help="validate or execute declarative hammer payloads"
    )
    payload_sub = payload.add_subparsers(dest="payload_command", required=True)
    payload_run = payload_sub.add_parser(
        "run", help="execute a payload on a self-contained demo DRAM world"
    )
    payload_run.add_argument(
        "file", nargs="?", default=None,
        help="payload program as JSON (omit with --builtin)",
    )
    payload_run.add_argument(
        "--builtin", default=None, metavar="NAME",
        help="run a builtin demo payload (sweep, aligned, readback, template)",
    )
    payload_run.add_argument("--seed", type=_seed, default=1)
    payload_run.add_argument(
        "--slow-reference", action="store_true",
        help="execute via the interpreter oracle instead of the compiler",
    )
    payload_run.add_argument("--json", action="store_true", help="emit the result as JSON")
    payload_run.set_defaults(func=_cmd_payload_run)
    payload_validate = payload_sub.add_parser(
        "validate", help="parse, validate, and compile a payload program"
    )
    payload_validate.add_argument(
        "file", nargs="?", default=None,
        help="payload program as JSON (omit with --builtin)",
    )
    payload_validate.add_argument(
        "--builtin", default=None, metavar="NAME",
        help="validate a builtin demo payload",
    )
    payload_validate.set_defaults(func=_cmd_payload_validate)
    verify = subparsers.add_parser(
        "verify", help="statically verify payloads and CTA configurations"
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)
    verify_payload = verify_sub.add_parser(
        "payload", help="abstract-interpret a payload against a config"
    )
    verify_payload.add_argument(
        "file", nargs="?", default=None,
        help="payload program as JSON (omit with --builtin)",
    )
    verify_payload.add_argument(
        "--builtin", default=None, metavar="NAME",
        help="verify a builtin demo payload (sweep, aligned, readback, template)",
    )
    verify_payload.add_argument(
        "--config", default="cta", metavar="NAME",
        help="named config providing the address-space model "
        "(stock, cta, cta-multilevel, cta-anticell; default: %(default)s)",
    )
    verify_payload.add_argument(
        "--threshold", type=int, default=None,
        help="per-window flip threshold (default: the model's)",
    )
    verify_payload.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    verify_payload.add_argument(
        "--strict", action="store_true",
        help="treat UNKNOWN verdicts as failures (exit 1)",
    )
    verify_payload.set_defaults(func=_cmd_verify_payload)
    verify_config = verify_sub.add_parser(
        "config", help="model-check a kernel configuration's CTA layout"
    )
    verify_config.add_argument(
        "--config", default="cta", metavar="NAME",
        help="named config to check "
        "(stock, cta, cta-multilevel, cta-anticell; default: %(default)s)",
    )
    verify_config.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    verify_config.add_argument(
        "--strict", action="store_true",
        help="treat UNKNOWN verdicts as failures (exit 1)",
    )
    verify_config.set_defaults(func=_cmd_verify_config)
    check = subparsers.add_parser(
        "check", help="run the attack demo under runtime invariant sanitizers"
    )
    check.add_argument("--seed", type=_seed, default=1)
    check.add_argument(
        "--sanitize", action="store_true",
        help="enable the runtime sanitizer suite during the demo",
    )
    check.set_defaults(func=_cmd_check)
    chaos = subparsers.add_parser(
        "chaos", help="run the deterministic fault-injection campaign"
    )
    chaos.add_argument("--seed", type=_seed, default=1)
    chaos.add_argument(
        "--smoke", action="store_true",
        help="small fast segments (the CI gate configuration)",
    )
    chaos.add_argument(
        "--policy", default="fail-hard",
        choices=("fail-hard", "reclaim-retry", "screened-fallback"),
        help="ZONE_PTP exhaustion policy for the CTA segments",
    )
    chaos.add_argument(
        "--segments", type=int, default=6,
        help="total campaign segments (rotating scenario kinds)",
    )
    chaos.add_argument(
        "--max-segments", type=int, default=None, metavar="N",
        help="budget: stop after N segments this run (checkpoint keeps the rest)",
    )
    chaos.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write resumable campaign state to PATH after every segment",
    )
    chaos.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan segments out across N worker processes (same results as "
        "serial for the same seed; 1 = serial reference path)",
    )
    chaos.add_argument(
        "--warm-start", action="store_true",
        help="boot the segment worlds once into a shared-memory snapshot "
        "and attach copy-on-write per segment (identical results, less "
        "per-segment setup)",
    )
    chaos.add_argument(
        "--memo", action="store_true",
        help="memoize segment results in-process (content-addressed cache; "
        "identical segments replay byte-identically)",
    )
    chaos.add_argument(
        "--memo-dir", default=None, metavar="PATH",
        help="back the memo with an on-disk store at PATH (implies --memo; "
        "shared across runs and workers)",
    )
    chaos.add_argument(
        "--memo-verify", type=float, default=0.0, metavar="FRACTION",
        help="recompute this fraction of cache hits and fail on divergence "
        "(default: %(default)s)",
    )
    chaos.add_argument("--json", action="store_true", help="emit the report as JSON")
    chaos.set_defaults(func=_cmd_chaos)
    bench = subparsers.add_parser(
        "bench", help="hot-path microbenchmarks (vectorized vs scalar)"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller iteration counts (the CI smoke configuration)",
    )
    bench.add_argument(
        "--output", default="BENCH_hotpath.json", metavar="PATH",
        help="where to write the JSON report (default: %(default)s)",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed baseline to gate against; exit 1 on regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=2.0, metavar="FACTOR",
        help="allowed slowdown vs the baseline before failing (default: %(default)s)",
    )
    bench.set_defaults(func=_cmd_bench)
    resume = subparsers.add_parser(
        "resume", help="continue a chaos campaign from its checkpoint"
    )
    resume.add_argument("--checkpoint", required=True, metavar="PATH")
    resume.add_argument("--json", action="store_true", help="emit the report as JSON")
    resume.set_defaults(func=_cmd_resume)
    serve = subparsers.add_parser(
        "serve", help="run the long-lived campaign service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed when ready)")
    serve.add_argument("--workers", type=int, default=2,
                       help="supervised worker count")
    serve.add_argument("--mode", choices=("inline", "process"), default="inline",
                       help="segment execution mode (inline is deterministic)")
    serve.add_argument("--max-requeues", type=int, default=2,
                       help="re-enqueues per segment after worker deaths")
    serve.add_argument("--segment-timeout", type=float, default=None,
                       help="per-segment hang timeout in process mode (seconds)")
    serve.add_argument("--max-active", type=int, default=64,
                       help="admission cap on concurrent admitted requests")
    serve.add_argument("--tenant-cap", type=int, default=4,
                       help="admission cap per tenant")
    serve.add_argument("--faults", action="append", default=[], metavar="SPEC",
                       help="fault spec, e.g. worker-crash:p=1,max=2 (repeatable)")
    serve.add_argument("--seed", type=_seed, default=0,
                       help="seed for the injected fault schedules")
    serve.add_argument("--memo-dir", default=None, metavar="PATH",
                       help="share a content-addressed segment-result cache "
                       "across tenants, backed on disk at PATH")
    serve.add_argument("--memo-verify", type=float, default=0.0,
                       metavar="FRACTION",
                       help="recompute this fraction of cache hits and fail "
                       "on divergence (default: %(default)s)")
    serve.set_defaults(func=_cmd_serve)
    submit = subparsers.add_parser(
        "submit", help="submit one campaign to a running service"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=0)
    submit.add_argument("--name", default="cli-campaign")
    submit.add_argument("--target",
                        default="repro.perf.parallel:montecarlo_trial",
                        help="'module:qualname' segment callable")
    submit.add_argument("--segments", type=int, default=4)
    submit.add_argument("--seed", type=_seed, default=0)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--deadline", type=float, default=None,
                        help="relative deadline in seconds")
    submit.add_argument("--max-retries", type=int, default=3)
    submit.add_argument("--warm-start", action="store_true",
                        help="attach segments to a library snapshot")
    submit.add_argument("--kwargs", default="{}", metavar="JSON",
                        help="segment kwargs as a JSON object")
    submit.add_argument("--config", default="{}", metavar="JSON",
                        help="campaign config as a JSON object")
    submit.add_argument("--timeout", type=float, default=120.0,
                        help="client-side socket timeout (seconds)")
    submit.add_argument("--serial", action="store_true",
                        help="run serially in-process (byte-identity reference)")
    submit.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    submit.set_defaults(func=_cmd_submit)
    memo = subparsers.add_parser(
        "memo", help="inspect or prune the on-disk segment-result cache"
    )
    memo_sub = memo.add_subparsers(dest="memo_command", required=True)
    memo_stats = memo_sub.add_parser(
        "stats", help="entry and byte accounting for a memo directory"
    )
    memo_stats.add_argument("--dir", required=True, metavar="PATH",
                            help="memo store directory (as given to --memo-dir)")
    memo_stats.add_argument("--json", action="store_true",
                            help="emit the accounting as JSON")
    memo_stats.set_defaults(func=_cmd_memo_stats)
    memo_gc = memo_sub.add_parser(
        "gc", help="prune oldest entries until the store fits a byte budget"
    )
    memo_gc.add_argument("--dir", required=True, metavar="PATH",
                         help="memo store directory (as given to --memo-dir)")
    memo_gc.add_argument("--max-bytes", type=int, required=True,
                         help="target on-disk size after pruning")
    memo_gc.add_argument("--json", action="store_true",
                         help="emit the gc summary as JSON")
    memo_gc.set_defaults(func=_cmd_memo_gc)

    try:
        args = parser.parse_args(argv)
        return args.func(args)
    except CapacityError as exc:
        print(f"repro: capacity exhausted: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
