"""Command-line front end: regenerate any of the paper's tables/figures.

Usage::

    python -m repro table1          # attack catalogue
    python -m repro table2          # security analysis (Pf=1e-4)
    python -m repro table3          # pessimistic security analysis
    python -m repro table4          # CTA performance overhead
    python -m repro fig3            # live privilege-escalation demo
    python -m repro fig5            # monotonic-pointer demonstration
    python -m repro anticell        # low-water-mark-only ablation
    python -m repro capacity        # Section 6.2 capacity accounting
    python -m repro headline        # abstract's headline numbers
    python -m repro stats --trace 5 # demo attack + observability dump
    python -m repro lint            # static contract checks (RL001..RL005)
    python -m repro check --sanitize# attack demo under runtime sanitizers

All errors raised by the simulator derive from
:class:`repro.errors.ReproError`; the CLI catches the family at the top
level and exits with status 2 and a one-line message instead of a
traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.units import format_duration


def _seed(text: str) -> int:
    """argparse ``type=`` for ``--seed``: a non-negative integer.

    Raises :class:`ConfigurationError` (not ``ValueError``) so argparse
    lets it propagate to :func:`main`'s taxonomy handler — a bad seed
    exits 2 with a clean one-line message, not an argparse traceback.
    """
    try:
        value = int(text, 0)
    except ValueError:
        raise ConfigurationError(f"seed {text!r} is not an integer") from None
    if value < 0:
        raise ConfigurationError(f"seed must be non-negative, got {value}")
    return value


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.attacks.registry import KNOWN_ATTACKS

    print(f"{'Technique':38s} {'Victim Data':12s} {'Attack':42s} {'Platform':8s}")
    for record in KNOWN_ATTACKS:
        print(
            f"{record.reference:38s} {record.victim_data:12s} "
            f"{record.attack_class:42s} {record.platform:8s}"
        )
    return 0


def _print_security_rows(rows, paper) -> None:
    print(
        f"{'Configuration':30s} {'E[exploitable]':>15s} {'paper':>12s} "
        f"{'attack (days)':>14s} {'paper':>8s}"
    )
    for row in rows:
        expected_paper, days_paper = paper[row.label]
        print(
            f"{row.label:30s} {row.expected_exploitable:15.4g} {expected_paper:12.4g} "
            f"{row.attack_time_days:14.1f} {days_paper:8.1f}"
        )


def _cmd_table2(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import PAPER_TABLE2, paper_table2

    _print_security_rows(paper_table2(), PAPER_TABLE2)
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import PAPER_TABLE3, paper_table3

    _print_security_rows(paper_table3(), PAPER_TABLE3)
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.perf.report import format_report, table4_report

    rows = table4_report(repeats=args.repeats)
    print(format_report(rows))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro import build_protected_system, build_stock_system
    from repro.attacks import ProbabilisticPteAttack
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    stats = FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5)
    stock = build_stock_system()
    hammer = RowHammerModel(stock.module, stats, seed=args.seed)
    result = ProbabilisticPteAttack(kernel=stock, hammer=hammer).run(
        stock.create_process(), spray_mappings=96, max_rounds=3
    )
    print(f"stock kernel:     {result.outcome.value:18s} {result.detail}")

    protected = build_protected_system()
    hammer2 = RowHammerModel(protected.module, stats, seed=args.seed)
    result2 = ProbabilisticPteAttack(kernel=protected, hammer=hammer2).run(
        protected.create_process(), spray_mappings=96, max_rounds=3
    )
    print(f"CTA kernel:       {result2.outcome.value:18s} {result2.detail}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro import build_protected_system
    from repro.attacks import CtaBruteForceAttack
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    kernel = build_protected_system()
    hammer = RowHammerModel(
        kernel.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.998), seed=args.seed
    )
    attack = CtaBruteForceAttack(kernel=kernel, hammer=hammer)
    result = attack.run(kernel.create_process(), max_target_pages=3)
    monotonic = sum(1 for o in attack.observations if o.monotonic)
    print(f"Algorithm 1 on CTA kernel: {result.outcome.value}")
    print(f"corrupted PTE pointers observed: {len(attack.observations)}")
    print(f"moved monotonically downward:    {monotonic}")
    print("full-sweep modeled attack time:  "
          f"{format_duration(attack.full_sweep_modeled_time_s())}")
    return 0


def _cmd_anticell(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import PAPER_ANTICELL, anticell_ablation

    result = anticell_ablation()
    print("low-water-mark-only (anti-cell ZONE_PTP) ablation, 8GB/32MB:")
    print(
        f"  expected exploitable PTEs: {result.expected_exploitable:10.1f}"
        f"   (paper {PAPER_ANTICELL.expected_exploitable})"
    )
    print(
        f"  expected attack time:      {result.attack_time_hours:10.1f} h"
        f" (paper {PAPER_ANTICELL.attack_time_hours} h)"
    )
    return 0


def _cmd_capacity(_args: argparse.Namespace) -> int:
    from repro.analysis.capacity import capacity_sweep

    best, worst = capacity_sweep()
    print("Section 6.2 effective-capacity accounting (8GB, 32MB ZONE_PTP):")
    print(f"  best case loss:  {best.loss_percent:6.2f}%")
    print(f"  worst case loss: {worst.loss_percent:6.2f}%  (paper: 0.78%)")
    return 0


def _cmd_headline(_args: argparse.Namespace) -> int:
    from repro.analysis.tables import headline_numbers

    numbers = headline_numbers()
    print("abstract headline claims, recomputed:")
    print(f"  one vulnerable system in: {numbers['systems_per_vulnerable']:12.3g}"
          "   (paper: 2.04e5)")
    print(f"  attack time on it:        {numbers['attack_time_days']:12.1f} days"
          " (paper: 231)")
    print(f"  slowdown vs 20s attack:   {numbers['slowdown_vs_20s']:12.3g}x"
          "  (paper: ~1e6)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a demo hammer campaign and dump the collected metrics.

    Exercises every instrumented layer — spray (buddy/zones), hammer
    (DRAM flips), walk/check (MMU+TLB), refresh — then prints the
    default registry as a text table (default) or JSON (``--json``).
    ``--trace N`` appends the last N trace events.
    """
    from repro import build_stock_system, obs
    from repro.attacks import ProbabilisticPteAttack
    from repro.dram.refresh import RefreshScheduler
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    obs.reset()
    kernel = build_stock_system()
    hammer = RowHammerModel(
        kernel.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5), seed=args.seed
    )
    result = ProbabilisticPteAttack(kernel=kernel, hammer=hammer).run(
        kernel.create_process(), spray_mappings=48, max_rounds=2
    )
    refresh = RefreshScheduler(total_rows=kernel.module.geometry.total_rows)
    refresh.advance(0.064)
    refresh.refresh_all()

    registry = obs.get_registry()
    if args.json:
        print(registry.to_json())
    else:
        print(f"demo attack outcome: {result.outcome.value}")
        print(registry.format_table())
    if args.trace:
        print(f"\nlast {args.trace} trace events "
              f"({len(registry.trace)} retained, {registry.trace.dropped} dropped):")
        for event in registry.trace.events(last=args.trace):
            print(f"  {event.format()}")
    return 0


def _cmd_vm(_args: argparse.Namespace) -> int:
    from repro.dram.cells import CellTypeMap
    from repro.dram.geometry import DramGeometry
    from repro.dram.module import DramModule
    from repro.kernel import Hypervisor
    from repro.units import MIB, PAGE_SIZE

    geometry = DramGeometry(total_bytes=64 * MIB, row_bytes=16 * 1024, num_banks=2)
    host = DramModule(geometry, CellTypeMap.interleaved(geometry, period_rows=64))
    hypervisor = Hypervisor(host, hypervisor_zone_bytes=8 * MIB)
    for _ in range(3):
        vm = hypervisor.create_guest(data_bytes=8 * MIB, ptp_bytes=MIB)
        process = vm.kernel.create_process()
        vma = vm.kernel.mmap(process, 4 * PAGE_SIZE)
        vm.kernel.write_virtual(process, vma.start, b"vm data")
        print(f"VM {vm.vm_id}: data {vm.host_data_range[0]:#x}.."
              f"{vm.host_data_range[1]:#x}, PTP slice {vm.host_ptp_range[0]:#x}.."
              f"{vm.host_ptp_range[1]:#x}")
    hypervisor.verify_isolation()
    print("cross-VM CTA isolation verified (Section 7)")
    return 0


def _cmd_ecc(args: argparse.Namespace) -> int:
    from repro.dram.cells import CellTypeMap
    from repro.dram.ecc import DecodeStatus, EccWordStore
    from repro.dram.geometry import DramGeometry
    from repro.dram.module import DramModule
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel
    from repro.units import MIB

    geometry = DramGeometry(total_bytes=2 * MIB, row_bytes=16 * 1024, num_banks=2)
    module = DramModule(geometry, CellTypeMap.interleaved(geometry, period_rows=8))
    store = EccWordStore(module, base_address=16 * 1024)
    for value in range(512):
        store.store((value % 256) * 0x0101_0101_0101_0101)
    hammer = RowHammerModel(
        module, FlipStatistics(p_vulnerable=8e-2, p_with_leak=0.6), seed=args.seed
    )
    for aggressor in range(5):
        hammer.hammer(aggressor)
    counts = {}
    for result in store.scrub_all():
        counts[result.status] = counts.get(result.status, 0) + 1
    print("SECDED under heavy hammering (512 words):")
    for status in DecodeStatus:
        print(f"  {status.value:24s} {counts.get(status, 0)}")
    print("ECC corrects singles but multi-flip words escape — ECC is not a "
          "RowHammer defense (Section 2.3).")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's AST rule pack; non-zero exit when findings exist."""
    import json

    from repro.sanitize.lint import RULES, run_lint

    findings = run_lint(args.paths or None)
    if args.json:
        print(json.dumps(
            [
                {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
                for f in findings
            ],
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            by_rule = {}
            for finding in findings:
                by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
            summary = ", ".join(
                f"{count}x {rule} ({RULES[rule]})" for rule, count in sorted(by_rule.items())
            )
            print(f"\n{len(findings)} finding(s): {summary}")
        else:
            print("repro lint: no findings")
    return 1 if findings else 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the attack demo end-to-end, optionally under runtime sanitizers.

    Stage 1 attacks a stock kernel (the attack should succeed or at least
    run without tripping any invariant); stage 2 attacks a CTA kernel with
    idealized true-cells, where the monotonicity and no-self-reference
    sanitizers must stay silent — the paper's theorem, enforced live.

    Stage 2 uses the Section 7 multi-level sub-zones: with a single
    ZONE_PTP, a downward flip in an *intermediate* entry can redirect it
    to a different page table inside the zone, and the level confusion
    (a PD read as a PT) opens a self-reference window the sanitizer
    rightly flags. Per-level zones remove that reinterpretation, which is
    exactly the structural argument the multilevel extension makes.
    """
    from repro import build_protected_system, build_stock_system, obs, sanitize
    from repro.attacks import CtaBruteForceAttack, ProbabilisticPteAttack
    from repro.dram.rowhammer import FlipStatistics, RowHammerModel

    # Stage 1: stock kernel (buddy + zone sanitizers only; no CTA checkers).
    obs.reset()
    sanitize.reset()
    stock = build_stock_system()
    hammer = RowHammerModel(
        stock.module, FlipStatistics(p_vulnerable=3e-2, p_with_leak=0.5), seed=args.seed
    )
    if args.sanitize:
        sanitize.install(stock, hammer=hammer)
    result = ProbabilisticPteAttack(kernel=stock, hammer=hammer).run(
        stock.create_process(), spray_mappings=48, max_rounds=2
    )
    stock_checks = sanitize.get_suite().checks
    print(f"stock kernel:   {result.outcome.value:18s} "
          f"({stock_checks} sanitizer checks, 0 violations)")

    # Stage 2: CTA kernel with idealized true-cells (p_with_leak=1.0): every
    # flip in ZONE_PTP moves pointers down, so the monotonicity sanitizer
    # must never fire.
    obs.reset()
    sanitize.reset()
    protected = build_protected_system(multilevel=True)
    hammer2 = RowHammerModel(
        protected.module,
        FlipStatistics(p_vulnerable=3e-2, p_with_leak=1.0),
        seed=args.seed,
    )
    if args.sanitize:
        sanitize.install(protected, hammer=hammer2)
    result2 = ProbabilisticPteAttack(kernel=protected, hammer=hammer2).run(
        protected.create_process(), spray_mappings=48, max_rounds=2
    )
    attack = CtaBruteForceAttack(kernel=protected, hammer=hammer2)
    result3 = attack.run(protected.create_process(), max_target_pages=1, spray_mappings=24)
    protected.verify_cta_rules()
    if args.sanitize:
        sanitize.get_suite().check_now()
    cta_checks = sanitize.get_suite().checks
    print(f"CTA kernel:     {result2.outcome.value:18s} "
          f"({cta_checks} sanitizer checks, 0 violations)")
    print(f"Algorithm 1:    {result3.outcome.value:18s} "
          f"({len(attack.observations)} pointer corruptions, all monotonic)")
    if args.sanitize:
        print("sanitizers: all invariants held (buddy heap, zone containment, "
              "monotonicity, no-self-reference)")
    sanitize.reset()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="catalogue of published attacks").set_defaults(func=_cmd_table1)
    subparsers.add_parser("table2", help="security analysis, Pf=1e-4").set_defaults(func=_cmd_table2)
    subparsers.add_parser("table3", help="pessimistic security analysis").set_defaults(func=_cmd_table3)
    t4 = subparsers.add_parser("table4", help="CTA performance overhead")
    t4.add_argument("--repeats", type=int, default=3)
    t4.set_defaults(func=_cmd_table4)
    fig3 = subparsers.add_parser("fig3", help="live privilege-escalation demo")
    fig3.add_argument("--seed", type=_seed, default=1)
    fig3.set_defaults(func=_cmd_fig3)
    fig5 = subparsers.add_parser("fig5", help="monotonic-pointer demonstration")
    fig5.add_argument("--seed", type=_seed, default=1)
    fig5.set_defaults(func=_cmd_fig5)
    subparsers.add_parser("anticell", help="anti-cell ZONE_PTP ablation").set_defaults(func=_cmd_anticell)
    subparsers.add_parser("capacity", help="capacity-loss accounting").set_defaults(func=_cmd_capacity)
    subparsers.add_parser("headline", help="abstract headline numbers").set_defaults(func=_cmd_headline)
    subparsers.add_parser("vm", help="Section 7 virtual-machine support demo").set_defaults(func=_cmd_vm)
    stats = subparsers.add_parser(
        "stats", help="run a demo attack and dump observability metrics"
    )
    stats.add_argument("--seed", type=_seed, default=1)
    stats.add_argument("--json", action="store_true", help="emit metrics as JSON")
    stats.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="also print the last N trace events",
    )
    stats.set_defaults(func=_cmd_stats)
    ecc = subparsers.add_parser("ecc", help="SECDED-vs-RowHammer demo")
    ecc.add_argument("--seed", type=_seed, default=13)
    ecc.set_defaults(func=_cmd_ecc)
    lint = subparsers.add_parser(
        "lint", help="run the repo-specific static contract checks"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument("--json", action="store_true", help="emit findings as JSON")
    lint.set_defaults(func=_cmd_lint)
    check = subparsers.add_parser(
        "check", help="run the attack demo under runtime invariant sanitizers"
    )
    check.add_argument("--seed", type=_seed, default=1)
    check.add_argument(
        "--sanitize", action="store_true",
        help="enable the runtime sanitizer suite during the demo",
    )
    check.set_defaults(func=_cmd_check)

    try:
        args = parser.parse_args(argv)
        return args.func(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
