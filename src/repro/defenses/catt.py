"""CATT: physical kernel/user isolation ([9], Section 2.5).

CATT partitions physical memory so kernel pages are never physically
adjacent to user pages, which stops user-triggered hammering from reaching
kernel data. The paper identifies two breaks:

1. **Row remapping** — a vendor-remapped row's true physical neighbors
   can straddle the isolation boundary, silently reconnecting user rows
   to kernel rows.
2. **Double-owned pages** — pages shared between kernel and user (video
   buffers etc.) let an attacker allocate hammerable memory inside the
   kernel partition [10, 12].

Both are modelled operationally so the comparison benchmark can show the
isolation failing while CTA's cell-type invariant survives remapping.
"""

from __future__ import annotations

from typing import List, Optional

from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation
from repro.dram.remap import RowRemapper
from repro.errors import DefenseError


class Catt(Defense):
    """Boundary-based kernel/user physical partition."""

    def __init__(
        self,
        boundary_row: int = 0,
        total_rows: int = 0,
        double_owned_rows: Optional[List[int]] = None,
    ):
        if total_rows and not 0 < boundary_row < total_rows:
            raise DefenseError("boundary_row must fall inside the module")
        #: Rows below the boundary belong to user space, rows at or above
        #: it to the kernel.
        self.boundary_row = boundary_row
        self.total_rows = total_rows
        self.double_owned_rows = list(double_owned_rows or [])

    @property
    def name(self) -> str:
        """Display name."""
        return "catt"

    def cost(self) -> DefenseCost:
        """A sophisticated allocator rewrite, software-only."""
        return DefenseCost(
            deployable_on_legacy=True,
            software_complexity_loc=2000,
            memory_overhead_percent=0.1,
        )

    # -- operational checks -----------------------------------------------
    def kernel_rows(self) -> range:
        """The isolated kernel partition, as rows."""
        return range(self.boundary_row, self.total_rows)

    def isolation_violations(self, remapper: RowRemapper) -> List[int]:
        """Rows whose remapping crosses the kernel/user boundary."""
        return remapper.breaks_isolation(self.kernel_rows())

    def attacker_reaches_kernel(self, remapper: Optional[RowRemapper] = None) -> bool:
        """Whether a user-level attacker can hammer kernel rows.

        True when either break applies: a boundary-crossing remap or a
        double-owned page inside the kernel partition.
        """
        if any(row >= self.boundary_row for row in self.double_owned_rows):
            return True
        if remapper is not None and self.isolation_violations(remapper):
            return True
        return False

    def evaluate(self) -> DefenseEvaluation:
        """Blocks the basic attacks, with the two published breaks."""
        return DefenseEvaluation(
            defense_name=self.name,
            blocks_probabilistic_pte=True,
            blocks_deterministic_pte=True,
            residual_weaknesses=[
                "DRAM row re-mapping breaks the kernel/user physical isolation",
                "double-owned pages (e.g. video buffers) re-enable PTE attacks [10, 12]",
            ],
            notes="isolation is spatial; CTA's invariant is per-cell and survives remapping",
        )
