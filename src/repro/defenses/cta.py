"""CTA memory allocation as a Defense comparator.

Wraps the real implementation (:mod:`repro.kernel.cta`) in the common
defense interface so the comparison benchmarks can line it up against the
alternatives. The costs reflect the paper's measurements: 18 lines of
kernel code, no performance overhead (Table 4), worst-case 0.78% memory
loss, no hardware changes, legacy deployable.
"""

from __future__ import annotations

from repro.analysis.exploitability import expected_exploitable_ptes
from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation
from repro.units import GIB, MIB


class CtaDefense(Defense):
    """The paper's contribution, viewed through the comparator interface."""

    def __init__(self, total_bytes: int = 8 * GIB, ptp_bytes: int = 32 * MIB,
                 restricted: bool = True):
        self.total_bytes = total_bytes
        self.ptp_bytes = ptp_bytes
        self.restricted = restricted

    @property
    def name(self) -> str:
        """Display name."""
        return "cta"

    def cost(self) -> DefenseCost:
        """The paper's measured deployment profile."""
        return DefenseCost(
            energy_multiplier=1.0,
            performance_overhead_percent=0.0,
            memory_overhead_percent=0.78,  # worst case, Section 6.2
            requires_hardware_change=False,
            deployable_on_legacy=True,
            software_complexity_loc=18,
        )

    def expected_exploitable(self) -> float:
        """Expected exploitable PTEs for this configuration (Section 5)."""
        return expected_exploitable_ptes(
            self.total_bytes, self.ptp_bytes, 1e-4, 0.002, restricted=self.restricted
        )

    def evaluate(self) -> DefenseEvaluation:
        """Structurally blocks both PTE attack families."""
        return DefenseEvaluation(
            defense_name=self.name,
            blocks_probabilistic_pte=True,
            blocks_deterministic_pte=True,
            residual_weaknesses=[],
            notes=(
                "destroys PTE self-reference via monotonic pointers; expected "
                f"exploitable PTEs = {self.expected_exploitable():.3g}"
            ),
        )
