"""Increased DRAM refresh rate (paper Section 2.5, first countermeasure).

Refreshing rows more often shrinks the window in which an aggressor can
accumulate activations, reducing — but never eliminating — flip
probability, at a directly proportional energy cost. The paper cites [19]:
even high refresh rates give no guarantee.
"""

from __future__ import annotations

from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation
from repro.errors import DefenseError


class IncreasedRefreshRate(Defense):
    """Refresh every ``64 / multiplier`` ms instead of every 64 ms."""

    def __init__(self, multiplier: float = 2.0):
        if multiplier < 1.0:
            raise DefenseError("refresh multiplier must be >= 1")
        self.multiplier = multiplier

    @property
    def name(self) -> str:
        """Display name."""
        return f"refresh-x{self.multiplier:g}"

    def cost(self) -> DefenseCost:
        """Energy scales with the refresh rate; no software change."""
        return DefenseCost(
            energy_multiplier=self.multiplier,
            performance_overhead_percent=0.5 * (self.multiplier - 1.0),
            deployable_on_legacy=True,
        )

    def flip_probability_scale(self) -> float:
        """Fewer activations fit per window: probability scales as 1/m."""
        return 1.0 / self.multiplier

    def evaluate(self) -> DefenseEvaluation:
        """Attacks slow down but remain possible."""
        return DefenseEvaluation(
            defense_name=self.name,
            blocks_probabilistic_pte=False,
            blocks_deterministic_pte=False,
            residual_weaknesses=[
                "no guarantee even at high refresh rates [19]",
                f"{self.multiplier:g}x refresh energy",
            ],
            notes="reduces flip probability linearly; does not change attack structure",
        )
