"""ANVIL: performance-counter-based RowHammer detection ([3], Section 2.5).

ANVIL samples CPU performance counters to spot the cache-miss/row-access
signature of hammering and responds by refreshing the suspected victims.
The paper's objections: it needs the right counters, adds monitoring
overhead, and — being heuristic — produces false positives.

The model here is an operational detector: feed it per-interval row-access
counts and it flags intervals whose single-row activation rate crosses a
threshold, with a configurable benign-workload false-positive rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation
from repro.errors import DefenseError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of scanning one access-sample interval."""

    flagged_rows: tuple
    is_attack_interval: bool

    @property
    def detected(self) -> bool:
        """Whether anything was flagged."""
        return bool(self.flagged_rows)


class Anvil(Defense):
    """Heuristic detector with threshold + false-positive behaviour."""

    def __init__(
        self,
        activation_threshold: int = 50_000,
        false_positive_rate: float = 0.01,
        counters_available: bool = True,
        seed: SeedLike = None,
    ):
        if activation_threshold <= 0:
            raise DefenseError("activation_threshold must be positive")
        if not 0 <= false_positive_rate < 1:
            raise DefenseError("false_positive_rate must be in [0, 1)")
        self.activation_threshold = activation_threshold
        self.false_positive_rate = false_positive_rate
        self.counters_available = counters_available
        self._rng = make_rng(seed)
        self.intervals_scanned = 0
        self.false_positives = 0
        self.true_detections = 0

    @property
    def name(self) -> str:
        """Display name."""
        return "anvil"

    def cost(self) -> DefenseCost:
        """Continuous counter sampling costs a few percent."""
        return DefenseCost(
            performance_overhead_percent=2.0,
            deployable_on_legacy=True,
            software_complexity_loc=2000,
        )

    def scan_interval(self, row_activations: Dict[int, int]) -> DetectionOutcome:
        """Scan one sampling interval of per-row activation counts.

        Rows over the threshold are flagged (true detection when any row
        actually hammers); benign intervals are misflagged at the
        configured false-positive rate.
        """
        if not self.counters_available:
            return DetectionOutcome(flagged_rows=(), is_attack_interval=False)
        self.intervals_scanned += 1
        hot = tuple(
            sorted(row for row, count in row_activations.items() if count >= self.activation_threshold)
        )
        if hot:
            self.true_detections += 1
            return DetectionOutcome(flagged_rows=hot, is_attack_interval=True)
        if self._rng.random() < self.false_positive_rate:
            self.false_positives += 1
            suspects = tuple(sorted(row_activations)[:1])
            return DetectionOutcome(flagged_rows=suspects, is_attack_interval=False)
        return DetectionOutcome(flagged_rows=(), is_attack_interval=False)

    def evaluate(self) -> DefenseEvaluation:
        """Detects sustained hammering where counters exist."""
        weaknesses: List[str] = [
            "heuristic: false positives on memory-intensive benign workloads",
            "monitoring overhead from performance-counter sampling",
        ]
        if not self.counters_available:
            weaknesses.insert(0, "CPU lacks the required performance counters")
        return DefenseEvaluation(
            defense_name=self.name,
            blocks_probabilistic_pte=self.counters_available,
            blocks_deterministic_pte=self.counters_available,
            residual_weaknesses=weaknesses,
            notes="the paper proposes pairing ANVIL with CTA for pessimistic DRAM scaling",
        )
