"""RowHammer countermeasure comparators (paper Section 2.5).

Each defense models the mechanism and the costs/weaknesses the paper
attributes to it, so the comparison benchmarks can rank CTA against the
published alternatives on the axes the paper argues about: energy cost,
hardware changes, legacy deployability, performance overhead, and
residual attack surface.
"""

from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation
from repro.defenses.baseline import NoDefense
from repro.defenses.refresh import IncreasedRefreshRate
from repro.defenses.para import Para
from repro.defenses.anvil import Anvil
from repro.defenses.catt import Catt
from repro.defenses.cta import CtaDefense

__all__ = [
    "Anvil",
    "Catt",
    "CtaDefense",
    "Defense",
    "DefenseCost",
    "DefenseEvaluation",
    "IncreasedRefreshRate",
    "NoDefense",
    "Para",
]


def all_defenses():
    """One instance of every comparator with default parameters."""
    return [
        NoDefense(),
        IncreasedRefreshRate(),
        Para(),
        Anvil(),
        Catt(),
        CtaDefense(),
    ]
