"""Common defense interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class DefenseCost:
    """Deployment costs along the axes the paper compares (Section 2.5)."""

    energy_multiplier: float = 1.0
    performance_overhead_percent: float = 0.0
    memory_overhead_percent: float = 0.0
    requires_hardware_change: bool = False
    deployable_on_legacy: bool = True
    software_complexity_loc: int = 0


@dataclass
class DefenseEvaluation:
    """How a defense fares against the PTE privilege-escalation threat."""

    defense_name: str
    blocks_probabilistic_pte: bool
    blocks_deterministic_pte: bool
    residual_weaknesses: List[str] = field(default_factory=list)
    notes: str = ""

    @property
    def fully_blocks_pte_attacks(self) -> bool:
        """Both attack families blocked with no residual weakness."""
        return (
            self.blocks_probabilistic_pte
            and self.blocks_deterministic_pte
            and not self.residual_weaknesses
        )


class Defense(abc.ABC):
    """A RowHammer countermeasure."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Display name."""

    @abc.abstractmethod
    def cost(self) -> DefenseCost:
        """Deployment cost profile."""

    @abc.abstractmethod
    def evaluate(self) -> DefenseEvaluation:
        """Effectiveness against PTE-based privilege escalation."""

    def flip_probability_scale(self) -> float:
        """Multiplier the defense applies to RowHammer flip probability.

        1.0 means the physical effect is untouched (software defenses);
        hardware mitigations return < 1.0.
        """
        return 1.0
