"""PARA: probabilistic adjacent-row activation (paper Section 2.5, [19]).

On every row close, the memory controller refreshes the neighbors with
probability ``p``. A hammer burst of ``k`` activations survives without a
neighbor refresh with probability ``(1 - p)^k``, which is astronomically
small for realistic bursts — but the mechanism requires memory-controller
(or DRAM-chip) changes and cannot be retrofitted to deployed systems,
which is the paper's objection.
"""

from __future__ import annotations

from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation
from repro.errors import DefenseError


class Para(Defense):
    """Memory-controller-level probabilistic neighbor refresh."""

    def __init__(self, refresh_probability: float = 0.001, hammer_burst: int = 100_000):
        if not 0 < refresh_probability < 1:
            raise DefenseError("refresh_probability must be in (0, 1)")
        if hammer_burst <= 0:
            raise DefenseError("hammer_burst must be positive")
        self.refresh_probability = refresh_probability
        self.hammer_burst = hammer_burst

    @property
    def name(self) -> str:
        """Display name."""
        return f"para-p{self.refresh_probability:g}"

    def cost(self) -> DefenseCost:
        """Tiny runtime cost, but new silicon."""
        return DefenseCost(
            energy_multiplier=1.0 + self.refresh_probability,
            performance_overhead_percent=0.2,
            requires_hardware_change=True,
            deployable_on_legacy=False,
        )

    def flip_probability_scale(self) -> float:
        """Probability a full burst escapes every probabilistic refresh."""
        return (1.0 - self.refresh_probability) ** self.hammer_burst

    def evaluate(self) -> DefenseEvaluation:
        """Effective where deployable — which excludes legacy systems."""
        return DefenseEvaluation(
            defense_name=self.name,
            blocks_probabilistic_pte=True,
            blocks_deterministic_pte=True,
            residual_weaknesses=[
                "requires memory-controller or DRAM-chip modification",
                "cannot be applied to legacy systems",
            ],
            notes="statistically eliminates sustained hammering on new hardware",
        )
