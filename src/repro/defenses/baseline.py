"""The undefended baseline."""

from __future__ import annotations

from repro.defenses.base import Defense, DefenseCost, DefenseEvaluation


class NoDefense(Defense):
    """A stock system: every PTE attack in Table 1 applies."""

    @property
    def name(self) -> str:
        """Display name."""
        return "none"

    def cost(self) -> DefenseCost:
        """Free, by definition."""
        return DefenseCost()

    def evaluate(self) -> DefenseEvaluation:
        """Blocks nothing."""
        return DefenseEvaluation(
            defense_name=self.name,
            blocks_probabilistic_pte=False,
            blocks_deterministic_pte=False,
            residual_weaknesses=["all published PTE attacks succeed"],
        )
