"""DRAM module geometry and physical-address decomposition.

A module is modelled at the level the paper cares about: a linear physical
address space divided into banks, each bank a 2-D array of rows x columns
(Figure 1). Rows are the unit of RowHammer interaction and of cell typing;
we therefore keep the address math exact and well tested.

The default geometry follows the paper's working numbers: 128 KiB rows,
true/anti-cell regions alternating every 512 rows (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressError, ConfigurationError
from repro.units import DEFAULT_ROW_SIZE, GIB, is_power_of_two


@dataclass(frozen=True)
class RowAddress:
    """A decoded physical location: which bank, which row, byte offset."""

    bank: int
    row: int
    column: int

    def __post_init__(self) -> None:
        if self.bank < 0 or self.row < 0 or self.column < 0:
            raise AddressError(f"negative component in {self!r}")


@dataclass(frozen=True)
class DramGeometry:
    """Shape of one simulated DRAM module.

    Parameters
    ----------
    total_bytes:
        Capacity of the module. Must be a power-of-two multiple of the row
        size times the bank count.
    row_bytes:
        Bytes per DRAM row (the paper uses 128 KiB [37]).
    num_banks:
        Logical banks. Consecutive physical rows are laid out within a bank
        (row-major per bank) — this matches the contiguous-row model that
        both the cell-type interleave and RowHammer adjacency assume.
    """

    total_bytes: int
    row_bytes: int = DEFAULT_ROW_SIZE
    num_banks: int = 8

    # Derived fields, filled in __post_init__.
    rows_per_bank: int = field(init=False)
    total_rows: int = field(init=False)

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ConfigurationError("total_bytes must be positive")
        if not is_power_of_two(self.row_bytes):
            raise ConfigurationError(f"row_bytes {self.row_bytes} must be a power of two")
        if self.num_banks <= 0:
            raise ConfigurationError("num_banks must be positive")
        if self.total_bytes % (self.row_bytes * self.num_banks) != 0:
            raise ConfigurationError(
                f"total_bytes {self.total_bytes} not divisible by "
                f"row_bytes*num_banks = {self.row_bytes * self.num_banks}"
            )
        object.__setattr__(self, "rows_per_bank", self.total_bytes // self.row_bytes // self.num_banks)
        object.__setattr__(self, "total_rows", self.total_bytes // self.row_bytes)

    # ------------------------------------------------------------------
    # Address math. The linear layout is: global row index = addr // row_bytes,
    # bank = global_row // rows_per_bank. Rows within a bank are physically
    # adjacent in index order, which is what RowHammer adjacency uses.
    # ------------------------------------------------------------------
    def check_address(self, address: int, length: int = 1) -> None:
        """Raise :class:`AddressError` unless [address, address+length) fits."""
        if address < 0 or length < 0 or address + length > self.total_bytes:
            raise AddressError(
                f"range [{address:#x}, {address + length:#x}) outside module "
                f"of {self.total_bytes:#x} bytes"
            )

    def row_of_address(self, address: int) -> int:
        """Global row index containing ``address``."""
        self.check_address(address)
        return address // self.row_bytes

    def row_base_address(self, row: int) -> int:
        """First physical address of global row ``row``."""
        if not 0 <= row < self.total_rows:
            raise AddressError(f"row {row} outside [0, {self.total_rows})")
        return row * self.row_bytes

    def decompose(self, address: int) -> RowAddress:
        """Decode ``address`` into (bank, in-bank row, column)."""
        self.check_address(address)
        global_row = address // self.row_bytes
        return RowAddress(
            bank=global_row // self.rows_per_bank,
            row=global_row % self.rows_per_bank,
            column=address % self.row_bytes,
        )

    def compose(self, location: RowAddress) -> int:
        """Inverse of :meth:`decompose`."""
        if location.bank >= self.num_banks:
            raise AddressError(f"bank {location.bank} outside [0, {self.num_banks})")
        if location.row >= self.rows_per_bank:
            raise AddressError(f"row {location.row} outside [0, {self.rows_per_bank})")
        if location.column >= self.row_bytes:
            raise AddressError(f"column {location.column} outside [0, {self.row_bytes})")
        global_row = location.bank * self.rows_per_bank + location.row
        return global_row * self.row_bytes + location.column

    def rows_of_byte_range(self, start: int, end: int) -> range:
        """Global rows overlapping the byte range ``[start, end)``.

        ``end`` is exclusive and clamped to the module, so zone spans
        that round up past the last row stay in bounds; an empty range
        yields no rows.
        """
        if start < 0:
            raise AddressError(f"range start {start:#x} is negative")
        end = min(end, self.total_bytes)
        if end <= start:
            return range(0)
        first = start // self.row_bytes
        last = (end - 1) // self.row_bytes
        return range(first, last + 1)

    def bank_of_row(self, row: int) -> int:
        """Bank that global row ``row`` belongs to."""
        if not 0 <= row < self.total_rows:
            raise AddressError(f"row {row} outside [0, {self.total_rows})")
        return row // self.rows_per_bank

    def neighbors(self, row: int) -> tuple:
        """Physically adjacent rows in the same bank (RowHammer victims).

        A double-sided hammer on ``row`` disturbs these rows. Rows at bank
        edges have a single neighbor.
        """
        bank = self.bank_of_row(row)
        candidates = []
        for adjacent in (row - 1, row + 1):
            if 0 <= adjacent < self.total_rows and self.bank_of_row(adjacent) == bank:
                candidates.append(adjacent)
        return tuple(candidates)

    @classmethod
    def small(cls, total_bytes: int = 64 * 1024 * 1024, row_bytes: int = 64 * 1024, num_banks: int = 4) -> "DramGeometry":
        """A scaled-down geometry for live attack simulation and tests."""
        return cls(total_bytes=total_bytes, row_bytes=row_bytes, num_banks=num_banks)

    @classmethod
    def desktop_8gb(cls) -> "DramGeometry":
        """The paper's i7-6700 prototype: 8 GiB, 128 KiB rows."""
        return cls(total_bytes=8 * GIB)

    @classmethod
    def server_128gb(cls) -> "DramGeometry":
        """The paper's Xeon Silver 4110 prototype: 128 GiB."""
        return cls(total_bytes=128 * GIB)
