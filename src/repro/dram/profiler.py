"""System-level identification of true-cell and anti-cell regions.

Section 2.2: write all-'1's, disable refresh, wait longer than the
retention time of most cells, read back. A row that reads '0's is made of
true-cells (charged state meant '1'), a row that reads '1's is anti-cells.
This is the one-time test a CTA deployment runs to find the true-cell
regions used for ``ZONE_PTP``.

The profiler only uses module read/write/decay operations — it never peeks
at the ground-truth :class:`~repro.dram.cells.CellTypeMap`, mirroring the
real procedure's constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dram.cells import CellType, CellTypeMap
from repro.dram.module import DramModule
from repro.dram.refresh import RefreshScheduler
from repro.errors import DramError


@dataclass(frozen=True)
class ProfileReport:
    """Outcome of a profiling pass."""

    inferred_map: CellTypeMap
    ambiguous_rows: Tuple[int, ...]
    rows_tested: int

    @property
    def clean(self) -> bool:
        """True when every row classified unambiguously."""
        return not self.ambiguous_rows


class CellTypeProfiler:
    """Runs the write-1s / decay / read-back test over a module."""

    def __init__(self, module: DramModule, refresh: Optional[RefreshScheduler] = None):
        self._module = module
        self._refresh = refresh or RefreshScheduler(module.geometry.total_rows)

    def profile(self, majority_threshold: float = 0.99) -> ProfileReport:
        """Classify every row of the module.

        A row is a true-cell row when at least ``majority_threshold`` of its
        bits read back '0' after decay (and anti when they read '1'); rows
        between the thresholds are reported ambiguous and classified by
        simple majority.
        """
        if not 0.5 < majority_threshold <= 1.0:
            raise DramError("majority_threshold must be in (0.5, 1.0]")
        geometry = self._module.geometry
        self._refresh.disable()
        try:
            row_types: List[CellType] = []
            ambiguous: List[int] = []
            for row in range(geometry.total_rows):
                row_types.append(self._classify_row(row, majority_threshold, ambiguous))
        finally:
            self._refresh.enable()
        inferred = CellTypeMap.from_rows(geometry, row_types)
        return ProfileReport(
            inferred_map=inferred,
            ambiguous_rows=tuple(ambiguous),
            rows_tested=geometry.total_rows,
        )

    def _classify_row(
        self, row: int, majority_threshold: float, ambiguous: List[int]
    ) -> CellType:
        # Step 1: write all '1's.
        self._module.fill_row(row, 0xFF)
        # Step 2: refresh disabled, wait past most retention times -> full decay.
        self._module.decay_row_fully(row)
        # Step 3: read back and count ones.
        data = np.frombuffer(self._module.read_row(row), dtype=np.uint8)
        ones = int(np.unpackbits(data).sum())
        total = data.size * 8
        zero_fraction = 1.0 - ones / total
        if zero_fraction >= majority_threshold:
            return CellType.TRUE
        if zero_fraction <= 1.0 - majority_threshold:
            return CellType.ANTI
        ambiguous.append(row)
        return CellType.TRUE if zero_fraction >= 0.5 else CellType.ANTI

    def verify_against(self, truth: CellTypeMap) -> float:
        """Fraction of rows the profiler classifies identically to ``truth``.

        Convenience for experiments; returns accuracy in [0, 1].
        """
        report = self.profile()
        inferred = report.inferred_map.as_array()
        actual = truth.as_array()
        return float((inferred == actual).mean())
