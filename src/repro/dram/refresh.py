"""DRAM refresh scheduling.

JEDEC mandates that every row be refreshed within a 64 ms window
(Section 2.1). The scheduler tracks simulated time and per-row refresh
stamps; it also supports a *rate multiplier*, which is the knob the
"increase the refresh rate" countermeasure turns (Section 2.5) — at
multiplier 2 rows refresh every 32 ms, halving the hammer window.
"""

from __future__ import annotations

from typing import Dict, List

from repro import faults, obs
from repro.errors import ConfigurationError
from repro.units import REFRESH_INTERVAL_S


class RefreshScheduler:
    """Tracks per-row refresh deadlines over simulated time."""

    def __init__(self, total_rows: int, rate_multiplier: float = 1.0):
        if total_rows <= 0:
            raise ConfigurationError("total_rows must be positive")
        if rate_multiplier <= 0:
            raise ConfigurationError("rate_multiplier must be positive")
        self._total_rows = total_rows
        self._rate_multiplier = rate_multiplier
        self._now = 0.0
        self._last_refresh: Dict[int, float] = {}
        self._enabled = True
        #: Total refresh operations performed (energy-cost proxy).
        self.refresh_ops = 0

    @property
    def interval_s(self) -> float:
        """Effective refresh interval after the rate multiplier."""
        return REFRESH_INTERVAL_S / self._rate_multiplier

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def enabled(self) -> bool:
        """Whether refresh is active (the profiler disables it)."""
        return self._enabled

    def disable(self) -> None:
        """Turn refresh off (system-level cell-typing test, Section 2.2)."""
        self._enabled = False

    def enable(self) -> None:
        """Re-enable refresh; all rows count as refreshed now."""
        self._enabled = True
        self._last_refresh.clear()
        self._now = self._now  # rows default to refreshed-at-now semantics

    def advance(self, seconds: float) -> None:
        """Advance simulated time."""
        if seconds < 0:
            raise ConfigurationError("cannot advance time backwards")
        self._now += seconds

    def refresh_row(self, row: int) -> None:
        """Record a refresh of ``row`` at the current time."""
        self._check_row(row)
        overdue = self._now - self._last_refresh.get(row, 0.0) > self.interval_s
        self._last_refresh[row] = self._now
        self.refresh_ops += 1
        obs.inc("refresh.rows_refreshed")
        if overdue:
            obs.inc("refresh.rows_restored_late")

    def refresh_all(self) -> None:
        """Refresh every row (one full refresh cycle).

        An armed ``refresh-stall`` fault suppresses the sweep entirely:
        rows keep ageing, modelling a stalled refresh engine.
        """
        if faults.get_plane().armed and faults.notify("refresh.sweep", scheduler=self):
            return
        overdue = len(self.overdue_rows()) if self._enabled else 0
        for row in range(self._total_rows):
            self._last_refresh[row] = self._now
        self.refresh_ops += self._total_rows
        obs.inc("refresh.sweeps")
        obs.inc("refresh.rows_refreshed", self._total_rows)
        if overdue:
            obs.inc("refresh.rows_restored_late", overdue)
        obs.trace("refresh.sweep", rows=self._total_rows, overdue=overdue, t=self._now)

    def time_since_refresh(self, row: int) -> float:
        """Seconds since ``row`` was last refreshed (or since t=0)."""
        self._check_row(row)
        return self._now - self._last_refresh.get(row, 0.0)

    def overdue_rows(self) -> List[int]:
        """Rows whose refresh deadline has passed while refresh is enabled."""
        if not self._enabled:
            return list(range(self._total_rows))
        deadline = self.interval_s
        return [
            row
            for row in range(self._total_rows)
            if self._now - self._last_refresh.get(row, 0.0) > deadline
        ]

    def energy_cost_per_second(self) -> float:
        """Relative refresh energy (1.0 at the nominal rate).

        Doubling the refresh rate doubles refresh energy — the cost the
        paper's Section 2.5 calls out for the naive countermeasure.
        """
        return self._rate_multiplier

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._total_rows:
            raise ConfigurationError(f"row {row} outside [0, {self._total_rows})")
