"""True-cell / anti-cell typing of DRAM rows.

Section 2.1 of the paper: because sense amplifiers are shared between two
bitlines, half the cells store '1' as the charged state (*true-cells*) and
half store '0' as charged (*anti-cells*). Charge leak therefore flips
true-cells ``1 -> 0`` and anti-cells ``0 -> 1``. Each row is uniformly one
type, and types alternate every N physical rows (N = 512 commonly); some
modules instead have enormous true-cell majorities (1000:1).

:class:`CellTypeMap` is the ground-truth oracle used by the DRAM simulator;
the OS is *not* allowed to read it directly — it must run the
:mod:`~repro.dram.profiler` test, mirroring how a real deployment discovers
cell types (Section 2.2).

The canonical layouts (:meth:`~CellTypeMap.interleaved`,
:meth:`~CellTypeMap.uniform`, :meth:`~CellTypeMap.majority_true`) are
stored *procedurally* — a rule tuple plus a sparse override dict for
swapped rows — never as a dense per-row array, so a multi-GB geometry
costs O(1) memory for its typing (lint rule RL012 enforces the absence of
``total_rows``-proportional allocations in ``dram/``). Range queries
evaluate the rule in bounded chunks. Only :meth:`~CellTypeMap.from_rows`
keeps an explicit caller-provided array (adversarial test layouts).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dram.geometry import DramGeometry
from repro.units import DEFAULT_CELL_INTERLEAVE_ROWS

#: Rows evaluated per chunk by the range queries below. 1 Mi rows covers a
#: 128 GiB module with 128 KiB rows in one chunk while bounding transient
#: memory at ~1 MiB of bools.
_CHUNK_ROWS = 1 << 20


class CellType(enum.Enum):
    """Which logic value a charged capacitor represents in a row."""

    TRUE = "true"
    ANTI = "anti"

    @property
    def leak_direction(self) -> Tuple[int, int]:
        """(from_bit, to_bit) of the dominant charge-leak error."""
        return (1, 0) if self is CellType.TRUE else (0, 1)

    @property
    def charged_value(self) -> int:
        """Logic value stored by a fully charged capacitor."""
        return 1 if self is CellType.TRUE else 0

    @property
    def discharged_value(self) -> int:
        """Logic value a cell decays toward as charge leaks."""
        return 1 - self.charged_value

    def opposite(self) -> "CellType":
        """The other cell type."""
        return CellType.ANTI if self is CellType.TRUE else CellType.TRUE


class CellTypeMap:
    """Per-row cell types for a DRAM module.

    The canonical construction is :meth:`interleaved` (alternate every N
    rows), stored as a procedural rule. :meth:`from_rows` accepts an
    arbitrary layout, used for the 1000:1 true-cell-majority modules and
    for adversarial test cases.
    """

    def __init__(self, geometry: DramGeometry, row_types: Sequence[CellType]):
        if len(row_types) != geometry.total_rows:
            raise ConfigurationError(
                f"row_types has {len(row_types)} entries, geometry has "
                f"{geometry.total_rows} rows"
            )
        self._geometry = geometry
        # Explicit layouts keep a compact bool array (caller-sized by
        # definition); procedural constructors never allocate one.
        self._rule: Tuple = ("dense",)
        self._dense: Optional[np.ndarray] = np.array(
            [t is CellType.TRUE for t in row_types], dtype=bool
        )
        # Sparse row -> is_true overrides layered over the rule (swap_rows).
        self._overrides: Dict[int, bool] = {}

    @classmethod
    def _procedural(cls, geometry: DramGeometry, rule: Tuple) -> "CellTypeMap":
        mapping = cls.__new__(cls)
        mapping._geometry = geometry
        mapping._rule = rule
        mapping._dense = None
        mapping._overrides = {}
        return mapping

    # -- constructors ---------------------------------------------------
    @classmethod
    def interleaved(
        cls,
        geometry: DramGeometry,
        period_rows: int = DEFAULT_CELL_INTERLEAVE_ROWS,
        first_type: CellType = CellType.TRUE,
    ) -> "CellTypeMap":
        """Alternate true/anti regions every ``period_rows`` rows.

        This is the paper's default model (N = 512, Section 6.1) and makes
        each contiguous same-type region ``period_rows * row_bytes`` large
        (64 MiB with 512 x 128 KiB).
        """
        if period_rows <= 0:
            raise ConfigurationError("period_rows must be positive")
        return cls._procedural(
            geometry, ("interleaved", int(period_rows), first_type is CellType.TRUE)
        )

    @classmethod
    def uniform(cls, geometry: DramGeometry, cell_type: CellType) -> "CellTypeMap":
        """Every row the same type (e.g. an all-anti ZONE_PTP ablation)."""
        return cls._procedural(geometry, ("uniform", cell_type is CellType.TRUE))

    @classmethod
    def majority_true(
        cls, geometry: DramGeometry, anti_every: int = 1000
    ) -> "CellTypeMap":
        """Mostly true-cells with one anti-cell row per ``anti_every`` rows.

        Models the modules with very large true:anti ratios reported in
        Section 2.2.
        """
        if anti_every <= 1:
            raise ConfigurationError("anti_every must be > 1")
        return cls._procedural(geometry, ("majority", int(anti_every)))

    @classmethod
    def from_rows(cls, geometry: DramGeometry, row_types: Sequence[CellType]) -> "CellTypeMap":
        """Explicit per-row layout."""
        return cls(geometry, row_types)

    # -- rule evaluation --------------------------------------------------
    def _row_is_true(self, row: int) -> bool:
        """O(1) rule evaluation for one row (overrides win)."""
        override = self._overrides.get(row)
        if override is not None:
            return override
        kind = self._rule[0]
        if kind == "dense":
            return bool(self._dense[row])  # type: ignore[index]
        if kind == "interleaved":
            period, first_true = self._rule[1], self._rule[2]
            even_block = (row // period) % 2 == 0
            return even_block if first_true else not even_block
        if kind == "uniform":
            return bool(self._rule[1])
        anti_every = self._rule[1]  # majority
        return row % anti_every != anti_every - 1

    def true_mask(self, start_row: int, end_row: int) -> np.ndarray:
        """Boolean mask (True => true-cell) for rows ``[start_row, end_row)``.

        Evaluates the procedural rule vectorized over the range — the
        allocation is proportional to the *queried span*, never to
        ``total_rows`` — then layers the sparse overrides on top.
        """
        if not 0 <= start_row <= end_row <= self._geometry.total_rows:
            raise ConfigurationError(
                f"row range [{start_row}, {end_row}) outside geometry"
            )
        span = end_row - start_row
        kind = self._rule[0]
        if kind == "dense":
            mask = self._dense[start_row:end_row].copy()  # type: ignore[index]
        elif kind == "interleaved":
            period, first_true = self._rule[1], self._rule[2]
            blocks = np.arange(start_row, end_row, dtype=np.int64) // period
            mask = (blocks % 2 == 0) if first_true else (blocks % 2 == 1)
        elif kind == "uniform":
            mask = np.full(span, bool(self._rule[1]), dtype=bool)
        else:  # majority
            anti_every = self._rule[1]
            rows = np.arange(start_row, end_row, dtype=np.int64)
            mask = (rows % anti_every) != (anti_every - 1)
        for row, value in self._overrides.items():
            if start_row <= row < end_row:
                mask[row - start_row] = value
        return mask

    def _chunks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start_row, mask)`` chunks covering the whole geometry."""
        total = self._geometry.total_rows
        for start in range(0, total, _CHUNK_ROWS):
            stop = min(start + _CHUNK_ROWS, total)
            yield start, self.true_mask(start, stop)

    # -- queries ---------------------------------------------------------
    @property
    def geometry(self) -> DramGeometry:
        """Geometry this map types."""
        return self._geometry

    def type_of_row(self, row: int) -> CellType:
        """Cell type of global row ``row``."""
        if not 0 <= row < self._geometry.total_rows:
            raise ConfigurationError(f"row {row} outside geometry")
        return CellType.TRUE if self._row_is_true(row) else CellType.ANTI

    def type_of_address(self, address: int) -> CellType:
        """Cell type of the row containing physical ``address``."""
        return self.type_of_row(self._geometry.row_of_address(address))

    def is_true_row(self, row: int) -> bool:
        """Shorthand for ``type_of_row(row) is CellType.TRUE``."""
        if not 0 <= row < self._geometry.total_rows:
            raise ConfigurationError(f"row {row} outside geometry")
        return self._row_is_true(row)

    def count(self, cell_type: CellType) -> int:
        """Number of rows of ``cell_type`` (chunked rule evaluation)."""
        true_count = sum(int(mask.sum()) for _, mask in self._chunks())
        if cell_type is CellType.TRUE:
            return true_count
        return self._geometry.total_rows - true_count

    def true_anti_ratio(self) -> float:
        """Ratio of true-cell rows to anti-cell rows (inf if no anti rows)."""
        anti = self.count(CellType.ANTI)
        if anti == 0:
            return float("inf")
        return self.count(CellType.TRUE) / anti

    def regions(self) -> List[Tuple[int, int, CellType]]:
        """Maximal runs of same-type rows as ``(start_row, end_row_exclusive, type)``.

        Runs are detected vectorized per chunk and merged across chunk
        seams, so the scan is O(total_rows / chunk) numpy passes rather
        than a per-row Python loop.
        """
        result: List[Tuple[int, int, CellType]] = []
        run_start = 0
        run_value: Optional[bool] = None
        for chunk_start, mask in self._chunks():
            if mask.size == 0:
                continue
            if run_value is None:
                run_value = bool(mask[0])
                run_start = chunk_start
            elif bool(mask[0]) != run_value:
                result.append(
                    (run_start, chunk_start,
                     CellType.TRUE if run_value else CellType.ANTI)
                )
                run_value = bool(mask[0])
                run_start = chunk_start
            flips = np.flatnonzero(mask[1:] != mask[:-1]) + 1
            for flip in flips.tolist():
                boundary = chunk_start + flip
                result.append(
                    (run_start, boundary,
                     CellType.TRUE if run_value else CellType.ANTI)
                )
                run_value = not run_value
                run_start = boundary
        if run_value is not None:
            result.append(
                (run_start, self._geometry.total_rows,
                 CellType.TRUE if run_value else CellType.ANTI)
            )
        return result

    def regions_of_type(self, cell_type: CellType) -> List[Tuple[int, int]]:
        """Row ranges of ``cell_type`` only, as ``(start, end_exclusive)``."""
        return [(s, e) for (s, e, t) in self.regions() if t is cell_type]

    def address_regions_of_type(self, cell_type: CellType) -> List[Tuple[int, int]]:
        """Byte-address ranges covered by rows of ``cell_type``."""
        row_bytes = self._geometry.row_bytes
        return [
            (start * row_bytes, end * row_bytes)
            for start, end in self.regions_of_type(cell_type)
        ]

    def rows_of_type(self, cell_type: CellType) -> Iterator[int]:
        """Iterate global row indices of ``cell_type`` in ascending order."""
        wanted = cell_type is CellType.TRUE
        for chunk_start, mask in self._chunks():
            for row in np.flatnonzero(mask == wanted):
                yield chunk_start + int(row)

    def swap_rows(self, row_a: int, row_b: int) -> None:
        """Exchange the types of two rows (used by remapping tests only).

        Recorded as sparse overrides over the procedural rule — swapping
        never densifies the map.
        """
        a_true = self.is_true_row(row_a)
        b_true = self.is_true_row(row_b)
        self._overrides[row_a] = b_true
        self._overrides[row_b] = a_true

    def as_array(self) -> np.ndarray:
        """Dense boolean array (True => true-cell), assembled chunk-wise.

        An explicit export for small-geometry consumers (the profiler's
        accuracy diff); it is the caller's decision to pay total_rows
        memory, not the map's steady-state representation.
        """
        return np.concatenate([mask for _, mask in self._chunks()])
