"""True-cell / anti-cell typing of DRAM rows.

Section 2.1 of the paper: because sense amplifiers are shared between two
bitlines, half the cells store '1' as the charged state (*true-cells*) and
half store '0' as charged (*anti-cells*). Charge leak therefore flips
true-cells ``1 -> 0`` and anti-cells ``0 -> 1``. Each row is uniformly one
type, and types alternate every N physical rows (N = 512 commonly); some
modules instead have enormous true-cell majorities (1000:1).

:class:`CellTypeMap` is the ground-truth oracle used by the DRAM simulator;
the OS is *not* allowed to read it directly — it must run the
:mod:`~repro.dram.profiler` test, mirroring how a real deployment discovers
cell types (Section 2.2).
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dram.geometry import DramGeometry
from repro.units import DEFAULT_CELL_INTERLEAVE_ROWS


class CellType(enum.Enum):
    """Which logic value a charged capacitor represents in a row."""

    TRUE = "true"
    ANTI = "anti"

    @property
    def leak_direction(self) -> Tuple[int, int]:
        """(from_bit, to_bit) of the dominant charge-leak error."""
        return (1, 0) if self is CellType.TRUE else (0, 1)

    @property
    def charged_value(self) -> int:
        """Logic value stored by a fully charged capacitor."""
        return 1 if self is CellType.TRUE else 0

    @property
    def discharged_value(self) -> int:
        """Logic value a cell decays toward as charge leaks."""
        return 1 - self.charged_value

    def opposite(self) -> "CellType":
        """The other cell type."""
        return CellType.ANTI if self is CellType.TRUE else CellType.TRUE


class CellTypeMap:
    """Per-row cell types for a DRAM module.

    The canonical construction is :meth:`interleaved` (alternate every N
    rows). :meth:`from_rows` accepts an arbitrary layout, used for the
    1000:1 true-cell-majority modules and for adversarial test cases.
    """

    def __init__(self, geometry: DramGeometry, row_types: Sequence[CellType]):
        if len(row_types) != geometry.total_rows:
            raise ConfigurationError(
                f"row_types has {len(row_types)} entries, geometry has "
                f"{geometry.total_rows} rows"
            )
        self._geometry = geometry
        # Stored as a compact bool array: True => true-cell row.
        self._is_true = np.array([t is CellType.TRUE for t in row_types], dtype=bool)

    # -- constructors ---------------------------------------------------
    @classmethod
    def interleaved(
        cls,
        geometry: DramGeometry,
        period_rows: int = DEFAULT_CELL_INTERLEAVE_ROWS,
        first_type: CellType = CellType.TRUE,
    ) -> "CellTypeMap":
        """Alternate true/anti regions every ``period_rows`` rows.

        This is the paper's default model (N = 512, Section 6.1) and makes
        each contiguous same-type region ``period_rows * row_bytes`` large
        (64 MiB with 512 x 128 KiB).
        """
        if period_rows <= 0:
            raise ConfigurationError("period_rows must be positive")
        rows = np.arange(geometry.total_rows)
        blocks = rows // period_rows
        is_true = (blocks % 2 == 0) if first_type is CellType.TRUE else (blocks % 2 == 1)
        mapping = cls.__new__(cls)
        mapping._geometry = geometry
        mapping._is_true = is_true
        return mapping

    @classmethod
    def uniform(cls, geometry: DramGeometry, cell_type: CellType) -> "CellTypeMap":
        """Every row the same type (e.g. an all-anti ZONE_PTP ablation)."""
        mapping = cls.__new__(cls)
        mapping._geometry = geometry
        mapping._is_true = np.full(geometry.total_rows, cell_type is CellType.TRUE, dtype=bool)
        return mapping

    @classmethod
    def majority_true(
        cls, geometry: DramGeometry, anti_every: int = 1000
    ) -> "CellTypeMap":
        """Mostly true-cells with one anti-cell row per ``anti_every`` rows.

        Models the modules with very large true:anti ratios reported in
        Section 2.2.
        """
        if anti_every <= 1:
            raise ConfigurationError("anti_every must be > 1")
        rows = np.arange(geometry.total_rows)
        mapping = cls.__new__(cls)
        mapping._geometry = geometry
        mapping._is_true = (rows % anti_every) != (anti_every - 1)
        return mapping

    @classmethod
    def from_rows(cls, geometry: DramGeometry, row_types: Sequence[CellType]) -> "CellTypeMap":
        """Explicit per-row layout."""
        return cls(geometry, row_types)

    # -- queries ---------------------------------------------------------
    @property
    def geometry(self) -> DramGeometry:
        """Geometry this map types."""
        return self._geometry

    def type_of_row(self, row: int) -> CellType:
        """Cell type of global row ``row``."""
        if not 0 <= row < self._geometry.total_rows:
            raise ConfigurationError(f"row {row} outside geometry")
        return CellType.TRUE if self._is_true[row] else CellType.ANTI

    def type_of_address(self, address: int) -> CellType:
        """Cell type of the row containing physical ``address``."""
        return self.type_of_row(self._geometry.row_of_address(address))

    def is_true_row(self, row: int) -> bool:
        """Shorthand for ``type_of_row(row) is CellType.TRUE``."""
        return bool(self._is_true[row])

    def count(self, cell_type: CellType) -> int:
        """Number of rows of ``cell_type``."""
        true_count = int(self._is_true.sum())
        return true_count if cell_type is CellType.TRUE else self._geometry.total_rows - true_count

    def true_anti_ratio(self) -> float:
        """Ratio of true-cell rows to anti-cell rows (inf if no anti rows)."""
        anti = self.count(CellType.ANTI)
        if anti == 0:
            return float("inf")
        return self.count(CellType.TRUE) / anti

    def regions(self) -> List[Tuple[int, int, CellType]]:
        """Maximal runs of same-type rows as ``(start_row, end_row_exclusive, type)``."""
        result: List[Tuple[int, int, CellType]] = []
        total = self._geometry.total_rows
        start = 0
        for row in range(1, total + 1):
            if row == total or self._is_true[row] != self._is_true[start]:
                kind = CellType.TRUE if self._is_true[start] else CellType.ANTI
                result.append((start, row, kind))
                start = row
        return result

    def regions_of_type(self, cell_type: CellType) -> List[Tuple[int, int]]:
        """Row ranges of ``cell_type`` only, as ``(start, end_exclusive)``."""
        return [(s, e) for (s, e, t) in self.regions() if t is cell_type]

    def address_regions_of_type(self, cell_type: CellType) -> List[Tuple[int, int]]:
        """Byte-address ranges covered by rows of ``cell_type``."""
        row_bytes = self._geometry.row_bytes
        return [
            (start * row_bytes, end * row_bytes)
            for start, end in self.regions_of_type(cell_type)
        ]

    def rows_of_type(self, cell_type: CellType) -> Iterator[int]:
        """Iterate global row indices of ``cell_type`` in ascending order."""
        wanted = cell_type is CellType.TRUE
        for row in np.flatnonzero(self._is_true == wanted):
            yield int(row)

    def swap_rows(self, row_a: int, row_b: int) -> None:
        """Exchange the types of two rows (used by remapping tests only)."""
        self._is_true[row_a], self._is_true[row_b] = (
            bool(self._is_true[row_b]),
            bool(self._is_true[row_a]),
        )

    def as_array(self) -> np.ndarray:
        """Copy of the underlying boolean array (True => true-cell)."""
        return self._is_true.copy()
