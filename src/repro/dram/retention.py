"""Per-cell retention-time model.

DRAM cells keep data for milliseconds to seconds before leakage corrupts
them (Section 2.1, [18]). Retention varies wildly cell-to-cell; a small
*weak-cell* population decays faster than the 64 ms refresh interval and a
long tail retains data for many seconds (which is what coldboot attacks and
the paper's coldboot countermeasure exploit).

We model per-cell retention as a lognormal distribution — a standard
empirical fit — parameterised by its median and spread, plus an explicit
weak-cell fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.units import REFRESH_INTERVAL_S


@dataclass(frozen=True)
class RetentionParameters:
    """Lognormal retention distribution parameters.

    ``median_s`` is the median cell retention; ``sigma`` the lognormal
    shape; ``weak_fraction`` the share of cells whose retention is forced
    below the refresh interval (modelling the weak tail directly rather
    than through the lognormal body).
    """

    median_s: float = 2.0
    sigma: float = 0.6
    weak_fraction: float = 1e-7

    def __post_init__(self) -> None:
        if self.median_s <= 0:
            raise ConfigurationError("median_s must be positive")
        if self.sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        if not 0 <= self.weak_fraction < 1:
            raise ConfigurationError("weak_fraction must be in [0, 1)")


class RetentionModel:
    """Samples retention times and decay outcomes for rows of cells.

    The model is stateless per-call: callers pass the elapsed refresh-free
    time and receive which cells decayed. Sampling is vectorised so a
    128 KiB row (1M cells) is a single numpy draw.
    """

    def __init__(self, params: RetentionParameters = RetentionParameters(), seed: SeedLike = None):
        self._params = params
        self._rng = make_rng(seed)

    @property
    def params(self) -> RetentionParameters:
        """Model parameters."""
        return self._params

    def sample_retention(self, num_cells: int) -> np.ndarray:
        """Draw retention times (seconds) for ``num_cells`` cells."""
        if num_cells < 0:
            raise ConfigurationError("num_cells must be non-negative")
        mu = np.log(self._params.median_s)
        times = self._rng.lognormal(mean=mu, sigma=self._params.sigma, size=num_cells)
        if self._params.weak_fraction > 0 and num_cells > 0:
            weak = self._rng.random(num_cells) < self._params.weak_fraction
            times[weak] = self._rng.uniform(
                REFRESH_INTERVAL_S * 0.1, REFRESH_INTERVAL_S * 0.9, size=int(weak.sum())
            )
        return times

    def decayed_mask(self, num_cells: int, elapsed_s: float) -> np.ndarray:
        """Boolean mask of cells that lose charge after ``elapsed_s`` seconds."""
        if elapsed_s < 0:
            raise ConfigurationError("elapsed_s must be non-negative")
        return self.sample_retention(num_cells) < elapsed_s

    def decayed_fraction(self, elapsed_s: float, sample_size: int = 100_000) -> float:
        """Monte-Carlo estimate of the fraction of cells decayed by ``elapsed_s``."""
        if sample_size <= 0:
            raise ConfigurationError("sample_size must be positive")
        return float(self.decayed_mask(sample_size, elapsed_s).mean())

    def time_for_decay_fraction(self, fraction: float) -> float:
        """Approximate refresh-free time after which ``fraction`` of cells decay.

        Inverts the lognormal CDF (ignoring the tiny weak tail). Used to
        choose the profiler's wait time "longer than the retention time of
        most cells" (Section 2.2).
        """
        if not 0 < fraction < 1:
            raise ConfigurationError("fraction must be in (0, 1)")
        from scipy.stats import norm  # local import keeps scipy optional at import time

        mu = np.log(self._params.median_s)
        return float(np.exp(mu + self._params.sigma * norm.ppf(fraction)))
