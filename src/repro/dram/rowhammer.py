"""Statistical RowHammer fault model.

The paper's security analysis (Section 5) rests on three published
parameters measured in large-scale DRAM studies [19, 37]:

- ``Pf`` — probability that a given bit is *vulnerable* (flippable) at all,
  observed around ``1e-4`` across a wide range of modules;
- ``P(1->0)`` / ``P(0->1)`` — conditional direction of a vulnerable bit's
  flip. In true-cells 99.8% of flips are ``1->0`` and only 0.2% go the other
  way (residual circuit effects such as voltage coupling); anti-cells mirror
  this.

We reproduce that structure exactly: each DRAM row owns a lazily-sampled,
frozen set of vulnerable bits, each with a fixed flip direction drawn from
the cell-type-conditioned statistics. Hammering an aggressor row disturbs
its physically adjacent victim rows; every vulnerable victim bit whose
current value matches its flip source changes to its flip target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs, sanitize
from repro.dram.cells import CellType
from repro.dram.module import DramModule
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class FlipStatistics:
    """RowHammer bit-flip statistics (paper Section 5 parameters).

    ``p_vulnerable`` is ``Pf``. ``p_with_leak`` is the probability that a
    vulnerable bit flips in the cell's natural leak direction (``1->0`` for
    true-cells); ``1 - p_with_leak`` flips against it.
    """

    p_vulnerable: float = 1e-4
    p_with_leak: float = 0.998

    def __post_init__(self) -> None:
        if not 0 <= self.p_vulnerable <= 1:
            raise ConfigurationError("p_vulnerable must be in [0, 1]")
        if not 0 <= self.p_with_leak <= 1:
            raise ConfigurationError("p_with_leak must be in [0, 1]")

    @property
    def p_against_leak(self) -> float:
        """Probability a vulnerable bit flips against the leak direction."""
        return 1.0 - self.p_with_leak

    @classmethod
    def paper_default(cls) -> "FlipStatistics":
        """Table 2 parameters: Pf = 1e-4, P(0->1) = 0.2% in true-cells."""
        return cls(p_vulnerable=1e-4, p_with_leak=0.998)

    @classmethod
    def paper_pessimistic(cls) -> "FlipStatistics":
        """Table 3 parameters: Pf = 5e-4, P(0->1) = 0.5% in true-cells."""
        return cls(p_vulnerable=5e-4, p_with_leak=0.995)


@dataclass(frozen=True)
class BitFlip:
    """One observed flip: absolute address/bit plus old and new values."""

    address: int
    bit: int
    old: int
    new: int

    @property
    def direction(self) -> Tuple[int, int]:
        """``(old, new)`` pair."""
        return (self.old, self.new)


@dataclass
class HammerOutcome:
    """Result of hammering one aggressor row."""

    aggressor_row: int
    victim_rows: Tuple[int, ...]
    flips: List[BitFlip] = field(default_factory=list)
    activations: int = 0

    @property
    def flip_count(self) -> int:
        """Total flips induced."""
        return len(self.flips)

    def flips_in_row(self, row: int, row_bytes: int) -> List[BitFlip]:
        """Flips landing in global row ``row``."""
        base = row * row_bytes
        return [f for f in self.flips if base <= f.address < base + row_bytes]


@dataclass(frozen=True)
class _VulnerableBit:
    """A frozen manufacturing defect: row-relative bit that can flip one way."""

    bit_position: int  # row-relative: byte_index * 8 + bit
    from_value: int
    to_value: int


class RowHammerModel:
    """Applies statistical RowHammer disturbances to a :class:`DramModule`.

    Parameters
    ----------
    module:
        Target module (must carry a cell-type map).
    stats:
        Flip statistics (Pf and direction split).
    seed:
        RNG seed; the vulnerable-bit map is deterministic given the seed.
    activation_probability:
        Probability that a sufficient hammer burst actually triggers each
        vulnerable bit. 1.0 models the paper's worst case (an attacker who
        hammers until flips saturate).
    refresh_rate_multiplier:
        Effect of the increased-refresh countermeasure: at multiplier ``m``
        each vulnerable bit's trigger probability is divided by ``m``
        (fewer activations fit in a refresh window). The paper notes even
        high rates give no guarantee — the model keeps probability > 0.
    slow_reference:
        Force the legacy scalar per-bit disturb path. The vectorized path
        consumes the RNG stream identically, so both produce bit-identical
        outcomes for the same seed — equivalence tests and ``repro bench``
        rely on this flag for the reference side.
    """

    def __init__(
        self,
        module: DramModule,
        stats: Optional[FlipStatistics] = None,
        seed: SeedLike = None,
        activation_probability: float = 1.0,
        refresh_rate_multiplier: float = 1.0,
        slow_reference: bool = False,
    ):
        if module.cell_map is None:
            raise ConfigurationError("RowHammerModel requires a module with a cell map")
        if not 0 < activation_probability <= 1:
            raise ConfigurationError("activation_probability must be in (0, 1]")
        if refresh_rate_multiplier < 1:
            raise ConfigurationError("refresh_rate_multiplier must be >= 1")
        self._module = module
        # Per-instance default: a module-level default instance would be
        # shared by every model constructed without explicit stats.
        self._stats = stats if stats is not None else FlipStatistics.paper_default()
        self._rng = make_rng(seed)
        self._activation_probability = activation_probability / refresh_rate_multiplier
        self._vulnerable: Dict[int, Tuple[_VulnerableBit, ...]] = {}
        # Vulnerable-bit sets mirrored as numpy arrays (positions/from/to)
        # for the vectorized disturb path; rebuilt lazily per row.
        self._vulnerable_arrays: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._slow_reference = bool(slow_reference)
        #: Total hammer invocations (for attack-time accounting).
        self.hammer_count = 0

    @property
    def stats(self) -> FlipStatistics:
        """Flip statistics in force."""
        return self._stats

    @property
    def module(self) -> DramModule:
        """The module being disturbed."""
        return self._module

    # -- vulnerable-bit map -------------------------------------------------
    def vulnerable_bits(self, row: int) -> Tuple[_VulnerableBit, ...]:
        """The frozen vulnerable-bit set of ``row`` (sampled on first use).

        The sampling itself lives in :meth:`_vulnerable_row_arrays`; this
        tuple view is materialized lazily for the scalar disturb path and
        tests — at paper-scale rows (a million bits each) building tens of
        thousands of dataclass instances per first-touched row dominated
        Algorithm 1's live runtime.
        """
        cached = self._vulnerable.get(row)
        if cached is not None:
            return cached
        positions, from_values, to_values = self._vulnerable_row_arrays(row)
        frozen = tuple(
            _VulnerableBit(position, from_value, to_value)
            for position, from_value, to_value in zip(
                positions.tolist(), from_values.tolist(), to_values.tolist()
            )
        )
        self._vulnerable[row] = frozen
        return frozen

    def seed_vulnerable_bits(self, row: int, bits: Sequence[Tuple[int, int, int]]) -> None:
        """Override the vulnerable-bit map of ``row`` (testing hook).

        ``bits`` is a sequence of ``(bit_position, from_value, to_value)``.
        """
        self._vulnerable[row] = tuple(
            sorted(
                (_VulnerableBit(int(p), int(f), int(t)) for p, f, t in bits),
                key=lambda b: b.bit_position,
            )
        )
        self._vulnerable_arrays.pop(row, None)

    def _vulnerable_row_arrays(
        self, row: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, from_values, to_values)`` arrays for ``row``.

        This is the primary vulnerable-bit store, sampled vectorized on
        first touch and sorted by bit position. The RNG stream is
        bit-identical to the historical scalar sampler: one ``binomial``,
        one ``choice``, then one ``random(count)`` — a numpy Generator
        fills an array draw from the same stream as ``count`` scalar
        ``random()`` calls, the equivalence the vectorized disturb path
        already depends on. Seeded rows (:meth:`seed_vulnerable_bits`)
        mirror their tuple instead of sampling.
        """
        cached = self._vulnerable_arrays.get(row)
        if cached is not None:
            return cached
        seeded = self._vulnerable.get(row)
        if seeded is not None:
            n = len(seeded)
            cached = (
                np.fromiter((b.bit_position for b in seeded), dtype=np.int64, count=n),
                np.fromiter((b.from_value for b in seeded), dtype=np.uint8, count=n),
                np.fromiter((b.to_value for b in seeded), dtype=np.uint8, count=n),
            )
            self._vulnerable_arrays[row] = cached
            return cached
        row_bits = self._module.geometry.row_bytes * 8
        count = int(self._rng.binomial(row_bits, self._stats.p_vulnerable))
        if count:
            positions = np.asarray(
                self._rng.choice(row_bits, size=count, replace=False),
                dtype=np.int64,
            )
        else:
            positions = np.zeros(0, dtype=np.int64)
        cell_type = self._module.cell_map.type_of_row(row)
        leak_from, leak_to = cell_type.leak_direction
        with_leak = self._rng.random(count) < self._stats.p_with_leak
        from_values = np.where(with_leak, leak_from, leak_to).astype(np.uint8)
        to_values = np.where(with_leak, leak_to, leak_from).astype(np.uint8)
        order = np.argsort(positions)
        cached = (positions[order], from_values[order], to_values[order])
        self._vulnerable_arrays[row] = cached
        return cached

    # -- hammering ----------------------------------------------------------
    def hammer(self, aggressor_row: int, activations: int = 2_000_000) -> HammerOutcome:
        """Hammer one aggressor row; disturb its physical neighbors.

        ``activations`` is bookkeeping only (attack-time accounting); flip
        occurrence is governed by the statistical model.
        """
        victims = self._module.geometry.neighbors(aggressor_row)
        return self._disturb(aggressor_row, victims, activations)

    def hammer_double_sided(
        self, victim_row: int, activations: int = 2_000_000
    ) -> HammerOutcome:
        """Classic double-sided hammer: activate both neighbors of ``victim_row``.

        Only ``victim_row`` itself is disturbed (both aggressors bracket it),
        which is the Project Zero tool's configuration [32].
        """
        neighbors = self._module.geometry.neighbors(victim_row)
        if len(neighbors) < 2:
            raise ConfigurationError(
                f"row {victim_row} lacks two same-bank neighbors for double-sided hammer"
            )
        outcome = self._disturb(neighbors[0], (victim_row,), activations)
        outcome.aggressor_row = victim_row  # report the targeted victim's hammer site
        return outcome

    def _disturb(
        self, aggressor_row: int, victims: Tuple[int, ...], activations: int
    ) -> HammerOutcome:
        self.hammer_count += 1
        obs.inc("rowhammer.hammers")
        obs.inc("rowhammer.activations", activations)
        outcome = HammerOutcome(
            aggressor_row=aggressor_row, victim_rows=victims, activations=activations
        )
        # An armed fault plane needs the per-access dram.read hooks of the
        # scalar primitives so injector schedules replay identically; the
        # vectorized path runs only when chaos is off.
        if self._slow_reference or self._module.fault_plane_armed:
            self._disturb_scalar(outcome, victims)
        else:
            self._disturb_vectorized(outcome, victims)
        obs.observe("rowhammer.flips_per_hammer", outcome.flip_count)
        obs.trace(
            "rowhammer.hammer",
            aggressor=aggressor_row,
            victims=len(victims),
            flips=outcome.flip_count,
            activations=activations,
        )
        sanitize.notify("rowhammer.hammer", hammer=self, module=self._module, outcome=outcome)
        return outcome

    def _disturb_scalar(self, outcome: HammerOutcome, victims: Tuple[int, ...]) -> None:
        """Legacy per-bit reference path (fault-plane hooks fire per access)."""
        row_bytes = self._module.geometry.row_bytes
        for victim in victims:
            base = victim * row_bytes
            cell = self._module.cell_map.type_of_row(victim).value
            for vuln in self.vulnerable_bits(victim):
                if self._activation_probability < 1.0:
                    if self._rng.random() >= self._activation_probability:
                        continue
                byte_index, bit = divmod(vuln.bit_position, 8)
                address = base + byte_index
                current = self._module.read_bit(address, bit)  # repro-lint: ignore[RL007] — reference path
                if current == vuln.from_value:
                    self._module.write_bit(address, bit, vuln.to_value)  # repro-lint: ignore[RL007] — reference path
                    outcome.flips.append(
                        BitFlip(address=address, bit=bit, old=current, new=vuln.to_value)
                    )
                    obs.inc(  # repro-lint: ignore[RL007] — reference path
                        "rowhammer.flips",
                        direction=f"{current}to{vuln.to_value}",
                        cell=cell,
                    )

    def _disturb_vectorized(
        self, outcome: HammerOutcome, victims: Tuple[int, ...]
    ) -> None:
        """Batched disturb: one masked compare + one flip write per victim row.

        Consumes the RNG stream exactly like :meth:`_disturb_scalar` (one
        uniform draw per vulnerable bit, in bit-position order, only when
        ``activation_probability < 1``) so outcomes are bit-identical.
        """
        module = self._module
        row_bytes = module.geometry.row_bytes
        probability = self._activation_probability
        flip_totals: Dict[Tuple[str, str], int] = {}
        for victim in victims:
            positions, from_values, to_values = self._vulnerable_row_arrays(victim)
            if positions.size == 0:
                continue
            current = module.read_bits(victim, positions)
            flip_mask = current == from_values
            if probability < 1.0:
                flip_mask &= self._rng.random(positions.size) < probability
            if not flip_mask.any():
                continue
            flip_positions = positions[flip_mask]
            flip_targets = to_values[flip_mask]
            module.apply_bit_flips(victim, flip_positions, flip_targets)
            base = victim * row_bytes
            cell = module.cell_map.type_of_row(victim).value
            addresses = (base + (flip_positions >> 3)).tolist()
            bits = (flip_positions & 7).tolist()
            old_values = from_values[flip_mask].tolist()
            new_values = flip_targets.tolist()
            for address, bit, old, new in zip(addresses, bits, old_values, new_values):
                outcome.flips.append(BitFlip(address=address, bit=bit, old=old, new=new))
                key = (f"{old}to{new}", cell)
                flip_totals[key] = flip_totals.get(key, 0) + 1
        # One aggregated obs update per (direction, cell) series instead of
        # one inc per flip; totals match the scalar path exactly.
        for (direction, cell), count in sorted(flip_totals.items()):
            obs.inc("rowhammer.flips", count, direction=direction, cell=cell)  # repro-lint: ignore[RL007] — aggregated

    # -- statistics helpers ---------------------------------------------------
    def expected_flips_per_row(self, cell_type: CellType, stored_value: int) -> float:
        """Expected flips in a victim row holding all-``stored_value`` data.

        Used by tests to check the model against the closed-form rates:
        a row of 1s in true-cells flips at ``Pf * p_with_leak`` per bit.
        """
        row_bits = self._module.geometry.row_bytes * 8
        leak_from, _ = cell_type.leak_direction
        if stored_value == leak_from:
            per_bit = self._stats.p_vulnerable * self._stats.p_with_leak
        else:
            per_bit = self._stats.p_vulnerable * self._stats.p_against_leak
        return row_bits * per_bit * self._activation_probability
