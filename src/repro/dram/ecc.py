"""SECDED ECC model — why ECC is not a RowHammer defense (Section 2.3).

Server memory uses single-error-correct / double-error-detect codes
(Hamming + overall parity over each 64-bit word). The paper cites the
observation [1] that RowHammer affects ECC systems too: a hammer burst
can flip *three or more* bits in one word, which SECDED either
miscorrects (aliasing to a single-bit syndrome) or fails to flag.

:class:`SecdedCodec` implements the classic (72,64) construction;
:class:`EccWordStore` keeps code words in a simulated module so the
RowHammer model can attack them for real; the accompanying tests and
benchmark quantify the multi-flip escape behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dram.module import DramModule
from repro.errors import ConfigurationError, DramError

#: Total bits in a code word: 64 data + 7 Hamming parity + 1 overall.
CODE_BITS = 72

#: Positions 1..71 that are powers of two hold Hamming parity bits.
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)

#: Non-parity positions (1..71, not a power of two) hold the 64 data bits.
_DATA_POSITIONS = tuple(
    position for position in range(1, CODE_BITS) if position not in _PARITY_POSITIONS
)
if len(_DATA_POSITIONS) != 64:
    raise ConfigurationError(
        f"(72,64) SECDED layout error: {len(_DATA_POSITIONS)} data positions"
    )


class DecodeStatus(enum.Enum):
    """What the decoder concluded about a word."""

    CLEAN = "clean"
    CORRECTED = "corrected-single"
    DETECTED = "detected-uncorrectable"
    #: A silent failure: >= 3 flips aliased to a clean or single-error
    #: syndrome and the decoder returned wrong data without noticing.
    MISCORRECTED = "miscorrected"


@dataclass(frozen=True)
class DecodeResult:
    """Decoder output."""

    data: int
    status: DecodeStatus
    corrected_position: Optional[int] = None


class SecdedCodec:
    """(72,64) Hamming SECDED codec over integers."""

    def encode(self, data: int) -> int:
        """Encode 64 data bits into a 72-bit code word."""
        if not 0 <= data < 2**64:
            raise ConfigurationError("data must fit in 64 bits")
        word = 0
        for index, position in enumerate(_DATA_POSITIONS):
            if (data >> index) & 1:
                word |= 1 << position
        for parity_position in _PARITY_POSITIONS:
            parity = 0
            for position in range(1, CODE_BITS):
                if position & parity_position and (word >> position) & 1:
                    parity ^= 1
            if parity:
                word |= 1 << parity_position
        # Overall parity at bit 0 makes total weight even.
        if bin(word).count("1") % 2:
            word |= 1
        return word

    def _syndrome(self, word: int) -> Tuple[int, int]:
        syndrome = 0
        for position in range(1, CODE_BITS):
            if (word >> position) & 1:
                syndrome ^= position
        overall = bin(word).count("1") % 2
        return syndrome, overall

    def extract_data(self, word: int) -> int:
        """Data bits of a (possibly corrected) code word."""
        data = 0
        for index, position in enumerate(_DATA_POSITIONS):
            if (word >> position) & 1:
                data |= 1 << index
        return data

    def decode(self, word: int, true_data: Optional[int] = None) -> DecodeResult:
        """Decode a 72-bit word, correcting at most one error.

        ``true_data``, when supplied (simulation ground truth), lets the
        decoder report silent *miscorrections* — the decoder itself cannot
        see them, which is exactly the hazard.
        """
        if not 0 <= word < 2**CODE_BITS:
            raise ConfigurationError("word must fit in 72 bits")
        syndrome, overall = self._syndrome(word)
        if syndrome == 0 and overall == 0:
            data = self.extract_data(word)
            status = DecodeStatus.CLEAN
            if true_data is not None and data != true_data:
                status = DecodeStatus.MISCORRECTED
            return DecodeResult(data=data, status=status)
        if overall == 1:
            # Odd number of flips: assume one, correct it.
            corrected = word
            if 0 < syndrome < CODE_BITS:
                corrected = word ^ (1 << syndrome)
            else:
                corrected = word ^ 1  # the overall-parity bit itself
            data = self.extract_data(corrected)
            status = DecodeStatus.CORRECTED
            if true_data is not None and data != true_data:
                status = DecodeStatus.MISCORRECTED
            return DecodeResult(
                data=data, status=status, corrected_position=syndrome or 0
            )
        # Even flip count with nonzero syndrome: uncorrectable, flagged.
        return DecodeResult(data=self.extract_data(word), status=DecodeStatus.DETECTED)


class EccWordStore:
    """Code words stored in simulated DRAM, 9 bytes per word."""

    def __init__(self, module: DramModule, base_address: int):
        self._module = module
        self._base = base_address
        self._codec = SecdedCodec()
        self._count = 0
        self._truth: List[int] = []

    @property
    def codec(self) -> SecdedCodec:
        """Underlying codec."""
        return self._codec

    def word_address(self, index: int) -> int:
        """Physical address of stored word ``index``."""
        if not 0 <= index < self._count:
            raise DramError(f"word index {index} out of range")
        return self._base + index * 9

    def store(self, data: int) -> int:
        """Encode and store a word; returns its index."""
        word = self._codec.encode(data)
        address = self._base + self._count * 9
        self._module.write(address, word.to_bytes(9, "little"))
        self._truth.append(data)
        self._count += 1
        return self._count - 1

    def scrub(self, index: int) -> DecodeResult:
        """Read and decode word ``index`` against ground truth."""
        raw = int.from_bytes(self._module.read(self.word_address(index), 9), "little")
        raw &= (1 << CODE_BITS) - 1
        return self._codec.decode(raw, true_data=self._truth[index])

    def scrub_all(self) -> List[DecodeResult]:
        """Decode every stored word."""
        return [self.scrub(index) for index in range(self._count)]
