"""Manufacturer row remapping (faulty row -> spare row).

DRAM vendors map faulty rows to spares to improve yield [36]. Section 7 of
the paper argues this is why CATT/ZebRAM-style *spatial isolation* defenses
break (a remapped row may sit physically inside the "isolated" region) while
CTA is unaffected: a spare must have the same cell type as the original for
the sense amplifiers to work, so the monotonicity property survives
remapping.

:class:`RowRemapper` models the vendor table: logical row -> physical row.
It enforces the same-cell-type rule and exposes the physical adjacency that
spatial defenses get wrong.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.dram.cells import CellType, CellTypeMap
from repro.errors import RowRemapError


class RowRemapper:
    """Logical-to-physical row indirection with cell-type preservation.

    Parameters
    ----------
    cell_map:
        Ground-truth typing of *physical* rows.
    spare_rows:
        Pool of physical rows reserved as spares (not normally addressable).
    enforce_cell_type:
        When True (real hardware), remapping to a different cell type raises
        :class:`RowRemapError`. Tests can disable it to demonstrate why the
        rule exists.
    """

    def __init__(
        self,
        cell_map: CellTypeMap,
        spare_rows: Iterable[int] = (),
        enforce_cell_type: bool = True,
    ):
        self._cell_map = cell_map
        self._spares: List[int] = sorted(set(spare_rows))
        self._enforce = enforce_cell_type
        self._table: Dict[int, int] = {}
        for spare in self._spares:
            if not 0 <= spare < cell_map.geometry.total_rows:
                raise RowRemapError(f"spare row {spare} outside geometry")

    @property
    def remapped_rows(self) -> Dict[int, int]:
        """Copy of the logical->physical remap table."""
        return dict(self._table)

    @property
    def total_rows(self) -> int:
        """Rows in the underlying geometry (valid table-entry range)."""
        return self._cell_map.geometry.total_rows

    def corrupt_entry(self, logical_row: int, physical_row: int) -> None:
        """Overwrite a remap-table entry, bypassing every safety rule.

        Fault-injection hook (``remap-corrupt``): models a vendor table
        gone bad — no spare accounting, no cell-type enforcement. Both
        rows must still lie inside the geometry so reads stay addressable.
        """
        for row in (logical_row, physical_row):
            if not 0 <= row < self.total_rows:
                raise RowRemapError(f"row {row} outside [0, {self.total_rows})")
        self._table[logical_row] = physical_row

    @property
    def available_spares(self) -> List[int]:
        """Spare rows not yet consumed."""
        return list(self._spares)

    def physical_row(self, logical_row: int) -> int:
        """Resolve a logical row to its physical row (identity if unmapped)."""
        return self._table.get(logical_row, logical_row)

    def is_remapped(self, logical_row: int) -> bool:
        """Whether ``logical_row`` has been redirected to a spare."""
        return logical_row in self._table

    def remap(self, faulty_row: int, spare_row: Optional[int] = None) -> int:
        """Redirect ``faulty_row`` to a spare; returns the spare chosen.

        Picks the first same-type spare when ``spare_row`` is None. Raises
        :class:`RowRemapError` if the pool is exhausted or (when enforcement
        is on) the requested spare has the wrong cell type.
        """
        if faulty_row in self._table:
            raise RowRemapError(f"row {faulty_row} already remapped")
        faulty_type = self._cell_map.type_of_row(faulty_row)
        if spare_row is None:
            spare_row = self._find_spare(faulty_type)
        if spare_row not in self._spares:
            raise RowRemapError(f"row {spare_row} is not an available spare")
        spare_type = self._cell_map.type_of_row(spare_row)
        if self._enforce and spare_type is not faulty_type:
            raise RowRemapError(
                f"cell-type mismatch: faulty row {faulty_row} is {faulty_type.value}, "
                f"spare {spare_row} is {spare_type.value}"
            )
        self._spares.remove(spare_row)
        self._table[faulty_row] = spare_row
        return spare_row

    def effective_cell_type(self, logical_row: int) -> CellType:
        """Cell type seen through the remap table.

        With enforcement on this always equals the original row's type —
        the invariant that makes CTA remap-proof (Section 7).
        """
        return self._cell_map.type_of_row(self.physical_row(logical_row))

    def breaks_isolation(self, isolated_physical_range: range) -> List[int]:
        """Logical rows whose physical location escaped an isolation range.

        Models the CATT/ZebRAM failure: a defense that reasons about
        *logical* row ranges does not see that a remapped row's true
        physical neighbors lie elsewhere. Returns logical rows mapped
        either into or out of ``isolated_physical_range``.
        """
        violations = []
        for logical, physical in self._table.items():
            inside_logical = logical in isolated_physical_range
            inside_physical = physical in isolated_physical_range
            if inside_logical != inside_physical:
                violations.append(logical)
        return sorted(violations)

    def _find_spare(self, cell_type: CellType) -> int:
        for spare in self._spares:
            if not self._enforce or self._cell_map.type_of_row(spare) is cell_type:
                return spare
        raise RowRemapError(f"no available spare of type {cell_type.value}")
