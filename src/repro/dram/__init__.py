"""DRAM substrate: geometry, true/anti cells, RowHammer fault model.

This subpackage simulates the hardware layer the paper's defense is built
on. The key exported pieces are:

- :class:`~repro.dram.geometry.DramGeometry` — module shape and address math
- :class:`~repro.dram.cells.CellTypeMap` — which rows are true/anti cells
- :class:`~repro.dram.module.DramModule` — sparse byte-addressable storage
- :class:`~repro.dram.rowhammer.RowHammerModel` — statistical bit-flip model
- :class:`~repro.dram.profiler.CellTypeProfiler` — system-level cell typing
"""

from repro.dram.cells import CellType, CellTypeMap
from repro.dram.ecc import DecodeStatus, EccWordStore, SecdedCodec
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.refresh import RefreshScheduler
from repro.dram.remap import RowRemapper
from repro.dram.retention import RetentionModel
from repro.dram.rowhammer import FlipStatistics, HammerOutcome, RowHammerModel
from repro.dram.profiler import CellTypeProfiler

__all__ = [
    "CellType",
    "CellTypeMap",
    "CellTypeProfiler",
    "DecodeStatus",
    "DramGeometry",
    "DramModule",
    "EccWordStore",
    "SecdedCodec",
    "FlipStatistics",
    "HammerOutcome",
    "RefreshScheduler",
    "RetentionModel",
    "RowHammerModel",
    "RowRemapper",
]
