"""Sparse simulated DRAM module.

Stores row contents lazily: a row materialises (as a numpy uint8 array)
only when first written, so multi-GiB geometries cost memory proportional
to the data actually touched. Besides plain byte/word access the module
understands *charge semantics*: given a cell-type map it can decay rows
toward their discharged logic value (used by the cell-type profiler and the
coldboot extension) and apply individual bit flips (used by the RowHammer
model).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import faults, sanitize
from repro.dram.cells import CellType, CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, ConfigurationError


class DramModule:
    """Byte-addressable sparse DRAM storage with cell-aware decay.

    Parameters
    ----------
    geometry:
        Module shape.
    cell_map:
        Ground-truth row typing. Optional for pure-storage uses, but
        required by :meth:`decay_row` and :meth:`flip_bit` direction checks.
    fill_byte:
        Logical content of never-written rows (defaults to zeros, matching
        an OS that zeroes pages on first allocation).
    """

    def __init__(
        self,
        geometry: DramGeometry,
        cell_map: Optional[CellTypeMap] = None,
        fill_byte: int = 0x00,
    ):
        if not 0 <= fill_byte <= 0xFF:
            raise ConfigurationError(f"fill_byte {fill_byte:#x} out of range")
        self._geometry = geometry
        self._cell_map = cell_map
        self._fill_byte = fill_byte
        self._rows: Dict[int, np.ndarray] = {}
        # Cached little-endian u64 aliases of backing arrays (see u64_view).
        self._u64_views: Dict[int, np.ndarray] = {}
        # Bumped whenever a backing array is dropped so external caches of
        # row views (e.g. the MMU page-table cache) can cheaply revalidate.
        self._generation = 0
        # Cached faults.armed() result, refreshed when the fault-plane
        # epoch moves — keeps the common disarmed read path to one int
        # compare instead of two module lookups plus attribute probes.
        self._faults_epoch = -1
        self._faults_armed = False
        #: Count of writes/reads, useful for benchmarks.
        self.write_count = 0
        self.read_count = 0

    # -- basic properties -------------------------------------------------
    @property
    def geometry(self) -> DramGeometry:
        """Module geometry."""
        return self._geometry

    @property
    def cell_map(self) -> Optional[CellTypeMap]:
        """Ground-truth cell typing (None when constructed without one)."""
        return self._cell_map

    @property
    def materialized_rows(self) -> int:
        """Number of rows currently backed by real arrays."""
        return len(self._rows)

    @property
    def resident_rows(self) -> int:
        """Rows currently resident in memory (the ``dram.resident_rows`` gauge).

        Alias of :attr:`materialized_rows`: on a multi-GB sparse module
        this is the quantity that bounds real memory use — geometry rows
        never written stay virtual and cost nothing.
        """
        return len(self._rows)

    @property
    def generation(self) -> int:
        """Monotonic counter bumped when a backing array is dropped.

        Views returned by :meth:`u64_view` / :meth:`row_u64_view` alias
        live storage and stay valid across in-place writes; only
        :meth:`forget_row` re-binds arrays. Callers caching views compare
        this counter to detect that.
        """
        return self._generation

    @property
    def fault_plane_armed(self) -> bool:
        """Whether the process fault plane is armed (epoch-cached)."""
        current = faults.epoch()
        if current != self._faults_epoch:
            self._faults_epoch = current
            self._faults_armed = faults.armed()
        return self._faults_armed

    # -- row materialisation ----------------------------------------------
    def _row_array(self, row: int, materialize: bool = True) -> Optional[np.ndarray]:
        existing = self._rows.get(row)
        if existing is not None:
            if materialize and not existing.flags.writeable:
                # Copy-on-first-write: the row aliases a read-only snapshot
                # buffer (shared memory). Promote to a private writable
                # copy and invalidate aliasing caches of the old storage.
                fresh = existing.copy()
                self._rows[row] = fresh
                self._u64_views.pop(row, None)
                self._generation += 1
                return fresh
            return existing
        if not materialize:
            return None
        fresh = np.full(self._geometry.row_bytes, self._fill_byte, dtype=np.uint8)
        self._rows[row] = fresh
        return fresh

    def forget_row(self, row: int) -> None:
        """Drop a row's backing array (its content reverts to fill_byte)."""
        if self._rows.pop(row, None) is not None:
            self._u64_views.pop(row, None)
            self._generation += 1

    # -- byte access --------------------------------------------------------
    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical ``address``.

        An armed ``dram-read-error`` fault may abort the read with a
        :class:`~repro.errors.TransientFaultError` (uncorrectable-ECC
        machine-check analogue).
        """
        self._geometry.check_address(address, length)
        if self.fault_plane_armed:
            faults.notify("dram.read", module=self, address=address, length=length)
        self.read_count += 1
        row_bytes = self._geometry.row_bytes
        row, offset = divmod(address, row_bytes)
        if offset + length <= row_bytes:
            # Single-row fast path: no chunking loop, one slice copy.
            backing = self._rows.get(row)
            if backing is None:
                return bytes([self._fill_byte]) * length
            return backing[offset : offset + length].tobytes()
        out = bytearray(length)
        cursor = 0
        while cursor < length:
            addr = address + cursor
            row = addr // row_bytes
            offset = addr % row_bytes
            chunk = min(length - cursor, row_bytes - offset)
            backing = self._rows.get(row)
            if backing is None:
                out[cursor : cursor + chunk] = bytes([self._fill_byte]) * chunk
            else:
                out[cursor : cursor + chunk] = backing[offset : offset + chunk].tobytes()
            cursor += chunk
        return bytes(out)

    def read_many(self, addresses: "np.ndarray", length: int) -> List[bytes]:
        """One ``length``-byte read per physical address, in order.

        Equivalent to calling :meth:`read` per address (same results and
        ``read_count`` accounting); the per-call overhead — bounds check,
        fault probe, row arithmetic — is paid once for the batch instead.
        Falls back to the scalar loop when the fault plane is armed (each
        read must probe the schedule individually) or any address is out
        of bounds (the scalar loop raises at the right element with the
        right prior counts).
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        n = int(addrs.size)
        total = self._geometry.total_bytes
        if (
            self.fault_plane_armed
            or n == 0
            or bool(np.any(addrs < 0))
            or bool(np.any(addrs + length > total))
        ):
            return [self.read(int(address), length) for address in addrs]
        self.read_count += n
        row_bytes = self._geometry.row_bytes
        rows = addrs // row_bytes
        offsets = addrs - rows * row_bytes
        backing_of = self._rows
        fill = bytes([self._fill_byte]) * length
        out: List[bytes] = []
        for row, offset in zip(rows.tolist(), offsets.tolist()):
            if offset + length <= row_bytes:
                backing = backing_of.get(row)
                out.append(
                    fill if backing is None else
                    backing[offset : offset + length].tobytes()
                )
                continue
            # Row-straddling read: reuse the chunking path uncounted.
            self.read_count -= 1
            out.append(self.read(row * row_bytes + offset, length))
        return out

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` at physical ``address``."""
        length = len(data)
        self._geometry.check_address(address, length)
        self.write_count += 1
        row_bytes = self._geometry.row_bytes
        row, offset = divmod(address, row_bytes)
        if offset + length <= row_bytes:
            # Single-row fast path; frombuffer aliases the caller's bytes
            # (no intermediate copy), the slice assignment does the copy.
            backing = self._row_array(row)
            backing[offset : offset + length] = np.frombuffer(data, dtype=np.uint8)
            return
        view = np.frombuffer(data, dtype=np.uint8)
        cursor = 0
        while cursor < length:
            addr = address + cursor
            row = addr // row_bytes
            offset = addr % row_bytes
            chunk = min(length - cursor, row_bytes - offset)
            backing = self._row_array(row)
            backing[offset : offset + chunk] = view[cursor : cursor + chunk]
            cursor += chunk

    def write_many(self, addresses: "np.ndarray", data: bytes) -> None:
        """Write ``data`` at every physical address, in order.

        Equivalent to calling :meth:`write` per address (same contents
        and ``write_count`` accounting); the bounds check and row
        arithmetic are paid once for the batch. Falls back to the scalar
        loop when any address is out of bounds or a write straddles a
        row (the scalar path raises at the right element with the right
        prior counts).
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        n = int(addrs.size)
        length = len(data)
        total = self._geometry.total_bytes
        row_bytes = self._geometry.row_bytes
        if (
            n == 0
            or bool(np.any(addrs < 0))
            or bool(np.any(addrs + length > total))
            or bool(np.any(addrs % row_bytes + length > row_bytes))
        ):
            for address in addrs:
                self.write(int(address), data)
            return
        self.write_count += n
        rows = addrs // row_bytes
        offsets = addrs - rows * row_bytes
        view = np.frombuffer(data, dtype=np.uint8)
        for row, offset in zip(rows.tolist(), offsets.tolist()):
            backing = self._row_array(row)
            backing[offset : offset + length] = view

    # -- word access ----------------------------------------------------------
    def read_u64(self, address: int) -> int:
        """Read a little-endian 64-bit word (one PTE) at ``address``."""
        return int.from_bytes(self.read(address, 8), "little")

    def read_u64_many(self, addresses: "np.ndarray") -> np.ndarray:
        """One little-endian 64-bit word per physical address, in order.

        The frontier page-table walker's gather primitive: addresses are
        grouped by row and each resident row's backing array is indexed
        once for all its words. Crucially the gather is *non-mutating* —
        absent rows are never materialised (their words read as the fill
        byte repeated) and read-only snapshot rows are viewed in place
        rather than copy-on-write promoted, so walking page tables of a
        multi-GB module keeps memory proportional to resident data.
        Counts one read per address, like a :meth:`read_u64` loop would.
        Falls back to that scalar loop when the fault plane is armed
        (per-read fault schedules must see every access) or any address
        is unaligned or out of bounds (the scalar loop raises at the
        right element with the right prior counts).
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return np.zeros(0, dtype=np.uint64)
        row_bytes = self._geometry.row_bytes
        if (
            self.fault_plane_armed
            or row_bytes % 8
            or bool(np.any(addrs < 0))
            or bool(np.any(addrs + 8 > self._geometry.total_bytes))
            or bool(np.any(addrs & 7))
        ):
            return np.array(
                [self.read_u64(int(address)) for address in addrs],
                dtype=np.uint64,
            )
        self.read_count += n
        rows = addrs // row_bytes
        word_idx = (addrs - rows * row_bytes) >> 3
        out = np.empty(n, dtype=np.uint64)
        fill_word = np.uint64(
            int.from_bytes(bytes([self._fill_byte]) * 8, "little")
        )
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        boundaries = np.flatnonzero(np.diff(sorted_rows)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for group_start, group_end in zip(starts.tolist(), ends.tolist()):
            sel = order[group_start:group_end]
            backing = self._rows.get(int(sorted_rows[group_start]))
            if backing is None:
                out[sel] = fill_word
            else:
                # Plain dtype reinterpretation — works on read-only
                # snapshot rows too, unlike row_u64_view (which promotes).
                out[sel] = backing.view(np.dtype("<u8"))[word_idx[sel]]
        return out

    def write_u64(self, address: int, value: int) -> None:
        """Write a little-endian 64-bit word at ``address``."""
        if not 0 <= value < 2**64:
            raise ConfigurationError(f"value {value:#x} does not fit in 64 bits")
        self.write(address, value.to_bytes(8, "little"))

    def fill_row(self, row: int, byte: int) -> None:
        """Set every byte of global row ``row`` to ``byte``."""
        if not 0 <= byte <= 0xFF:
            raise ConfigurationError(f"byte {byte:#x} out of range")
        backing = self._row_array(row)
        backing[:] = byte

    def read_row(self, row: int) -> bytes:
        """Read the full contents of global row ``row``."""
        return self.read(self._geometry.row_base_address(row), self._geometry.row_bytes)

    # -- bit-level operations -----------------------------------------------
    def read_bit(self, address: int, bit: int) -> int:
        """Read one bit (0..7) of the byte at ``address``."""
        if not 0 <= bit < 8:
            raise AddressError(f"bit index {bit} outside [0, 8)")
        return (self.read(address, 1)[0] >> bit) & 1

    def write_bit(self, address: int, bit: int, value: int) -> None:
        """Set one bit of the byte at ``address`` (in place, no RMW round-trip)."""
        if not 0 <= bit < 8:
            raise AddressError(f"bit index {bit} outside [0, 8)")
        self._geometry.check_address(address, 1)
        self.write_count += 1
        row, offset = divmod(address, self._geometry.row_bytes)
        backing = self._row_array(row)
        current = int(backing[offset])
        if value:
            backing[offset] = current | (1 << bit)
        else:
            backing[offset] = current & ~(1 << bit) & 0xFF

    def flip_bit(self, address: int, bit: int) -> Tuple[int, int]:
        """Invert one bit; returns ``(old, new)`` values."""
        old = self.read_bit(address, bit)
        new = old ^ 1
        self.write_bit(address, bit, new)
        sanitize.notify(
            "dram.bit_flip", module=self, address=address, bit=bit, old=old, new=new
        )
        return old, new

    # -- batched row-level primitives -----------------------------------------
    def _check_row_positions(self, row: int, positions: np.ndarray) -> None:
        if not 0 <= row < self._geometry.total_rows:
            raise AddressError(f"row {row} outside module")
        if positions.size and (
            int(positions.min()) < 0
            or int(positions.max()) >= self._geometry.row_bytes * 8
        ):
            raise AddressError(f"bit position outside row {row}")

    def read_bits(self, row: int, positions: np.ndarray) -> np.ndarray:
        """Logic values of row-relative bit positions, in one batched read.

        ``positions`` are row-relative bit indices (``byte*8 + bit``).
        Returns a uint8 array of 0/1 values aligned with ``positions``.
        Counts as one read. Unlike :meth:`read_bit` this does not offer a
        ``dram.read`` event to the fault plane — hammer hot paths fall
        back to the scalar primitives when the plane is armed precisely so
        fault schedules stay bit-identical (see ``RowHammerModel``).
        """
        positions = np.ascontiguousarray(positions, dtype=np.int64)
        self._check_row_positions(row, positions)
        self.read_count += 1
        if positions.size == 0:
            return np.zeros(0, dtype=np.uint8)
        shifts = (positions & 7).astype(np.uint8)
        backing = self._rows.get(row)
        if backing is None:
            byte_values = np.full(positions.shape, self._fill_byte, dtype=np.uint8)
        else:
            byte_values = backing[positions >> 3]
        return (byte_values >> shifts) & np.uint8(1)

    def apply_bit_flips(
        self, row: int, positions: np.ndarray, targets: np.ndarray
    ) -> int:
        """Set row-relative bits to target values in one batched write.

        ``positions`` are row-relative bit indices; ``targets`` the 0/1
        value each bit is forced to. Duplicate positions are safe (ops are
        idempotent per direction). Counts as one write; returns the number
        of positions touched.
        """
        positions = np.ascontiguousarray(positions, dtype=np.int64)
        self._check_row_positions(row, positions)
        targets = np.ascontiguousarray(targets, dtype=np.uint8)
        if targets.shape != positions.shape:
            raise ConfigurationError(
                f"targets shape {targets.shape} != positions shape {positions.shape}"
            )
        self.write_count += 1
        if positions.size == 0:
            return 0
        backing = self._row_array(row)
        byte_idx = positions >> 3
        masks = np.uint8(1) << (positions & 7).astype(np.uint8)
        setting = targets != 0
        if setting.any():
            np.bitwise_or.at(backing, byte_idx[setting], masks[setting])
        clearing = ~setting
        if clearing.any():
            np.bitwise_and.at(backing, byte_idx[clearing], np.invert(masks[clearing]))
        return int(positions.size)

    def row_u64_view(self, row: int) -> np.ndarray:
        """Little-endian u64 alias of ``row``'s backing array (materializes it).

        The view shares storage with the row: in-place byte writes are
        immediately visible through it and vice versa. It is invalidated
        only by :meth:`forget_row` — watch :attr:`generation`.
        """
        view = self._u64_views.get(row)
        if view is None:
            if self._geometry.row_bytes % 8:
                raise AddressError(
                    f"row size {self._geometry.row_bytes} not u64-viewable"
                )
            backing = self._row_array(row)
            view = backing.view(np.dtype("<u8"))
            self._u64_views[row] = view
        return view

    def u64_view(self, address: int, count: int) -> Optional[np.ndarray]:
        """Aliasing u64 view of ``count`` words at ``address``, or ``None``.

        Returns ``None`` (caller falls back to :meth:`read_u64`) when the
        span is unaligned, crosses a row boundary, or leaves the module.
        Used by the MMU to index page-table entries without a full
        ``read()`` per walk level.
        """
        row_bytes = self._geometry.row_bytes
        span = 8 * count
        if address < 0 or count < 0 or address % 8 or row_bytes % 8:
            return None
        if address + span > self._geometry.total_bytes:
            return None
        row, offset = divmod(address, row_bytes)
        if offset + span > row_bytes:
            return None
        start = offset // 8
        return self.row_u64_view(row)[start : start + count]

    # -- charge semantics ------------------------------------------------------
    def decay_bits(self, row: int, bit_positions: Iterable[int]) -> int:
        """Decay specific bits of ``row`` toward their discharged value.

        ``bit_positions`` are row-relative bit indices (byte*8 + bit).
        Returns the number of bits whose logic value actually changed.
        A cell-type map is required to know the discharged value.
        """
        if self._cell_map is None:
            raise AddressError("decay requires a cell-type map")
        target = self._cell_map.type_of_row(row).discharged_value
        backing = self._row_array(row)
        changed = 0
        for position in bit_positions:
            byte_index, bit = divmod(int(position), 8)
            if byte_index >= self._geometry.row_bytes:
                raise AddressError(f"bit position {position} outside row")
            current = (int(backing[byte_index]) >> bit) & 1
            if current != target:
                if target:
                    backing[byte_index] = int(backing[byte_index]) | (1 << bit)
                else:
                    backing[byte_index] = int(backing[byte_index]) & ~(1 << bit)
                changed += 1
        return changed

    def decay_row_fully(self, row: int) -> None:
        """Decay every cell of ``row`` to its discharged value.

        Models an arbitrarily long refresh-free interval: the whole row
        reads back as all-discharged (used by the profiler and coldboot).
        """
        if self._cell_map is None:
            raise AddressError("decay requires a cell-type map")
        discharged = self._cell_map.type_of_row(row).discharged_value
        self.fill_row(row, 0xFF if discharged else 0x00)

    def snapshot_row(self, row: int) -> np.ndarray:
        """Copy of the row's current content."""
        backing = self._rows.get(row)
        if backing is None:
            return np.full(self._geometry.row_bytes, self._fill_byte, dtype=np.uint8)
        return backing.copy()
