"""Sparse simulated DRAM module.

Stores row contents lazily: a row materialises (as a numpy uint8 array)
only when first written, so multi-GiB geometries cost memory proportional
to the data actually touched. Besides plain byte/word access the module
understands *charge semantics*: given a cell-type map it can decay rows
toward their discharged logic value (used by the cell-type profiler and the
coldboot extension) and apply individual bit flips (used by the RowHammer
model).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro import faults, sanitize
from repro.dram.cells import CellType, CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, ConfigurationError


class DramModule:
    """Byte-addressable sparse DRAM storage with cell-aware decay.

    Parameters
    ----------
    geometry:
        Module shape.
    cell_map:
        Ground-truth row typing. Optional for pure-storage uses, but
        required by :meth:`decay_row` and :meth:`flip_bit` direction checks.
    fill_byte:
        Logical content of never-written rows (defaults to zeros, matching
        an OS that zeroes pages on first allocation).
    """

    def __init__(
        self,
        geometry: DramGeometry,
        cell_map: Optional[CellTypeMap] = None,
        fill_byte: int = 0x00,
    ):
        if not 0 <= fill_byte <= 0xFF:
            raise ConfigurationError(f"fill_byte {fill_byte:#x} out of range")
        self._geometry = geometry
        self._cell_map = cell_map
        self._fill_byte = fill_byte
        self._rows: Dict[int, np.ndarray] = {}
        #: Count of writes/reads, useful for benchmarks.
        self.write_count = 0
        self.read_count = 0

    # -- basic properties -------------------------------------------------
    @property
    def geometry(self) -> DramGeometry:
        """Module geometry."""
        return self._geometry

    @property
    def cell_map(self) -> Optional[CellTypeMap]:
        """Ground-truth cell typing (None when constructed without one)."""
        return self._cell_map

    @property
    def materialized_rows(self) -> int:
        """Number of rows currently backed by real arrays."""
        return len(self._rows)

    # -- row materialisation ----------------------------------------------
    def _row_array(self, row: int, materialize: bool = True) -> Optional[np.ndarray]:
        existing = self._rows.get(row)
        if existing is not None or not materialize:
            return existing
        fresh = np.full(self._geometry.row_bytes, self._fill_byte, dtype=np.uint8)
        self._rows[row] = fresh
        return fresh

    def forget_row(self, row: int) -> None:
        """Drop a row's backing array (its content reverts to fill_byte)."""
        self._rows.pop(row, None)

    # -- byte access --------------------------------------------------------
    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical ``address``.

        An armed ``dram-read-error`` fault may abort the read with a
        :class:`~repro.errors.TransientFaultError` (uncorrectable-ECC
        machine-check analogue).
        """
        self._geometry.check_address(address, length)
        if faults.get_plane().armed:
            faults.notify("dram.read", module=self, address=address, length=length)
        self.read_count += 1
        out = bytearray(length)
        cursor = 0
        while cursor < length:
            addr = address + cursor
            row = addr // self._geometry.row_bytes
            offset = addr % self._geometry.row_bytes
            chunk = min(length - cursor, self._geometry.row_bytes - offset)
            backing = self._rows.get(row)
            if backing is None:
                out[cursor : cursor + chunk] = bytes([self._fill_byte]) * chunk
            else:
                out[cursor : cursor + chunk] = backing[offset : offset + chunk].tobytes()
            cursor += chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` at physical ``address``."""
        self._geometry.check_address(address, len(data))
        self.write_count += 1
        view = np.frombuffer(bytes(data), dtype=np.uint8)
        cursor = 0
        while cursor < len(data):
            addr = address + cursor
            row = addr // self._geometry.row_bytes
            offset = addr % self._geometry.row_bytes
            chunk = min(len(data) - cursor, self._geometry.row_bytes - offset)
            backing = self._row_array(row)
            backing[offset : offset + chunk] = view[cursor : cursor + chunk]
            cursor += chunk

    # -- word access ----------------------------------------------------------
    def read_u64(self, address: int) -> int:
        """Read a little-endian 64-bit word (one PTE) at ``address``."""
        return int.from_bytes(self.read(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        """Write a little-endian 64-bit word at ``address``."""
        if not 0 <= value < 2**64:
            raise ConfigurationError(f"value {value:#x} does not fit in 64 bits")
        self.write(address, value.to_bytes(8, "little"))

    def fill_row(self, row: int, byte: int) -> None:
        """Set every byte of global row ``row`` to ``byte``."""
        if not 0 <= byte <= 0xFF:
            raise ConfigurationError(f"byte {byte:#x} out of range")
        backing = self._row_array(row)
        backing[:] = byte

    def read_row(self, row: int) -> bytes:
        """Read the full contents of global row ``row``."""
        return self.read(self._geometry.row_base_address(row), self._geometry.row_bytes)

    # -- bit-level operations -----------------------------------------------
    def read_bit(self, address: int, bit: int) -> int:
        """Read one bit (0..7) of the byte at ``address``."""
        if not 0 <= bit < 8:
            raise AddressError(f"bit index {bit} outside [0, 8)")
        return (self.read(address, 1)[0] >> bit) & 1

    def write_bit(self, address: int, bit: int, value: int) -> None:
        """Set one bit of the byte at ``address``."""
        if not 0 <= bit < 8:
            raise AddressError(f"bit index {bit} outside [0, 8)")
        current = self.read(address, 1)[0]
        if value:
            updated = current | (1 << bit)
        else:
            updated = current & ~(1 << bit)
        self.write(address, bytes([updated]))

    def flip_bit(self, address: int, bit: int) -> Tuple[int, int]:
        """Invert one bit; returns ``(old, new)`` values."""
        old = self.read_bit(address, bit)
        new = old ^ 1
        self.write_bit(address, bit, new)
        sanitize.notify(
            "dram.bit_flip", module=self, address=address, bit=bit, old=old, new=new
        )
        return old, new

    # -- charge semantics ------------------------------------------------------
    def decay_bits(self, row: int, bit_positions: Iterable[int]) -> int:
        """Decay specific bits of ``row`` toward their discharged value.

        ``bit_positions`` are row-relative bit indices (byte*8 + bit).
        Returns the number of bits whose logic value actually changed.
        A cell-type map is required to know the discharged value.
        """
        if self._cell_map is None:
            raise AddressError("decay requires a cell-type map")
        target = self._cell_map.type_of_row(row).discharged_value
        backing = self._row_array(row)
        changed = 0
        for position in bit_positions:
            byte_index, bit = divmod(int(position), 8)
            if byte_index >= self._geometry.row_bytes:
                raise AddressError(f"bit position {position} outside row")
            current = (int(backing[byte_index]) >> bit) & 1
            if current != target:
                if target:
                    backing[byte_index] = int(backing[byte_index]) | (1 << bit)
                else:
                    backing[byte_index] = int(backing[byte_index]) & ~(1 << bit)
                changed += 1
        return changed

    def decay_row_fully(self, row: int) -> None:
        """Decay every cell of ``row`` to its discharged value.

        Models an arbitrarily long refresh-free interval: the whole row
        reads back as all-discharged (used by the profiler and coldboot).
        """
        if self._cell_map is None:
            raise AddressError("decay requires a cell-type map")
        discharged = self._cell_map.type_of_row(row).discharged_value
        self.fill_row(row, 0xFF if discharged else 0x00)

    def snapshot_row(self, row: int) -> np.ndarray:
        """Copy of the row's current content."""
        backing = self._rows.get(row)
        if backing is None:
            return np.full(self._geometry.row_bytes, self._fill_byte, dtype=np.uint8)
        return backing.copy()
