"""Zero-copy snapshot warm-start: capture / materialize semantics and the
byte-identity contract for warm-started campaigns.

A snapshot freezes a booted simulator world (DRAM rows in shared memory
plus a compact pickle of kernel / allocator / obs state). Warm-started
campaigns must be *indistinguishable* from cold-boot runs: identical
reports, identical obs totals, identical checkpoint bytes — the snapshot
only moves the boot cost out of the per-segment loop.
"""

from __future__ import annotations

import pytest

from repro import faults, obs, sanitize
from repro.errors import ReproError
from repro.perf.parallel import (
    capture_trial_snapshot,
    run_probabilistic_trials,
)
from repro.perf.snapshot import SimulatorSnapshot
from repro.units import MIB, PAGE_SIZE

from .conftest import make_stock_kernel


def _seeded_world():
    kernel = make_stock_kernel(total_bytes=16 * MIB)
    process = kernel.create_process()
    vma, pas = kernel.mmap_touch_many(process, 8 * PAGE_SIZE, write=True)
    kernel.mmu.store(process.cr3, vma.start, b"warm-start", pid=process.pid)
    return kernel, {"pid": process.pid, "va": vma.start, "pas": pas}


class TestSnapshotRoundtrip:
    def test_materialized_world_matches_source(self):
        snapshot = SimulatorSnapshot.capture(
            lambda: _seeded_world()[0],
        )
        try:
            kernel, extra = snapshot.materialize()
            assert extra is None
            # The same factory, run cold, must agree with the thawed world.
            cold, info = _seeded_world()
            assert kernel.module.read_count == cold.module.read_count
            assert kernel.stats.demand_faults == cold.stats.demand_faults
            process = kernel.processes[info["pid"]]
            assert kernel.mmu.load(
                process.cr3, info["va"], 10, pid=process.pid
            ) == b"warm-start"
        finally:
            snapshot.release()

    def test_extra_fn_state_travels_with_snapshot(self):
        snapshot = SimulatorSnapshot.capture(
            lambda: _seeded_world()[0],
            lambda kernel: {"pids": sorted(kernel.processes)},
        )
        try:
            kernel, extra = snapshot.materialize()
            assert extra == {"pids": sorted(kernel.processes)}
        finally:
            snapshot.release()

    def test_materializations_are_independent(self):
        """Copy-on-write: a write in one thawed world must not leak into a
        second world thawed from the same snapshot."""
        snapshot = SimulatorSnapshot.capture(lambda: _seeded_world()[0])
        try:
            first, _ = snapshot.materialize()
            second, _ = snapshot.materialize()
            pid = sorted(first.processes)[-1]
            proc_a = first.processes[pid]
            proc_b = second.processes[pid]
            va = next(v.start for v in proc_a.vmas)
            first.mmu.store(proc_a.cr3, va, b"DIVERGED!!", pid=proc_a.pid)
            assert first.mmu.load(proc_a.cr3, va, 10, pid=proc_a.pid) == b"DIVERGED!!"
            assert second.mmu.load(
                proc_b.cr3, va, 10, pid=proc_b.pid
            ) == b"warm-start"
        finally:
            snapshot.release()

    def test_boot_obs_replays_into_consumer_registry(self):
        snapshot = SimulatorSnapshot.capture(lambda: _seeded_world()[0])
        try:
            obs.set_registry(obs.Registry())
            snapshot.materialize()
            warm = obs.get_registry().export_state()

            obs.set_registry(obs.Registry())
            _seeded_world()
            cold = obs.get_registry().export_state()
            assert warm == cold
        finally:
            snapshot.release()

    def test_attach_cached_in_owner_process_reuses_handle(self):
        snapshot = SimulatorSnapshot.capture(lambda: _seeded_world()[0])
        try:
            assert SimulatorSnapshot.attach_cached(snapshot.name) is snapshot
        finally:
            snapshot.release()

    def test_release_is_idempotent(self):
        snapshot = SimulatorSnapshot.capture(lambda: _seeded_world()[0])
        snapshot.release()
        snapshot.release()
        with pytest.raises(ReproError):
            snapshot.materialize()


def _trials_state(tmp_path, tag, *, workers, warm_start):
    obs.set_registry(obs.Registry())
    sanitize.reset()
    faults.uninstall()
    checkpoint = tmp_path / f"trials-{tag}.json"
    report = run_probabilistic_trials(
        3,
        seed=23,
        workers=workers,
        checkpoint_path=checkpoint,
        warm_start=warm_start,
        spray_mappings=6,
        max_rounds=1,
    )
    return (
        report.to_dict(),
        obs.get_registry().export_state(),
        checkpoint.read_bytes(),
    )


class TestWarmStartIdentity:
    def test_warm_trials_equal_cold_serial(self, tmp_path):
        cold = _trials_state(tmp_path, "cold", workers=1, warm_start=False)
        warm = _trials_state(tmp_path, "warm", workers=1, warm_start=True)
        assert warm[0] == cold[0]  # CampaignReport
        assert warm[1] == cold[1]  # obs registry state
        assert warm[2] == cold[2]  # checkpoint bytes

    def test_warm_trials_equal_cold_parallel(self, tmp_path):
        cold = _trials_state(tmp_path, "cold-p", workers=2, warm_start=False)
        warm = _trials_state(tmp_path, "warm-p", workers=2, warm_start=True)
        assert warm == cold

    def test_warm_chaos_equals_cold(self, tmp_path):
        from repro.faults.scenarios import run_chaos_campaign

        def run(tag, warm_start):
            obs.set_registry(obs.Registry())
            sanitize.reset()
            faults.uninstall()
            checkpoint = tmp_path / f"chaos-{tag}.json"
            report = run_chaos_campaign(
                5,
                num_segments=3,
                smoke=True,
                checkpoint_path=checkpoint,
                warm_start=warm_start,
            )
            return (
                report.to_dict(),
                obs.get_registry().export_state(),
                checkpoint.read_bytes(),
            )

        assert run("warm", True) == run("cold", False)

    def test_snapshot_name_stays_out_of_checkpoint(self, tmp_path):
        """Warm-start plumbing must not leak into durable artifacts: the
        checkpoint would otherwise differ from a cold run byte-for-byte."""
        _, _, checkpoint = _trials_state(
            tmp_path, "leak", workers=1, warm_start=True
        )
        assert b"snapshot" not in checkpoint
        assert b"repro-snap" not in checkpoint


class TestTrialSnapshotHelper:
    def test_capture_trial_snapshot_serves_prepared_attack(self):
        snapshot = capture_trial_snapshot(spray_mappings=6)
        try:
            kernel, extra = snapshot.materialize()
            assert set(extra) == {"pid", "sprayed_vas", "checked_vas"}
            attacker = kernel.processes[extra["pid"]]
            assert len(extra["sprayed_vas"]) == 6
            # Every sprayed mapping must already be demand-faulted.
            for va in extra["checked_vas"]:
                kernel.mmu.translate(attacker.cr3, va, pid=attacker.pid)
        finally:
            snapshot.release()
