"""Unit/constant helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.units import (
    GIB,
    KIB,
    MIB,
    PAGE_SIZE,
    PTES_PER_PAGE,
    align_down,
    align_up,
    format_duration,
    format_size,
    is_power_of_two,
    parse_size,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("4096") == 4096

    def test_mib(self):
        assert parse_size("32MB") == 32 * MIB

    def test_gib_with_space(self):
        assert parse_size("8 GiB") == 8 * GIB

    def test_kib_short(self):
        assert parse_size("64k") == 64 * KIB

    def test_case_insensitive(self):
        assert parse_size("1gb") == parse_size("1GB") == GIB

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            parse_size("")

    def test_garbage_suffix_raises(self):
        with pytest.raises(ConfigurationError):
            parse_size("12xx")

    def test_no_number_raises(self):
        with pytest.raises(ConfigurationError):
            parse_size("MB")


class TestFormatting:
    def test_format_size_mib(self):
        assert format_size(32 * MIB) == "32.0MiB"

    def test_format_size_bytes(self):
        assert format_size(512) == "512.0B"

    def test_format_duration_days(self):
        assert format_duration(2 * 86400) == "2.0 days"

    def test_format_duration_hours(self):
        assert "hours" in format_duration(7200)

    def test_format_duration_minutes(self):
        assert "minutes" in format_duration(120)

    def test_format_duration_seconds(self):
        assert "seconds" in format_duration(1.5)


class TestAlignment:
    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_align_down(self):
        assert align_down(4097, 4096) == 4096
        assert align_down(4096, 4096) == 4096

    def test_align_up(self):
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096

    def test_align_bad_alignment(self):
        with pytest.raises(ConfigurationError):
            align_down(100, 3)

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([1, 2, 4096, 2**20]))
    def test_align_roundtrip_properties(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


def test_derived_constants_consistent():
    assert PAGE_SIZE == 4096
    assert PTES_PER_PAGE == 512
