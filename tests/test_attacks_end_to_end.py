"""End-to-end attack runs: the paper's headline behaviours, live.

These are the core reproduction claims:

- the probabilistic PTE attack escalates privileges on a stock kernel;
- the identical attack is structurally BLOCKED on a CTA kernel;
- the Drammer-style deterministic attack succeeds on stock and is
  BLOCKED on CTA;
- Algorithm 1 (the CTA-tailored brute force) induces flips inside
  ZONE_PTP but every corrupted pointer moves monotonically downward and
  no self-reference ever forms.
"""

import pytest

from repro.attacks import (
    AttackOutcome,
    CtaBruteForceAttack,
    ProbabilisticPteAttack,
    TemplatingAttack,
)
from repro.attacks.registry import KNOWN_ATTACKS, modeled_attacks, pte_attacks
from repro.errors import AttackError
from repro.units import MIB

from tests.conftest import AGGRESSIVE, MODERATE, TRUE_CELL_FAITHFUL


@pytest.mark.slow
class TestProbabilisticAttack:
    def test_succeeds_on_stock_kernel(self, booted_world):
        world = booted_world("stock", stats=AGGRESSIVE, seed=0)
        result = ProbabilisticPteAttack(
            kernel=world.kernel, hammer=world.hammer
        ).run(world.attacker, spray_mappings=96, max_rounds=3)
        assert result.outcome is AttackOutcome.SUCCESS
        assert result.escalated_pid == world.attacker.pid
        assert result.flips_induced > 0

    def test_blocked_on_cta_kernel(self, booted_world):
        world = booted_world("cta", stats=AGGRESSIVE, seed=0)
        result = ProbabilisticPteAttack(
            kernel=world.kernel, hammer=world.hammer
        ).run(world.attacker, spray_mappings=96, max_rounds=3)
        assert result.outcome is AttackOutcome.BLOCKED

    def test_success_across_seeds(self, booted_world):
        wins = 0
        for seed in range(3):
            world = booted_world("stock", stats=AGGRESSIVE, seed=seed)
            result = ProbabilisticPteAttack(
                kernel=world.kernel, hammer=world.hammer
            ).run(world.attacker, spray_mappings=96, max_rounds=3)
            wins += result.succeeded
        assert wins == 3


@pytest.mark.slow
class TestTemplatingAttack:
    def test_succeeds_on_stock_kernel(self, booted_world):
        world = booted_world("stock", stats=MODERATE, seed=1)
        result = TemplatingAttack(kernel=world.kernel, hammer=world.hammer).run(
            world.attacker, template_buffer_bytes=2 * MIB,
            max_massage_attempts=128,
        )
        assert result.outcome is AttackOutcome.SUCCESS

    def test_blocked_on_cta_kernel(self, booted_world):
        world = booted_world("cta", stats=MODERATE, seed=1)
        result = TemplatingAttack(kernel=world.kernel, hammer=world.hammer).run(
            world.attacker, template_buffer_bytes=2 * MIB,
            max_massage_attempts=128,
        )
        assert result.outcome is AttackOutcome.BLOCKED


@pytest.mark.slow
class TestAlgorithm1:
    def test_requires_cta_kernel(self, booted_world):
        world = booted_world("stock", stats=TRUE_CELL_FAITHFUL, seed=1)
        with pytest.raises(AttackError):
            CtaBruteForceAttack(kernel=world.kernel, hammer=world.hammer)

    def test_never_succeeds_and_pointers_monotonic(self, booted_world):
        # Multi-level zones (Section 7) close the intermediate-entry
        # channel; see tests/test_theorem.py for the single-zone finding.
        world = booted_world(
            "cta", stats=TRUE_CELL_FAITHFUL, seed=1, multilevel=True
        )
        attack = CtaBruteForceAttack(kernel=world.kernel, hammer=world.hammer)
        result = attack.run(world.attacker, max_target_pages=3)
        assert result.outcome is not AttackOutcome.SUCCESS
        assert result.flips_induced > 0, "ZONE_PTP rows must actually take flips"
        assert attack.observations, "corrupted PTEs must be observed"
        # The paper's statistics allow a 0.2% against-leak flip rate, so
        # monotonicity is overwhelming but not absolute (Section 5).
        monotonic = sum(1 for o in attack.observations if o.monotonic)
        assert monotonic / len(attack.observations) >= 0.9
        assert len(attack.observations) - monotonic <= 2

    def test_full_sweep_time_scales_with_memory(self, booted_world):
        world = booted_world("cta", stats=TRUE_CELL_FAITHFUL, seed=1)
        attack = CtaBruteForceAttack(kernel=world.kernel, hammer=world.hammer)
        assert attack.full_sweep_modeled_time_s() > 0


class TestRegistry:
    def test_table1_has_ten_rows(self):
        assert len(KNOWN_ATTACKS) == 10

    def test_pte_subset(self):
        assert {r.victim_data for r in pte_attacks()} == {"PTEs"}
        assert len(pte_attacks()) == 5

    def test_modeled_attacks_resolve(self):
        import importlib

        for record in modeled_attacks():
            module_name, _, attr = record.modeled_by.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attr)
