"""Cross-cutting integration properties of the whole stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFaultError
from repro.kernel.page import PageUse
from repro.units import MIB, PAGE_SHIFT, PAGE_SIZE

from tests.conftest import make_cta_kernel, make_stock_kernel


class TestProcessIsolation:
    def test_frames_never_shared_between_processes(self):
        kernel = make_stock_kernel()
        owners = {}
        for _ in range(3):
            process = kernel.create_process()
            for index in range(16):
                vma = kernel.mmap(process, PAGE_SIZE)
                pa = kernel.touch(process, vma.start, write=True)
                pfn = pa >> PAGE_SHIFT
                assert pfn not in owners, "frame handed to two processes"
                owners[pfn] = process.pid

    def test_processes_cannot_read_each_other(self):
        kernel = make_stock_kernel()
        victim = kernel.create_process()
        attacker = kernel.create_process()
        vma = kernel.mmap(victim, PAGE_SIZE)
        kernel.write_virtual(victim, vma.start, b"victim secret")
        # The attacker has no mapping at that VA; its own tree faults.
        with pytest.raises(PageFaultError):
            kernel.mmu.load(attacker.cr3, vma.start, 13, pid=attacker.pid)

    def test_page_tables_owned_per_process(self):
        kernel = make_cta_kernel()
        a = kernel.create_process()
        b = kernel.create_process()
        for process in (a, b):
            vma = kernel.mmap(process, PAGE_SIZE)
            kernel.touch(process, vma.start)
        pt_a = set(kernel.page_table_pfns(a.pid))
        pt_b = set(kernel.page_table_pfns(b.pid))
        assert pt_a and pt_b
        assert not pt_a & pt_b


class TestBootEquivalence:
    def test_profiled_and_ground_truth_boots_agree(self):
        """Booting with the Section 2.2 profiler must produce the same
        ZONE_PTP layout as booting with the ground-truth map."""
        from repro.kernel.cta import CtaConfig
        from repro.kernel.kernel import Kernel, KernelConfig

        config = dict(
            total_bytes=32 * MIB, row_bytes=16 * 1024, num_banks=2,
            cell_interleave_rows=32, cta=CtaConfig(ptp_bytes=2 * MIB),
        )
        profiled = Kernel(KernelConfig(profile_cells=True, **config))
        trusted = Kernel(KernelConfig(profile_cells=False, **config))
        assert (
            profiled.cta_policy.low_water_mark == trusted.cta_policy.low_water_mark
        )
        assert (
            profiled.cta_policy.true_cell_ranges
            == trusted.cta_policy.true_cell_ranges
        )


class TestAccountingConsistency:
    @settings(max_examples=10, deadline=None)
    @given(pages=st.integers(1, 24), seed=st.integers(0, 100))
    def test_alloc_free_cycles_conserve_memory(self, pages, seed):
        import random

        kernel = make_stock_kernel()
        rng = random.Random(seed)
        process = kernel.create_process()
        free_before = sum(free for free, _ in kernel.zone_usage().values())
        vmas = []
        for index in range(pages):
            vma = kernel.mmap(process, PAGE_SIZE)
            kernel.touch(process, vma.start, write=True)
            vmas.append(vma)
        rng.shuffle(vmas)
        for vma in vmas:
            kernel.munmap(process, vma)
        kernel.reclaim_empty_page_tables()
        free_after = sum(free for free, _ in kernel.zone_usage().values())
        # Everything except the (possibly reclaimed) upper-level tables and
        # PML4 returns; the delta is bounded by the paging-tree skeleton.
        assert free_before - free_after <= 4

    def test_db_and_allocators_agree(self):
        kernel = make_cta_kernel()
        process = kernel.create_process()
        for _ in range(8):
            vma = kernel.mmap(process, 2 * PAGE_SIZE)
            kernel.write_virtual(process, vma.start, b"x")
        allocated_db = sum(1 for _ in kernel.page_db.allocated_frames())
        allocated_buddy = sum(
            total - free for free, total in kernel.zone_usage().values()
        )
        assert allocated_db == allocated_buddy


class TestAttackSurfaceAccounting:
    def test_modeled_time_grows_with_rounds(self):
        from repro.attacks.timing import AttackTimingModel

        timing = AttackTimingModel()
        single = timing.time_per_target_page_s(32 * MIB)
        assert single > 0
        assert timing.worst_case_s(8 * 1024 * MIB, 32 * MIB) == pytest.approx(
            single * timing.pages_below_mark(8 * 1024 * MIB, 32 * MIB)
        )

    def test_spray_accounting_matches_kernel_state(self):
        from repro.attacks.spray import spray_page_tables

        kernel = make_stock_kernel()
        attacker = kernel.create_process()
        result = spray_page_tables(kernel, attacker, num_mappings=12)
        assert result.page_tables_created == len(
            kernel.page_table_pfns(attacker.pid)
        ) - 1  # minus the PML4 created before the spray
