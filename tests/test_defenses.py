"""Defense comparators."""

import pytest

from repro.defenses import (
    Anvil,
    Catt,
    CtaDefense,
    IncreasedRefreshRate,
    NoDefense,
    Para,
    all_defenses,
)
from repro.dram.cells import CellTypeMap
from repro.dram.geometry import DramGeometry
from repro.dram.remap import RowRemapper
from repro.errors import DefenseError
from repro.units import MIB


class TestInterface:
    def test_all_defenses_instantiable(self):
        defenses = all_defenses()
        assert len(defenses) == 6
        for defense in defenses:
            assert defense.name
            assert defense.cost() is not None
            assert defense.evaluate().defense_name == defense.name

    def test_only_cta_fully_blocks(self):
        full_blockers = [
            d.name for d in all_defenses() if d.evaluate().fully_blocks_pte_attacks
        ]
        assert full_blockers == ["cta"]


class TestNoDefense:
    def test_blocks_nothing(self):
        evaluation = NoDefense().evaluate()
        assert not evaluation.blocks_probabilistic_pte
        assert not evaluation.blocks_deterministic_pte


class TestRefreshRate:
    def test_flip_scale_inverse(self):
        assert IncreasedRefreshRate(4.0).flip_probability_scale() == pytest.approx(0.25)

    def test_energy_tracks_multiplier(self):
        assert IncreasedRefreshRate(2.0).cost().energy_multiplier == 2.0

    def test_never_fully_blocks(self):
        assert not IncreasedRefreshRate(8.0).evaluate().fully_blocks_pte_attacks

    def test_validation(self):
        with pytest.raises(DefenseError):
            IncreasedRefreshRate(0.5)


class TestPara:
    def test_flip_scale_astronomically_small(self):
        assert Para().flip_probability_scale() < 1e-20

    def test_requires_hardware(self):
        cost = Para().cost()
        assert cost.requires_hardware_change
        assert not cost.deployable_on_legacy

    def test_validation(self):
        with pytest.raises(DefenseError):
            Para(refresh_probability=0.0)
        with pytest.raises(DefenseError):
            Para(hammer_burst=0)


class TestAnvil:
    def test_detects_hammering_interval(self):
        anvil = Anvil(activation_threshold=1000, false_positive_rate=0.0, seed=1)
        outcome = anvil.scan_interval({5: 50_000, 6: 10})
        assert outcome.detected
        assert outcome.is_attack_interval
        assert outcome.flagged_rows == (5,)

    def test_benign_interval_clean_without_fp(self):
        anvil = Anvil(activation_threshold=1000, false_positive_rate=0.0, seed=1)
        outcome = anvil.scan_interval({5: 10, 6: 20})
        assert not outcome.detected

    def test_false_positive_rate_respected(self):
        anvil = Anvil(activation_threshold=10**9, false_positive_rate=0.2, seed=2)
        fps = sum(
            anvil.scan_interval({1: 100}).detected for _ in range(2000)
        )
        assert 300 < fps < 500  # ~0.2 * 2000
        assert anvil.false_positives == fps

    def test_no_counters_no_detection(self):
        anvil = Anvil(counters_available=False)
        assert not anvil.scan_interval({5: 10**6}).detected
        assert not anvil.evaluate().blocks_probabilistic_pte

    def test_validation(self):
        with pytest.raises(DefenseError):
            Anvil(activation_threshold=0)
        with pytest.raises(DefenseError):
            Anvil(false_positive_rate=1.0)


class TestCatt:
    @pytest.fixture
    def cell_map(self):
        geometry = DramGeometry(total_bytes=2 * MIB, row_bytes=16 * 1024, num_banks=2)
        return CellTypeMap.interleaved(geometry, period_rows=4)

    def test_intact_isolation_blocks(self, cell_map):
        catt = Catt(boundary_row=64, total_rows=128)
        remapper = RowRemapper(cell_map)
        assert not catt.attacker_reaches_kernel(remapper)

    def test_row_remap_breaks_isolation(self, cell_map):
        catt = Catt(boundary_row=64, total_rows=128)
        remapper = RowRemapper(cell_map, spare_rows=[10], enforce_cell_type=False)
        remapper.remap(70, spare_row=10)  # kernel row lands among user rows
        assert catt.isolation_violations(remapper) == [70]
        assert catt.attacker_reaches_kernel(remapper)

    def test_double_owned_page_breaks_isolation(self):
        catt = Catt(boundary_row=64, total_rows=128, double_owned_rows=[80])
        assert catt.attacker_reaches_kernel()

    def test_published_weaknesses_reported(self):
        weaknesses = Catt().evaluate().residual_weaknesses
        assert any("re-mapping" in w for w in weaknesses)
        assert any("double-owned" in w for w in weaknesses)

    def test_boundary_validation(self):
        with pytest.raises(DefenseError):
            Catt(boundary_row=128, total_rows=128)


class TestCtaDefense:
    def test_cost_matches_paper(self):
        cost = CtaDefense().cost()
        assert cost.software_complexity_loc == 18
        assert cost.performance_overhead_percent == 0.0
        assert not cost.requires_hardware_change
        assert cost.deployable_on_legacy

    def test_expected_exploitable_matches_analysis(self):
        assert CtaDefense().expected_exploitable() == pytest.approx(4.69e-6, rel=0.02)

    def test_fully_blocks(self):
        assert CtaDefense().evaluate().fully_blocks_pte_attacks
