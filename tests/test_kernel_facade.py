"""Kernel facade: allocation policy, demand paging, CTA enforcement."""

import pytest

from repro.errors import OutOfMemoryError, PageFaultError, ZoneViolationError
from repro.kernel.gfp import GFP_KERNEL, GFP_PTP, GFP_USER
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.cta import CtaConfig
from repro.kernel.page import PageUse
from repro.kernel.zones import ZoneId
from repro.units import MIB, PAGE_SHIFT, PAGE_SIZE

from tests.conftest import make_cta_kernel, make_stock_kernel


class TestAllocation:
    def test_alloc_zeroes_page(self, stock_kernel):
        pfn = stock_kernel.alloc_page(GFP_KERNEL, PageUse.KERNEL_DATA)
        stock_kernel.module.write((pfn << PAGE_SHIFT) + 10, b"\xff")
        stock_kernel.free_page(pfn)
        pfn2 = stock_kernel.alloc_page(GFP_KERNEL, PageUse.KERNEL_DATA)
        if pfn2 == pfn:
            assert stock_kernel.module.read(pfn2 << PAGE_SHIFT, PAGE_SIZE) == b"\x00" * PAGE_SIZE

    def test_normal_alloc_prefers_high_zone(self, stock_kernel):
        pfn = stock_kernel.alloc_page(GFP_KERNEL, PageUse.KERNEL_DATA)
        zone = stock_kernel.layout.zone_of_pfn(pfn)
        assert zone.zone_id is ZoneId.NORMAL

    def test_gfp_ptp_for_non_page_table_rejected(self, cta_kernel):
        with pytest.raises(ZoneViolationError):
            cta_kernel.alloc_page(GFP_PTP, PageUse.USER_DATA)

    def test_pte_alloc_lands_in_ptp_zone(self, cta_kernel):
        pfn = cta_kernel.pte_alloc_one(owner_pid=1, table_level=1)
        zone = cta_kernel.layout.zone_of_pfn(pfn)
        assert zone.zone_id is ZoneId.PTP
        assert pfn >= cta_kernel.cta_policy.low_water_mark_pfn

    def test_pte_alloc_without_cta_uses_normal_zones(self, stock_kernel):
        pfn = stock_kernel.pte_alloc_one(owner_pid=1, table_level=1)
        assert stock_kernel.layout.zone_of_pfn(pfn).zone_id is not ZoneId.PTP

    def test_ptp_exhaustion_does_not_fall_back(self):
        kernel = make_cta_kernel(ptp_bytes=256 * 1024)  # tiny: 64 PTPs
        with pytest.raises(OutOfMemoryError):
            for _ in range(100):
                kernel.pte_alloc_one(owner_pid=1, table_level=1)
        assert kernel.stats.ptp_fallback_denied >= 1
        # No page table escaped below the mark.
        kernel.verify_cta_rules()

    def test_user_alloc_never_in_ptp(self, cta_kernel):
        for _ in range(50):
            pfn = cta_kernel.alloc_page(GFP_USER, PageUse.USER_DATA, owner_pid=1)
            assert not cta_kernel.layout.is_above_low_water_mark(pfn)

    def test_free_page_updates_db(self, stock_kernel):
        pfn = stock_kernel.alloc_page(GFP_KERNEL, PageUse.KERNEL_DATA)
        stock_kernel.free_page(pfn)
        assert stock_kernel.page_db.frame(pfn).is_free


class TestProcessLifecycle:
    def test_create_process_allocates_pml4(self, stock_kernel):
        process = stock_kernel.create_process()
        frame = stock_kernel.page_db.frame(process.cr3 >> PAGE_SHIFT)
        assert frame.use is PageUse.PAGE_TABLE
        assert frame.pt_level == 4
        assert frame.owner_pid == process.pid

    def test_pids_unique(self, stock_kernel):
        a = stock_kernel.create_process()
        b = stock_kernel.create_process()
        assert a.pid != b.pid

    def test_write_read_roundtrip(self, stock_kernel):
        process = stock_kernel.create_process()
        vma = stock_kernel.mmap(process, 4 * PAGE_SIZE)
        stock_kernel.write_virtual(process, vma.start + 100, b"paper")
        assert stock_kernel.read_virtual(process, vma.start + 100, 5) == b"paper"

    def test_cross_page_write(self, stock_kernel):
        process = stock_kernel.create_process()
        vma = stock_kernel.mmap(process, 2 * PAGE_SIZE)
        data = bytes(range(100))
        stock_kernel.write_virtual(process, vma.start + PAGE_SIZE - 50, data)
        assert stock_kernel.read_virtual(process, vma.start + PAGE_SIZE - 50, 100) == data

    def test_segfault_outside_vma(self, stock_kernel):
        process = stock_kernel.create_process()
        with pytest.raises(PageFaultError):
            stock_kernel.touch(process, 0xDEAD000)

    def test_write_to_readonly_mapping(self, stock_kernel):
        process = stock_kernel.create_process()
        vma = stock_kernel.mmap(process, PAGE_SIZE, writable=False)
        stock_kernel.touch(process, vma.start, write=False)
        with pytest.raises(PageFaultError):
            stock_kernel.touch(process, vma.start, write=True)

    def test_demand_faults_counted(self, stock_kernel):
        process = stock_kernel.create_process()
        vma = stock_kernel.mmap(process, 3 * PAGE_SIZE)
        before = stock_kernel.stats.demand_faults
        for page in range(3):
            stock_kernel.touch(process, vma.start + page * PAGE_SIZE)
        assert stock_kernel.stats.demand_faults == before + 3
        # Re-touching is TLB/PTE hit, no new fault.
        stock_kernel.touch(process, vma.start)
        assert stock_kernel.stats.demand_faults == before + 3

    def test_file_pages_shared_across_mappings(self, stock_kernel):
        process = stock_kernel.create_process()
        shared = stock_kernel.create_file(PAGE_SIZE)
        vma_a = stock_kernel.mmap(process, PAGE_SIZE, backing=shared)
        vma_b = stock_kernel.mmap(process, PAGE_SIZE, backing=shared)
        pa_a = stock_kernel.touch(process, vma_a.start)
        pa_b = stock_kernel.touch(process, vma_b.start)
        assert pa_a == pa_b

    def test_file_mapping_past_eof_faults(self, stock_kernel):
        process = stock_kernel.create_process()
        shared = stock_kernel.create_file(PAGE_SIZE)
        vma = stock_kernel.mmap(process, 2 * PAGE_SIZE, backing=shared)
        stock_kernel.touch(process, vma.start)
        with pytest.raises(PageFaultError):
            stock_kernel.touch(process, vma.start + PAGE_SIZE)

    def test_munmap_frees_anonymous_frames(self, stock_kernel):
        process = stock_kernel.create_process()
        vma = stock_kernel.mmap(process, 2 * PAGE_SIZE)
        pa = stock_kernel.touch(process, vma.start, write=True)
        pfn = pa >> PAGE_SHIFT
        stock_kernel.munmap(process, vma)
        assert stock_kernel.page_db.frame(pfn).is_free
        with pytest.raises(PageFaultError):
            stock_kernel.mmu.translate(process.cr3, vma.start, pid=process.pid)

    def test_munmap_keeps_shared_file_frames(self, stock_kernel):
        process = stock_kernel.create_process()
        shared = stock_kernel.create_file(PAGE_SIZE)
        vma_a = stock_kernel.mmap(process, PAGE_SIZE, backing=shared)
        vma_b = stock_kernel.mmap(process, PAGE_SIZE, backing=shared)
        pa = stock_kernel.touch(process, vma_a.start)
        stock_kernel.touch(process, vma_b.start)
        stock_kernel.munmap(process, vma_a)
        assert not stock_kernel.page_db.frame(pa >> PAGE_SHIFT).is_free
        assert stock_kernel.read_virtual(process, vma_b.start, 1) == b"\x00"


class TestCtaIntegration:
    def test_rules_hold_after_workload(self, cta_kernel):
        process = cta_kernel.create_process()
        for index in range(8):
            vma = cta_kernel.mmap(process, 2 * PAGE_SIZE)
            cta_kernel.write_virtual(process, vma.start, b"x" * 16)
        cta_kernel.verify_cta_rules()

    def test_all_page_tables_above_mark(self, cta_kernel):
        process = cta_kernel.create_process()
        vma = cta_kernel.mmap(process, 16 * PAGE_SIZE)
        for page in range(16):
            cta_kernel.touch(process, vma.start + page * PAGE_SIZE)
        mark = cta_kernel.cta_policy.low_water_mark_pfn
        for pfn in cta_kernel.page_table_pfns():
            assert pfn >= mark

    def test_page_tables_only_in_true_cells(self, cta_kernel):
        from repro.dram.cells import CellType

        process = cta_kernel.create_process()
        vma = cta_kernel.mmap(process, 8 * PAGE_SIZE)
        cta_kernel.touch(process, vma.start)
        cell_map = cta_kernel.module.cell_map
        for pfn in cta_kernel.page_table_pfns():
            assert cell_map.type_of_address(pfn << PAGE_SHIFT) is CellType.TRUE

    def test_profiled_boot_matches_ground_truth(self):
        kernel = make_cta_kernel()
        # Profiled map drove the layout; verify PTPs are true-cell per the
        # ground-truth map too.
        assert kernel.cta_policy.ptes_are_monotonic()

    def test_multilevel_pte_alloc_per_level(self):
        kernel = make_cta_kernel(ptp_bytes=2 * MIB, multilevel=True)
        process = kernel.create_process()
        vma = kernel.mmap(process, PAGE_SIZE)
        kernel.touch(process, vma.start)
        levels = {}
        for pfn in kernel.page_table_pfns(process.pid):
            frame = kernel.page_db.frame(pfn)
            levels.setdefault(frame.pt_level, []).append(pfn)
        # All four levels exist and respect the address ordering.
        assert set(levels) == {1, 2, 3, 4}
        for lower in (1, 2, 3):
            assert max(levels[lower]) < min(levels[lower + 1])
        kernel.verify_cta_rules()

    def test_indicator_restriction_rejects_high_pages(self):
        kernel = make_cta_kernel(restrict_indicator_zeros=True)
        process = kernel.create_process()  # untrusted by default
        vma = kernel.mmap(process, 8 * PAGE_SIZE)
        policy = kernel.cta_policy
        for page in range(8):
            pa = kernel.touch(process, vma.start + page * PAGE_SIZE)
            assert policy.address_allowed_for_untrusted(pa)

    def test_zone_usage_snapshot(self, cta_kernel):
        usage = cta_kernel.zone_usage()
        assert any("ZONE_PTP" in name for name in usage)
        for free, total in usage.values():
            assert 0 <= free <= total


class TestStats:
    def test_page_table_bytes_accounting(self, stock_kernel):
        process = stock_kernel.create_process()
        vma = stock_kernel.mmap(process, PAGE_SIZE)
        stock_kernel.touch(process, vma.start)
        # PML4 + PDPT + PD + PT = 4 pages.
        assert stock_kernel.page_table_bytes(process.pid) == 4 * PAGE_SIZE

    def test_is_page_table_pfn(self, stock_kernel):
        process = stock_kernel.create_process()
        assert stock_kernel.is_page_table_pfn(process.cr3 >> PAGE_SHIFT)
        assert not stock_kernel.is_page_table_pfn(10)
