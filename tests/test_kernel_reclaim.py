"""PTP-pressure reclaim (kswapd-lite)."""

import pytest

from repro.errors import OutOfMemoryError
from repro.units import MIB, PAGE_SIZE

from tests.conftest import make_cta_kernel, make_stock_kernel


def fill_and_release(kernel, process, regions, base=0x0000_6000_0000):
    """Map+touch one page in each 2 MiB region, then unmap everything."""
    vmas = []
    for index in range(regions):
        vma = kernel.mmap(process, PAGE_SIZE, address=base + index * (2 * MIB))
        kernel.touch(process, vma.start, write=True)
        vmas.append(vma)
    for vma in vmas:
        kernel.munmap(process, vma)


class TestReclaim:
    def test_empty_tables_reclaimed(self):
        kernel = make_cta_kernel()
        process = kernel.create_process()
        fill_and_release(kernel, process, regions=8)
        before = len(kernel.page_table_pfns(process.pid))
        reclaimed = kernel.reclaim_empty_page_tables()
        after = len(kernel.page_table_pfns(process.pid))
        assert reclaimed >= 8
        assert after == before - reclaimed

    def test_live_tables_survive_reclaim(self):
        kernel = make_cta_kernel()
        process = kernel.create_process()
        vma = kernel.mmap(process, PAGE_SIZE)
        kernel.write_virtual(process, vma.start, b"live")
        kernel.reclaim_empty_page_tables()
        assert kernel.read_virtual(process, vma.start, 4) == b"live"

    def test_pte_alloc_recovers_from_ptp_pressure(self):
        kernel = make_cta_kernel(ptp_bytes=256 * 1024)  # 64 PTP frames
        process = kernel.create_process()
        # Fill ZONE_PTP with page tables, then release the mappings so the
        # tables are empty but still allocated.
        try:
            fill_and_release(kernel, process, regions=70)
        except OutOfMemoryError:
            pass
        for vma in list(process.vmas):
            kernel.munmap(process, vma)
        # A fresh burst of mappings must succeed via reclaim, not OOM.
        fill_and_release(kernel, process, regions=16, base=0x0000_7800_0000)
        assert kernel.stats.ptp_reclaims > 0
        kernel.verify_cta_rules()

    def test_reclaim_without_cta_is_available_too(self):
        kernel = make_stock_kernel()
        process = kernel.create_process()
        fill_and_release(kernel, process, regions=4)
        assert kernel.reclaim_empty_page_tables() >= 4

    def test_reclaim_counts_in_stats(self):
        kernel = make_cta_kernel()
        process = kernel.create_process()
        fill_and_release(kernel, process, regions=4)
        kernel.reclaim_empty_page_tables()
        assert kernel.stats.ptp_reclaims >= 4
