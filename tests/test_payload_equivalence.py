"""Differential equivalence: compiled payloads vs hand-written twins.

Each registry attack now declares its hammer/touch phase as a payload
program. These tests pin the equivalence contract per attack, seeded:

- the program an attack records, executed through the batched
  :func:`repro.payload.run` path, induces exactly the flips a
  hand-written loop (the pre-DSL implementation, preserved here as the
  *twin*) induces on an identically-seeded world;
- the batched path and the :func:`repro.payload.slow_reference`
  interpreter agree on flips, counters, observability snapshot, and
  trace stream;
- the payload-driven spray produces the same result *and the same obs
  stream* as the hand loop it replaced.
"""

import pytest

from repro import obs
from repro.attacks import (
    CtaBruteForceAttack,
    ProbabilisticPteAttack,
    TemplatingAttack,
)
from repro.attacks.spray import PT_COVERAGE, SPRAY_BASE, spray_page_tables
from repro.dram.rowhammer import RowHammerModel
from repro.errors import OutOfMemoryError, PageFaultError, ProcessError
from repro.payload import (
    PayloadContext,
    compile_program,
    hammer_sweep,
    run,
    slow_reference,
)
from repro.units import MIB, PAGE_SIZE

from tests.conftest import (
    AGGRESSIVE,
    MODERATE,
    TRUE_CELL_FAITHFUL,
    make_cta_kernel,
    make_stock_kernel,
)


def capture_obs(fn):
    """Run ``fn`` under a fresh registry; return (result, snapshot, trace)."""
    registry = obs.Registry()
    obs.set_registry(registry)
    result = fn()
    return result, registry.snapshot(), [e.format() for e in registry.trace]


def twin_hammers(make_kernel, stats, seed):
    """Two identically-seeded worlds: one per execution path."""

    def boot():
        kernel = make_kernel()
        return RowHammerModel(kernel.module, stats, seed=seed)

    return boot(), boot()


def hand_hammer_twin(hammer, program):
    """The pre-DSL hammer loop: one hammer call per row, in order."""
    rows = program.lists["rows"].addresses
    outcomes = [hammer.hammer(row) for row in rows]
    return outcomes


def assert_program_matches_hand_loop(program, make_kernel, stats, seed):
    payload_hammer, twin_hammer = twin_hammers(make_kernel, stats, seed)
    result = run(program, PayloadContext(hammer=payload_hammer))
    outcomes = hand_hammer_twin(twin_hammer, program)
    assert result.bursts == len(outcomes)
    assert result.flips_induced == sum(o.flip_count for o in outcomes)
    assert [(o.aggressor_row, o.activations) for o in result.outcomes] == [
        (o.aggressor_row, o.activations) for o in outcomes
    ]
    assert [o.flips for o in result.outcomes] == [o.flips for o in outcomes]


def small_twin(program):
    """Rebuild a recorded sweep with activations the oracle budget allows."""
    rows = program.lists["rows"].addresses
    # Each activation costs the interpreter ~3 charged ops (loop entry,
    # ACT, PRE); keep the whole program well under the op budget.
    activations = max(1, 50_000 // max(1, len(rows)))
    return hammer_sweep(program.name, rows, activations=activations)


def assert_run_matches_slow_reference(program, make_kernel, stats, seed):
    fast_hammer, slow_hammer = twin_hammers(make_kernel, stats, seed)
    fast, fast_snap, fast_trace = capture_obs(
        lambda: run(program, PayloadContext(hammer=fast_hammer))
    )
    slow, slow_snap, slow_trace = capture_obs(
        lambda: slow_reference(program, PayloadContext(hammer=slow_hammer))
    )
    assert fast.flips_induced == slow.flips_induced
    assert (fast.bursts, fast.activations) == (slow.bursts, slow.activations)
    assert fast.read_digest == slow.read_digest
    assert fast_snap == slow_snap
    assert fast_trace == slow_trace


@pytest.mark.slow
class TestAlgorithm1Equivalence:
    def make_world(self):
        kernel = make_cta_kernel(multilevel=True)
        return kernel, RowHammerModel(kernel.module, TRUE_CELL_FAITHFUL, seed=1)

    def recorded_program(self):
        kernel, hammer = self.make_world()
        attack = CtaBruteForceAttack(kernel=kernel, hammer=hammer)
        attack.run(kernel.create_process(), max_target_pages=1)
        assert attack.executed_payloads, "attack must record its hammer program"
        return attack.executed_payloads[0]

    def test_recorded_payload_matches_hand_loop(self):
        program = self.recorded_program()
        assert_program_matches_hand_loop(
            program,
            lambda: make_cta_kernel(multilevel=True),
            TRUE_CELL_FAITHFUL,
            seed=1,
        )

    def test_small_twin_matches_slow_reference(self):
        assert_run_matches_slow_reference(
            small_twin(self.recorded_program()),
            lambda: make_cta_kernel(multilevel=True),
            TRUE_CELL_FAITHFUL,
            seed=1,
        )


@pytest.mark.slow
class TestProbabilisticEquivalence:
    def recorded_program(self):
        kernel = make_stock_kernel()
        hammer = RowHammerModel(kernel.module, AGGRESSIVE, seed=0)
        attack = ProbabilisticPteAttack(kernel=kernel, hammer=hammer)
        attack.run(kernel.create_process(), spray_mappings=96, max_rounds=3)
        assert attack.executed_payloads
        return attack.executed_payloads[0]

    def test_recorded_payload_matches_hand_loop(self):
        assert_program_matches_hand_loop(
            self.recorded_program(), make_stock_kernel, AGGRESSIVE, seed=0
        )

    def test_small_twin_matches_slow_reference(self):
        assert_run_matches_slow_reference(
            small_twin(self.recorded_program()),
            make_stock_kernel,
            AGGRESSIVE,
            seed=0,
        )


@pytest.mark.slow
class TestTemplatingEquivalence:
    def recorded_programs(self):
        kernel = make_stock_kernel()
        hammer = RowHammerModel(kernel.module, MODERATE, seed=1)
        attack = TemplatingAttack(kernel=kernel, hammer=hammer)
        attack.run(
            kernel.create_process(),
            template_buffer_bytes=2 * MIB,
            max_massage_attempts=128,
        )
        assert attack.executed_payloads
        return attack.executed_payloads

    def test_template_sweep_matches_hand_loop(self):
        assert_program_matches_hand_loop(
            self.recorded_programs()[0], make_stock_kernel, MODERATE, seed=1
        )

    def test_replay_program_is_single_burst(self):
        programs = self.recorded_programs()
        replays = [p for p in programs if p.name == "templating-replay"]
        assert replays, "a successful run replays at least one template"
        for replay in replays:
            compiled = compile_program(replay)
            assert len(compiled.steps) == 1


@pytest.mark.slow
class TestSprayEquivalence:
    def hand_spray_twin(self, kernel, attacker, num_mappings):
        """The pre-DSL spray loop, preserved verbatim as the oracle."""
        pt_before = len(kernel.page_table_pfns(attacker.pid))
        file = kernel.create_file(PAGE_SIZE)
        mapped_vas = []
        stopped_by_oom = False
        for index in range(num_mappings):
            va = SPRAY_BASE + index * PT_COVERAGE
            try:
                kernel.mmap(
                    kernel.processes[attacker.pid],
                    length=PAGE_SIZE,
                    writable=True,
                    backing=file,
                    address=va,
                )
                kernel.touch(attacker, va)
            except OutOfMemoryError:
                stopped_by_oom = True
                break
            except (PageFaultError, ProcessError):
                continue
            mapped_vas.append(va)
            obs.inc("attack.spray_mappings")
        page_tables = len(kernel.page_table_pfns(attacker.pid)) - pt_before
        obs.trace(
            "attack.spray",
            mappings=len(mapped_vas),
            page_tables=page_tables,
            oom=stopped_by_oom,
        )
        return mapped_vas, page_tables, stopped_by_oom

    def check(self, make_kernel, num_mappings):
        def payload_path():
            kernel = make_kernel()
            attacker = kernel.create_process()
            return spray_page_tables(kernel, attacker, num_mappings=num_mappings)

        def hand_path():
            kernel = make_kernel()
            attacker = kernel.create_process()
            return self.hand_spray_twin(kernel, attacker, num_mappings)

        result, snap, trace = capture_obs(payload_path)
        (vas, page_tables, oom), twin_snap, twin_trace = capture_obs(hand_path)
        assert result.mapped_vas == vas
        assert result.page_tables_created == page_tables
        assert result.stopped_by_oom == oom
        assert snap == twin_snap, "payload spray must not change the obs stream"
        assert trace == twin_trace

    def test_stock_spray_matches_hand_loop(self):
        self.check(make_stock_kernel, num_mappings=16)

    def test_oom_bounded_spray_matches_hand_loop(self):
        self.check(lambda: make_cta_kernel(ptp_bytes=256 * 1024), num_mappings=500)
