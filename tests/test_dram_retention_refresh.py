"""Retention model and refresh scheduler."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.retention import RetentionModel, RetentionParameters
from repro.errors import ConfigurationError
from repro.units import REFRESH_INTERVAL_S


class TestRetentionParameters:
    def test_defaults_valid(self):
        params = RetentionParameters()
        assert params.median_s > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetentionParameters(median_s=0)
        with pytest.raises(ConfigurationError):
            RetentionParameters(sigma=0)
        with pytest.raises(ConfigurationError):
            RetentionParameters(weak_fraction=1.0)


class TestRetentionModel:
    def test_sample_shape(self):
        model = RetentionModel(seed=1)
        assert model.sample_retention(100).shape == (100,)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RetentionModel(seed=1).sample_retention(-1)

    def test_median_roughly_right(self):
        model = RetentionModel(RetentionParameters(median_s=2.0, weak_fraction=0.0), seed=2)
        import numpy as np

        times = model.sample_retention(50_000)
        assert 1.8 < float(np.median(times)) < 2.2

    def test_weak_cells_below_refresh_interval(self):
        params = RetentionParameters(weak_fraction=0.5)
        model = RetentionModel(params, seed=3)
        times = model.sample_retention(10_000)
        weak = (times < REFRESH_INTERVAL_S).mean()
        assert 0.4 < weak < 0.6

    def test_decayed_fraction_monotone_in_time(self):
        model = RetentionModel(seed=4)
        early = model.decayed_fraction(0.5)
        late = model.decayed_fraction(60.0)
        assert early < late
        assert late > 0.95

    def test_decayed_mask_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            RetentionModel(seed=1).decayed_mask(10, -1.0)

    def test_time_for_decay_fraction_inverts(self):
        model = RetentionModel(RetentionParameters(weak_fraction=0.0), seed=5)
        t90 = model.time_for_decay_fraction(0.9)
        measured = model.decayed_fraction(t90)
        assert 0.85 < measured < 0.95

    def test_time_for_decay_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            RetentionModel(seed=1).time_for_decay_fraction(1.0)


class TestRefreshScheduler:
    def test_interval_with_multiplier(self):
        scheduler = RefreshScheduler(total_rows=16, rate_multiplier=2.0)
        assert scheduler.interval_s == pytest.approx(REFRESH_INTERVAL_S / 2)

    def test_energy_cost_tracks_multiplier(self):
        assert RefreshScheduler(16, rate_multiplier=4.0).energy_cost_per_second() == 4.0

    def test_overdue_detection(self):
        scheduler = RefreshScheduler(total_rows=4)
        scheduler.refresh_all()
        scheduler.advance(REFRESH_INTERVAL_S * 2)
        assert scheduler.overdue_rows() == [0, 1, 2, 3]
        scheduler.refresh_row(2)
        assert 2 not in scheduler.overdue_rows()

    def test_disable_marks_everything_overdue(self):
        scheduler = RefreshScheduler(total_rows=3)
        scheduler.refresh_all()
        scheduler.disable()
        assert scheduler.overdue_rows() == [0, 1, 2]
        scheduler.enable()
        assert scheduler.enabled

    def test_time_since_refresh(self):
        scheduler = RefreshScheduler(total_rows=2)
        scheduler.refresh_row(0)
        scheduler.advance(0.1)
        assert scheduler.time_since_refresh(0) == pytest.approx(0.1)

    def test_refresh_ops_counted(self):
        scheduler = RefreshScheduler(total_rows=8)
        scheduler.refresh_all()
        assert scheduler.refresh_ops == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RefreshScheduler(total_rows=0)
        with pytest.raises(ConfigurationError):
            RefreshScheduler(total_rows=4, rate_multiplier=0)
        scheduler = RefreshScheduler(total_rows=4)
        with pytest.raises(ConfigurationError):
            scheduler.advance(-1)
        with pytest.raises(ConfigurationError):
            scheduler.refresh_row(4)
