"""Attack timing model and page-table spraying."""

import pytest

from repro.attacks.spray import PT_COVERAGE, spray_page_tables
from repro.attacks.timing import AttackTimingModel
from repro.errors import AnalysisError
from repro.units import GIB, MIB, SECONDS_PER_DAY


class TestTimingModel:
    def test_paper_constants(self):
        timing = AttackTimingModel()
        assert timing.fill_s == pytest.approx(0.184)
        assert timing.hammer_row_s == pytest.approx(0.064)
        assert timing.check_pte_s == pytest.approx(600e-9)
        assert timing.ptes_per_row == 16_384

    def test_rows_in_ptp(self):
        timing = AttackTimingModel()
        assert timing.rows_in_ptp(32 * MIB) == 256
        assert timing.rows_in_ptp(64 * MIB) == 512

    def test_rows_in_ptp_validation(self):
        with pytest.raises(AnalysisError):
            AttackTimingModel().rows_in_ptp(1000)

    def test_paper_worst_case_8gb_32mb(self):
        """(2^21 - 8192) pages x 19.08 s / 8 = 57.6 days (Section 5)."""
        timing = AttackTimingModel()
        worst = timing.worst_case_s(8 * GIB, 32 * MIB)
        expected = timing.expected_s_unrestricted(8 * GIB, 32 * MIB, 6.7)
        assert worst / SECONDS_PER_DAY == pytest.approx(461.4, abs=1.0)
        assert expected / SECONDS_PER_DAY == pytest.approx(57.7, abs=0.2)

    def test_restricted_is_half_worst_case(self):
        timing = AttackTimingModel()
        total, ptp = 8 * GIB, 32 * MIB
        assert timing.expected_s_restricted(total, ptp) == pytest.approx(
            timing.worst_case_s(total, ptp) / 2
        )

    def test_expected_divisor_uses_ceil_plus_one(self):
        timing = AttackTimingModel()
        total, ptp = 8 * GIB, 32 * MIB
        worst = timing.worst_case_s(total, ptp)
        assert timing.expected_s_unrestricted(total, ptp, 6.7) == pytest.approx(worst / 8)
        assert timing.expected_s_unrestricted(total, ptp, 0.0) == pytest.approx(worst / 1)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            AttackTimingModel(fill_s=0)
        with pytest.raises(AnalysisError):
            AttackTimingModel().pages_below_mark(32 * MIB, 32 * MIB)
        with pytest.raises(AnalysisError):
            AttackTimingModel().expected_s_unrestricted(8 * GIB, 32 * MIB, -1)


class TestSpray:
    def test_spray_creates_one_pt_per_mapping(self, booted_world):
        world = booted_world("stock")
        result = spray_page_tables(world.kernel, world.attacker, num_mappings=16)
        assert result.num_mappings == 16
        # 16 last-level PTs plus upper-level tables.
        assert result.page_tables_created >= 16
        assert not result.stopped_by_oom

    def test_sprayed_mappings_share_one_frame(self, booted_world):
        world = booted_world("stock")
        result = spray_page_tables(world.kernel, world.attacker, num_mappings=8)
        addresses = {
            world.kernel.touch(world.attacker, va) for va in result.mapped_vas
        }
        assert len(addresses) == 1

    def test_mappings_at_2mib_stride(self, booted_world):
        world = booted_world("stock")
        result = spray_page_tables(world.kernel, world.attacker, num_mappings=4)
        deltas = {
            b - a for a, b in zip(result.mapped_vas, result.mapped_vas[1:])
        }
        assert deltas == {PT_COVERAGE}

    def test_spray_bounded_by_cta_zone(self, booted_world):
        world = booted_world("cta", ptp_bytes=256 * 1024)  # 64 PTP frames
        result = spray_page_tables(world.kernel, world.attacker, num_mappings=500)
        assert result.stopped_by_oom
        assert result.page_tables_created <= 64
        world.kernel.verify_cta_rules()
